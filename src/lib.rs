#![forbid(unsafe_code)]
//! # CDCS — Computation and Data Co-Scheduling for Distributed Caches
//!
//! A from-scratch Rust reproduction of [Beckmann, Tsai & Sanchez, *"Scaling
//! Distributed Cache Hierarchies through Computation and Data
//! Co-Scheduling"*, HPCA 2015]: the CDCS algorithms, every substrate they
//! run on, the baselines they are compared against, and a harness that
//! regenerates every table and figure in the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`mesh`] (`cdcs-mesh`) — the tiled-CMP fabric: mesh topology, NoC
//!   timing, traffic accounting, memory-controller placement.
//! * [`cache`] (`cdcs-cache`) — partitioned LLC banks, miss curves, and the
//!   paper's geometric monitors (GMONs) plus conventional UMONs.
//! * [`workload`] (`cdcs-workload`) — synthetic SPEC-CPU2006-like and
//!   SPEC-OMP2012-like application models and workload mixes.
//! * [`core`] (`cdcs-core`) — the contribution: latency-aware capacity
//!   allocation, optimistic contention-aware data placement, thread
//!   placement, trade-based refinement, and the S-NUCA/R-NUCA/Jigsaw
//!   baselines.
//! * [`sim`] (`cdcs-sim`) — the trace-driven 64-tile CMP simulator with
//!   incremental reconfiguration (demand moves, background invalidations,
//!   bulk invalidations).
//! * [`bench`] (`cdcs-bench`) — the declarative experiment API: typed
//!   [`bench::exp::ExperimentSpec`]s (schemes × mixes × seeds × config
//!   patches) expanded into one parallel grid wave, with structured
//!   [`bench::exp::ExperimentReport`]s persisted as verified JSON
//!   artifacts under `out/`.
//! * [`serve`] (`cdcs-serve`) — the spec-serving experiment daemon and
//!   client: specs in as JSON over HTTP, cells scheduled fairly across
//!   one shared pool of streaming [`sim::GridSession`]s, reports out
//!   byte-equal to the `out/` artifacts.
//!
//! # Quickstart
//!
//! ```
//! use cdcs::sim::{Scheme, SimConfig, Simulation};
//! use cdcs::workload::{MixSpec, WorkloadMix};
//!
//! // A small chip and a two-app mix; compare S-NUCA against CDCS.
//! let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
//!     "omnet".into(), "milc".into(),
//! ])).unwrap();
//! let mut config = SimConfig::small_test();
//! config.scheme = Scheme::SNuca;
//! let snuca = Simulation::new(config.clone(), mix.clone()).unwrap().run();
//! config.scheme = Scheme::cdcs();
//! let cdcs = Simulation::new(config, mix).unwrap().run();
//! let perf = |r: &cdcs::sim::SimResult| r.threads.iter().map(|t| t.ipc()).sum::<f64>();
//! assert!(perf(&cdcs) > 0.0 && perf(&snuca) > 0.0);
//! ```
//!
//! See `README.md` for the experiment harness (one binary per paper figure)
//! and `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.
//!
//! [Beckmann, Tsai & Sanchez, *"Scaling Distributed Cache Hierarchies
//! through Computation and Data Co-Scheduling"*, HPCA 2015]:
//!     https://people.csail.mit.edu/sanchez/papers/2015.cdcs.hpca.pdf

pub use cdcs_bench as bench;
pub use cdcs_cache as cache;
pub use cdcs_core as core;
pub use cdcs_mesh as mesh;
pub use cdcs_serve as serve;
pub use cdcs_sim as sim;
pub use cdcs_workload as workload;

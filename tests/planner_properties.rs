//! Property-based integration tests on the planners: every placement a
//! planner emits must be feasible, and CDCS must never lose to its own
//! greedy starting point on the cost model it optimizes.

use cdcs::cache::MissCurve;
use cdcs::core::cost::{on_chip_latency, total_latency};
use cdcs::core::policy::{clustered_cores, CdcsPlanner, JigsawPlanner, Planner};
use cdcs::core::{PlacementProblem, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs::mesh::Mesh;
use proptest::prelude::*;

/// Builds a random-but-valid problem from proptest inputs.
fn build_problem(
    side: u16,
    apps: Vec<(u32, u32, u32)>, // (accesses, footprint, plateau)
) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 2048);
    let n = apps.len().min(side as usize * side as usize);
    let vcs = apps[..n]
        .iter()
        .enumerate()
        .map(|(i, &(acc, fp, plateau))| {
            let acc = f64::from(acc % 50_000 + 100);
            let fp = f64::from(fp % 20_000 + 256);
            let tail = acc * f64::from(plateau % 100) / 400.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, acc), (fp, tail)]),
            )
        })
        .collect::<Vec<_>>();
    let threads = (0..n)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, vcs[i].curve.at_zero())]))
        .collect();
    PlacementProblem::new(params, vcs, threads).expect("valid problem")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planners_always_emit_feasible_placements(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 1..12),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        for placement in [
            Planner::plan(&CdcsPlanner::default(), &problem, &cores),
            Planner::plan(&JigsawPlanner::default(), &problem, &cores),
        ] {
            prop_assert!(placement.check_feasible(&problem).is_ok());
        }
    }

    #[test]
    fn trade_refinement_never_hurts_eq2(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 2..10),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let without = Planner::plan(
            &CdcsPlanner { refine_trades: false, ..CdcsPlanner::default() },
            &problem,
            &cores,
        );
        let with = Planner::plan(&CdcsPlanner::default(), &problem, &cores);
        // Same allocation sizes; trades only move data closer under Eq. 2.
        prop_assert!(
            on_chip_latency(&problem, &with)
                <= on_chip_latency(&problem, &without) + 1e-6
        );
    }

    #[test]
    fn cdcs_total_latency_no_worse_than_jigsaw_clustered(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 4..12),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let jig = Planner::plan(&JigsawPlanner::default(), &problem, &cores);
        let cdcs = Planner::plan(&CdcsPlanner::default(), &problem, &cores);
        // On the paper's own cost model, the full pipeline must not lose to
        // the greedy baseline by more than rounding slack (1%).
        let tj = total_latency(&problem, &jig);
        let tc = total_latency(&problem, &cdcs);
        prop_assert!(tc <= tj * 1.01 + 1e-6, "CDCS {tc} vs Jigsaw {tj}");
    }
}

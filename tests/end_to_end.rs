//! Cross-crate integration tests: end-to-end simulations exercising the
//! public API, checking the paper's headline qualitative claims on small
//! configurations.

use cdcs::sim::{runner, MoveScheme, Scheme, SimConfig, Simulation};
use cdcs::workload::{MixSpec, WorkloadMix};

fn named(names: &[&str]) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::Named(
        names.iter().map(|s| s.to_string()).collect(),
    ))
    .expect("mix")
}

#[test]
fn all_schemes_run_the_same_mix() {
    let mix = named(&["calculix", "bzip2", "milc"]);
    let config = SimConfig::small_test();
    for scheme in [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ] {
        let r = runner::run_scheme(&config, &mix, scheme).expect("run");
        assert_eq!(r.threads.len(), 3, "{}", r.scheme);
        for t in &r.threads {
            assert!(t.ipc() > 0.0, "{} {}", r.scheme, t.app);
            assert!(t.accesses > 0);
        }
        assert!(r.system.instructions > 0.0);
    }
}

#[test]
fn weighted_speedup_is_one_for_baseline_and_positive_for_others() {
    let mix = named(&["calculix", "milc"]);
    let config = SimConfig::small_test();
    let alone = runner::alone_perf_for_mix(&config, &mix).expect("alone");
    let base = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
    assert!((runner::weighted_speedup_vs(&base, &base, &alone) - 1.0).abs() < 1e-12);
    let cdcs = runner::run_scheme(&config, &mix, Scheme::cdcs()).expect("cdcs");
    let ws = runner::weighted_speedup_vs(&cdcs, &base, &alone);
    assert!(ws > 0.5 && ws < 5.0, "WS {ws}");
}

#[test]
fn rnuca_minimizes_on_chip_latency_for_private_data() {
    // The §II-B claim: R-NUCA's private-to-local mapping nearly eliminates
    // LLC network latency; S-NUCA spreads accesses chip-wide.
    let mix = named(&["calculix", "calculix", "bzip2"]);
    let config = SimConfig::small_test();
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
    let rnuca = runner::run_scheme(&config, &mix, Scheme::rnuca()).expect("rnuca");
    assert!(
        rnuca.mean_on_chip_latency() < snuca.mean_on_chip_latency() / 3.0,
        "R-NUCA {:.2} vs S-NUCA {:.2}",
        rnuca.mean_on_chip_latency(),
        snuca.mean_on_chip_latency()
    );
}

#[test]
fn partitioned_schemes_protect_fitting_apps_from_streams() {
    // Partitioning isolates a cache-fitting app from many streaming
    // co-runners (capacity contention, §II-A "partitioned shared caches").
    let names = ["calculix", "milc", "milc", "milc", "milc", "milc"];
    let config = SimConfig::small_test();
    let mix = named(&names);
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
    let cdcs = runner::run_scheme(&config, &mix, Scheme::cdcs()).expect("cdcs");
    assert!(
        cdcs.threads[0].ipc() > snuca.threads[0].ipc(),
        "CDCS {} vs S-NUCA {}",
        cdcs.threads[0].ipc(),
        snuca.threads[0].ipc()
    );
}

#[test]
fn demand_moves_never_pause_and_bulk_always_does() {
    let mix = named(&["omnet", "xalancbmk", "bzip2", "calculix"]);
    let mut config = SimConfig::small_test();
    config.scheme = Scheme::cdcs();
    config.reconfig_benefit_factor = 0.0; // apply every reconfiguration

    config.move_scheme = MoveScheme::DemandMove;
    let demand = Simulation::new(config.clone(), mix.clone())
        .expect("sim")
        .run();
    assert_eq!(demand.system.pause_cycles, 0);

    config.move_scheme = MoveScheme::BulkInvalidate;
    let bulk = Simulation::new(config, mix).expect("sim").run();
    assert!(bulk.system.pause_cycles > 0);
    assert!(bulk.system.bulk_invalidations > 0);
}

#[test]
fn movement_scheme_ordering_matches_paper() {
    // Fig. 17/18: instant >= demand moves >= bulk invalidations in aggregate
    // performance (with forced per-epoch reconfigurations).
    let mix = named(&["calculix", "calculix", "bzip2", "gcc"]);
    let mut perf = Vec::new();
    for mv in [
        MoveScheme::Instant,
        MoveScheme::DemandMove,
        MoveScheme::BulkInvalidate,
    ] {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.move_scheme = mv;
        config.reconfig_benefit_factor = 0.0;
        let r = Simulation::new(config, mix.clone()).expect("sim").run();
        perf.push(r.system.aggregate_ipc());
    }
    assert!(
        perf[0] >= perf[2] * 0.98,
        "instant {} vs bulk {}",
        perf[0],
        perf[2]
    );
    assert!(
        perf[1] >= perf[2] * 0.98,
        "demand {} vs bulk {}",
        perf[1],
        perf[2]
    );
}

#[test]
fn multithreaded_process_shares_its_vc() {
    let mix = named(&["ilbdc"]);
    let config = SimConfig::small_test();
    let r = runner::run_scheme(&config, &mix, Scheme::cdcs()).expect("run");
    assert_eq!(r.threads.len(), 8);
    let perf = r.process_perf();
    assert_eq!(perf.len(), 1);
    assert!(perf[0] > 1.0, "aggregate process IPC {}", perf[0]);
}

#[test]
fn results_are_deterministic_across_runs() {
    let mix = named(&["omnet", "milc", "gcc"]);
    let config = SimConfig::small_test();
    let a = runner::run_scheme(&config, &mix, Scheme::cdcs()).expect("run");
    let b = runner::run_scheme(&config, &mix, Scheme::cdcs()).expect("run");
    assert_eq!(a.system.instructions, b.system.instructions);
    assert_eq!(a.system.traffic, b.system.traffic);
    assert_eq!(a.system.demand_moves, b.system.demand_moves);
}

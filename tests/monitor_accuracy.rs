//! Cross-crate monitor validation: GMONs measuring real workload streams
//! against the exact stack-distance profile (the §VI-C accuracy claims).

use cdcs::cache::monitor::{Gmon, GmonConfig, Monitor, Umon};
use cdcs::cache::{Line, StackProfiler};
use cdcs::workload::{spec, AccessStream, StreamTarget};

/// Runs an app's private stream through a monitor and the exact profiler.
fn measure(app_name: &str, n: usize) -> (Gmon, Umon, StackProfiler) {
    let app = spec::by_name(app_name).expect("app");
    let mut stream = AccessStream::for_thread(app, 0, 99);
    let mut gmon = Gmon::new(GmonConfig::covering(64, 64, 4, 524_288));
    let mut umon = Umon::fine_grained(524_288, 512);
    let mut prof = StackProfiler::new();
    let mut count = 0;
    while count < n {
        let (t, off) = stream.next_access();
        if t == StreamTarget::ThreadPrivate {
            gmon.record(Line(off));
            umon.record(Line(off));
            prof.record(Line(off));
            count += 1;
        }
    }
    (gmon, umon, prof)
}

#[test]
fn gmon_matches_exact_profile_on_smooth_curves() {
    // bzip2's Zipf curve is smooth: GMON error should be small everywhere.
    let (gmon, _, prof) = measure("bzip2", 400_000);
    let (g, e) = (gmon.miss_curve(), prof.miss_curve());
    for cap in [2048.0, 8192.0, 16384.0, 65536.0] {
        let err = (g.misses_at(cap) - e.misses_at(cap)).abs() / e.at_zero();
        assert!(err < 0.06, "capacity {cap}: err {err:.4}");
    }
}

#[test]
fn gmon_tracks_fine_grained_umon() {
    // §VI-C: 64-way GMONs match impractically large fine-grained UMONs.
    let (gmon, umon, _) = measure("gcc", 400_000);
    let (g, u) = (gmon.miss_curve(), umon.miss_curve());
    for cap in [4096.0, 16384.0, 65536.0, 262144.0] {
        let err = (g.misses_at(cap) - u.misses_at(cap)).abs() / u.at_zero();
        assert!(err < 0.08, "capacity {cap}: err {err:.4}");
    }
}

#[test]
fn streaming_app_reads_flat_everywhere() {
    let (gmon, umon, prof) = measure("milc", 300_000);
    for curve in [gmon.miss_curve(), umon.miss_curve(), prof.miss_curve()] {
        assert!(curve.misses_at(524_288.0) > 0.9 * curve.at_zero());
    }
}

#[test]
fn monitor_aging_preserves_curve_shape() {
    let (mut gmon, _, prof) = measure("bzip2", 400_000);
    let before = gmon.miss_curve();
    gmon.age();
    let after = gmon.miss_curve();
    let e = prof.miss_curve();
    // Aging scales counts (~3/4) but must not change the *shape*: the miss
    // ratio at each capacity stays put.
    for cap in [2048.0, 16384.0, 65536.0] {
        let rb = before.misses_at(cap) / before.at_zero();
        let ra = after.misses_at(cap) / after.at_zero();
        assert!((rb - ra).abs() < 0.02, "capacity {cap}: {rb:.3} vs {ra:.3}");
        let re = e.misses_at(cap) / e.at_zero();
        assert!(
            (ra - re).abs() < 0.08,
            "vs exact at {cap}: {ra:.3} vs {re:.3}"
        );
    }
}

//! Vendored `serde`: a working, minimal serialization framework.
//!
//! The workspace builds offline (no crates.io), so the real serde cannot be
//! fetched. Until PR 4 this crate was a panic-stub that only kept
//! `#[derive(Serialize, Deserialize)]` annotations compiling; it is now a
//! real (if deliberately small) framework: `vendor/serde_derive` generates
//! field-wise impls against the traits below, and `vendor/serde_json`
//! provides the JSON serializer/deserializer the experiment harness uses to
//! persist [`ExperimentReport`]-style artifacts.
//!
//! The design diverges from crates.io serde in one deliberate way: instead
//! of the visitor machinery, both traits drive a *push/pull* interface
//! (`&mut S` writer, `&mut D` reader). That keeps the derive macro small
//! enough to hand-roll without `syn` while still supporting everything the
//! repository serializes: nested structs, all four enum variant shapes,
//! sequences, tuples, fixed-size arrays, options, and the `skip` /
//! `default` / `with` field attributes. Call sites (`derive` annotations,
//! `serde_json::to_string_pretty`, `serde_json::from_str`) remain
//! source-compatible with the real crates, so swapping crates.io serde back
//! in stays a manifest-level change plus the `with`-module signatures.
//!
//! [`ExperimentReport`]: ../cdcs_bench/exp/struct.ExperimentReport.html

pub use serde_derive::{Deserialize, Serialize};

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Writes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (I/O, unsupported values).
    fn serialize<S: Serializer>(&self, serializer: &mut S) -> Result<(), S::Error>;
}

/// A data format that can serialize values (push interface).
///
/// The value being serialized calls exactly one scalar method, or one
/// balanced `*_begin`/`*_end` pair with elements in between. Separator and
/// layout bookkeeping (commas, indentation) is the serializer's job, not
/// the value's.
pub trait Serializer {
    /// Error type.
    type Error: ser::Error;

    /// Writes a boolean.
    fn emit_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Writes a signed integer.
    fn emit_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Writes an unsigned integer.
    fn emit_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Writes a 128-bit signed integer.
    fn emit_i128(&mut self, v: i128) -> Result<(), Self::Error>;
    /// Writes a 128-bit unsigned integer.
    fn emit_u128(&mut self, v: u128) -> Result<(), Self::Error>;
    /// Writes a float.
    fn emit_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Writes a string.
    fn emit_str(&mut self, v: &str) -> Result<(), Self::Error>;
    /// Writes a unit/null value (`None`, unit structs).
    fn emit_unit(&mut self) -> Result<(), Self::Error>;

    /// Starts a sequence of `len` elements.
    fn seq_begin(&mut self, len: usize) -> Result<(), Self::Error>;
    /// Announces the next sequence element (the value follows).
    fn seq_element(&mut self) -> Result<(), Self::Error>;
    /// Ends the current sequence.
    fn seq_end(&mut self) -> Result<(), Self::Error>;

    /// Starts a struct with `fields` serialized fields.
    fn struct_begin(&mut self, name: &'static str, fields: usize) -> Result<(), Self::Error>;
    /// Announces the next struct field (the value follows).
    fn struct_field(&mut self, name: &'static str) -> Result<(), Self::Error>;
    /// Ends the current struct.
    fn struct_end(&mut self) -> Result<(), Self::Error>;

    /// Writes a dataless enum variant.
    fn unit_variant(
        &mut self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<(), Self::Error>;
    /// Starts a variant with a payload (the payload value follows).
    fn variant_begin(
        &mut self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<(), Self::Error>;
    /// Ends the current payload-carrying variant.
    fn variant_end(&mut self) -> Result<(), Self::Error>;
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reads a value of `Self` from `deserializer`.
    ///
    /// # Errors
    ///
    /// Returns a deserializer error on malformed or mistyped input.
    fn deserialize<D: Deserializer<'de>>(deserializer: &mut D) -> Result<Self, D::Error>;
}

/// A data format that can deserialize values (pull interface).
pub trait Deserializer<'de> {
    /// Error type.
    type Error: de::Error;

    /// Reads a boolean.
    fn parse_bool(&mut self) -> Result<bool, Self::Error>;
    /// Reads a signed integer.
    fn parse_i64(&mut self) -> Result<i64, Self::Error>;
    /// Reads an unsigned integer.
    fn parse_u64(&mut self) -> Result<u64, Self::Error>;
    /// Reads a 128-bit signed integer.
    fn parse_i128(&mut self) -> Result<i128, Self::Error>;
    /// Reads a 128-bit unsigned integer.
    fn parse_u128(&mut self) -> Result<u128, Self::Error>;
    /// Reads a float.
    fn parse_f64(&mut self) -> Result<f64, Self::Error>;
    /// Reads a string.
    fn parse_string(&mut self) -> Result<String, Self::Error>;
    /// Consumes a unit/null value if one is next; returns whether it did.
    fn parse_null(&mut self) -> Result<bool, Self::Error>;

    /// Enters a sequence.
    fn seq_begin(&mut self) -> Result<(), Self::Error>;
    /// Advances to the next element; `false` once the sequence is exhausted
    /// (the terminator is consumed).
    fn seq_next(&mut self) -> Result<bool, Self::Error>;

    /// Enters a map/struct.
    fn map_begin(&mut self) -> Result<(), Self::Error>;
    /// Reads the next key, or `None` once the map is exhausted (the
    /// terminator is consumed). After `Some(key)`, the value is next.
    fn map_key(&mut self) -> Result<Option<String>, Self::Error>;

    /// Reads an enum header: the variant name, and whether a payload
    /// follows (`true` for newtype/tuple/struct variants).
    fn variant_begin(&mut self) -> Result<(String, bool), Self::Error>;
    /// Closes an enum value opened by [`Self::variant_begin`].
    fn variant_end(&mut self, has_payload: bool) -> Result<(), Self::Error>;

    /// Skips one complete value of any shape (unknown fields).
    fn skip_value(&mut self) -> Result<(), Self::Error>;
}

/// Serialization-side error plumbing.
pub mod ser {
    /// Errors produced by serializers.
    pub trait Error: Sized + core::fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error plumbing.
pub mod de {
    /// A description of what a deserializer expected (subset of serde's).
    pub trait Expected {
        /// Formats the expectation.
        fn fmt(&self, formatter: &mut core::fmt::Formatter<'_>) -> core::fmt::Result;
    }

    impl Expected for &str {
        fn fmt(&self, formatter: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(formatter, "{self}")
        }
    }

    /// Errors produced by deserializers.
    pub trait Error: Sized + core::fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;

        /// A sequence had the wrong number of elements.
        fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
            struct Wrap<'a>(&'a dyn Expected);
            impl core::fmt::Display for Wrap<'_> {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    self.0.fmt(f)
                }
            }
            Self::custom(format_args!(
                "invalid length {len}, expected {}",
                Wrap(expected)
            ))
        }

        /// A required struct field was absent from the input.
        fn missing_field(type_name: &'static str, field: &'static str) -> Self {
            Self::custom(format_args!("missing field `{field}` in `{type_name}`"))
        }

        /// An enum variant name was not recognized.
        fn unknown_variant(type_name: &'static str, variant: &str) -> Self {
            Self::custom(format_args!(
                "unknown variant `{variant}` of enum `{type_name}`"
            ))
        }
    }
}

macro_rules! serialize_unsigned {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                s.emit_u64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                let v = d.parse_u64()?;
                <$ty>::try_from(v).map_err(|_| {
                    <D::Error as de::Error>::custom(format_args!(
                        "integer {v} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                s.emit_i64(i64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                let v = d.parse_i64()?;
                <$ty>::try_from(v).map_err(|_| {
                    <D::Error as de::Error>::custom(format_args!(
                        "integer {v} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64);
serialize_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let v = d.parse_u64()?;
        usize::try_from(v)
            .map_err(|_| <D::Error as de::Error>::custom(format_args!("{v} overflows usize")))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let v = d.parse_i64()?;
        isize::try_from(v)
            .map_err(|_| <D::Error as de::Error>::custom(format_args!("{v} overflows isize")))
    }
}

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_u128(*self)
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.parse_u128()
    }
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_i128(*self)
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.parse_i128()
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_f64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(d.parse_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.parse_bool()
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_str(self.encode_utf8(&mut [0u8; 4]))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let s = d.parse_string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(<D::Error as de::Error>::custom(format_args!(
                "expected a single character, got {s:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.parse_string()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.emit_str(self)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.seq_begin(self.len())?;
        for item in self {
            s.seq_element()?;
            item.serialize(s)?;
        }
        s.seq_end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.seq_begin()?;
        let mut out = Vec::new();
        while d.seq_next()? {
            out.push(T::deserialize(d)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let v: Vec<T> = Vec::deserialize(d)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| <D::Error as de::Error>::invalid_length(len, &"a fixed-size array"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.emit_unit(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        if d.parse_null()? {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(d)?))
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: &mut S) -> Result<(), S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: &mut S) -> Result<(), S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

macro_rules! tuple_impls {
    ($(($len:expr => $($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                s.seq_begin($len)?;
                $(
                    s.seq_element()?;
                    self.$idx.serialize(s)?;
                )+
                s.seq_end()
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: &mut De) -> Result<Self, De::Error> {
                d.seq_begin()?;
                let mut seen = 0usize;
                let out = ($(
                    {
                        if !d.seq_next()? {
                            return Err(<De::Error as de::Error>::invalid_length(
                                seen,
                                &stringify!(a $len-tuple),
                            ));
                        }
                        seen += 1;
                        $name::deserialize(d)?
                    },
                )+);
                if d.seq_next()? {
                    return Err(<De::Error as de::Error>::invalid_length(
                        seen + 1,
                        &stringify!(a $len-tuple),
                    ));
                }
                Ok(out)
            }
        }
    )+};
}

tuple_impls! {
    (2 => A.0, B.1),
    (3 => A.0, B.1, C.2),
    (4 => A.0, B.1, C.2, D.3),
}

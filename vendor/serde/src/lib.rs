//! Stub `serde`: the trait surface the repository compiles against, without
//! any working serializer behind it.
//!
//! The workspace builds offline (no crates.io), so the real serde cannot be
//! fetched. The codebase annotates its types with `Serialize`/`Deserialize`
//! for forward compatibility but never serializes at runtime; this stub
//! keeps those annotations compiling. Every runtime entry point panics with
//! a clear message. Swapping the real serde back in is a one-line change in
//! the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// A type that can be serialized (stub: implementations panic if invoked).
pub trait Serialize {
    /// Serializes `self` (stub: panics).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize values (stub: never instantiated).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
}

/// A type that can be deserialized (stub: implementations panic if invoked).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value (stub: panics).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can deserialize values (stub: never instantiated).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

/// Serialization-side error plumbing.
pub mod ser {
    /// Errors produced by serializers.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error plumbing.
pub mod de {
    /// A description of what a deserializer expected (subset of serde's).
    pub trait Expected {
        /// Formats the expectation.
        fn fmt(&self, formatter: &mut core::fmt::Formatter<'_>) -> core::fmt::Result;
    }

    impl Expected for &str {
        fn fmt(&self, formatter: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(formatter, "{self}")
        }
    }

    /// Errors produced by deserializers.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;

        /// A sequence had the wrong number of elements.
        fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
            struct Wrap<'a>(&'a dyn Expected);
            impl core::fmt::Display for Wrap<'_> {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    self.0.fmt(f)
                }
            }
            Self::custom(format_args!(
                "invalid length {len}, expected {}",
                Wrap(expected)
            ))
        }
    }
}

macro_rules! stub_serialize_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                panic!("stub serde: serialization is not implemented")
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                panic!("stub serde: deserialization is not implemented")
            }
        }
    )*};
}

stub_serialize_impls!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String,
);

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        panic!("stub serde: serialization is not implemented")
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        panic!("stub serde: serialization is not implemented")
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        panic!("stub serde: deserialization is not implemented")
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        panic!("stub serde: serialization is not implemented")
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        panic!("stub serde: serialization is not implemented")
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        panic!("stub serde: deserialization is not implemented")
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        panic!("stub serde: serialization is not implemented")
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        panic!("stub serde: deserialization is not implemented")
    }
}

//! Vendored `serde_json`: a working JSON format for the vendored `serde`.
//!
//! Implements the push [`serde::Serializer`] (compact and pretty writers)
//! and the pull [`serde::Deserializer`] over a borrowed input string. The
//! public entry points mirror crates.io `serde_json` so call sites stay
//! source-compatible: [`to_string`], [`to_string_pretty`], [`from_str`].
//!
//! Representation choices match crates.io `serde_json`:
//!
//! * structs → objects, sequences/tuples → arrays, `None` → `null`;
//! * unit enum variants → `"Variant"`; payload variants →
//!   `{"Variant": payload}`;
//! * non-finite floats serialize as `null` (and `null` deserializes to
//!   `NaN` where a float is expected);
//! * integers print exactly (no float round-trip), so `u64::MAX` survives.
//!
//! Floats print through Rust's shortest-round-trip `Display`, so a
//! serialize → deserialize cycle reproduces every `f64` bit-exactly — the
//! experiment-artifact gate in CI relies on this.

use std::fmt;

/// Error raised by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Propagates [`serde::Serialize`] implementation errors (the built-in
/// impls are infallible).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut ser = Serializer::compact();
    value.serialize(&mut ser)?;
    Ok(ser.into_inner())
}

/// Serializes `value` to a human-readable, two-space-indented JSON string
/// (the format of the committed experiment artifacts).
///
/// # Errors
///
/// Propagates [`serde::Serialize`] implementation errors.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut ser = Serializer::pretty();
    value.serialize(&mut ser)?;
    Ok(ser.into_inner())
}

/// Deserializes a value of `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON, type mismatches, missing fields, or
/// trailing non-whitespace input.
pub fn from_str<'de, T: serde::Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    de.end()?;
    Ok(value)
}

/// JSON writer implementing the push [`serde::Serializer`].
pub struct Serializer {
    out: String,
    pretty: bool,
    /// Per-open-container element counts (for comma placement).
    counts: Vec<usize>,
}

impl Serializer {
    /// A compact (single-line) writer.
    pub fn compact() -> Self {
        Serializer {
            out: String::new(),
            pretty: false,
            counts: Vec::new(),
        }
    }

    /// A two-space-indented writer.
    pub fn pretty() -> Self {
        Serializer {
            out: String::new(),
            pretty: true,
            counts: Vec::new(),
        }
    }

    /// Consumes the writer, returning the JSON produced so far.
    pub fn into_inner(self) -> String {
        self.out
    }

    fn newline_indent(&mut self, depth: usize) {
        self.out.push('\n');
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    /// Starts the next element of the innermost container: comma separator
    /// plus (pretty) line break and indentation.
    fn next_element(&mut self) {
        let depth = self.counts.len();
        if let Some(count) = self.counts.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
        if self.pretty {
            self.newline_indent(depth);
        }
    }

    fn open(&mut self, delim: char) {
        self.out.push(delim);
        self.counts.push(0);
    }

    fn close(&mut self, delim: char) {
        let count = self.counts.pop().unwrap_or(0);
        if self.pretty && count > 0 {
            self.newline_indent(self.counts.len());
        }
        self.out.push(delim);
    }

    fn write_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl serde::Serializer for Serializer {
    type Error = Error;

    fn emit_bool(&mut self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn emit_i64(&mut self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn emit_u64(&mut self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn emit_i128(&mut self, v: i128) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn emit_u128(&mut self, v: u128) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn emit_f64(&mut self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            // Rust's `Display` prints the shortest string that parses back
            // to the same bits — exact round-trips, no precision knob.
            let s = v.to_string();
            self.out.push_str(&s);
            // Keep floats recognizable as floats (serde_json prints 1.0
            // as "1.0", not "1").
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn emit_str(&mut self, v: &str) -> Result<(), Error> {
        self.write_escaped(v);
        Ok(())
    }

    fn emit_unit(&mut self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn seq_begin(&mut self, _len: usize) -> Result<(), Error> {
        self.open('[');
        Ok(())
    }

    fn seq_element(&mut self) -> Result<(), Error> {
        self.next_element();
        Ok(())
    }

    fn seq_end(&mut self) -> Result<(), Error> {
        self.close(']');
        Ok(())
    }

    fn struct_begin(&mut self, _name: &'static str, _fields: usize) -> Result<(), Error> {
        self.open('{');
        Ok(())
    }

    fn struct_field(&mut self, name: &'static str) -> Result<(), Error> {
        self.next_element();
        self.write_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        Ok(())
    }

    fn struct_end(&mut self) -> Result<(), Error> {
        self.close('}');
        Ok(())
    }

    fn unit_variant(&mut self, _name: &'static str, variant: &'static str) -> Result<(), Error> {
        self.write_escaped(variant);
        Ok(())
    }

    fn variant_begin(&mut self, _name: &'static str, variant: &'static str) -> Result<(), Error> {
        self.open('{');
        self.next_element();
        self.write_escaped(variant);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        Ok(())
    }

    fn variant_end(&mut self) -> Result<(), Error> {
        self.close('}');
        Ok(())
    }
}

/// JSON reader implementing the pull [`serde::Deserializer`] over a
/// borrowed string.
pub struct Deserializer<'de> {
    input: &'de str,
    pos: usize,
    /// Per-open-container element counts (for comma handling).
    counts: Vec<usize>,
}

impl<'de> Deserializer<'de> {
    /// Builds a reader over `input`.
    pub fn new(input: &'de str) -> Self {
        Deserializer {
            input,
            pos: 0,
            counts: Vec::new(),
        }
    }

    /// Asserts that only whitespace remains.
    ///
    /// # Errors
    ///
    /// Returns an error when trailing non-whitespace input exists.
    pub fn end(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos < self.input.len() {
            return Err(self.error("trailing characters after JSON value"));
        }
        Ok(())
    }

    fn error(&self, msg: &str) -> Error {
        Error {
            message: format!("{msg} at byte {}", self.pos),
        }
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes().get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes().get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    /// Consumes `word` if it is next (after whitespace).
    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    /// Scans a JSON number token and returns its slice.
    fn number_token(&mut self) -> Result<&'de str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes().get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_string_inner(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.input[self.pos..];
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.error("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    let esc = self
                        .bytes()
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_word("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some((i, c)) => {
                    self.pos += i + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Shared comma/terminator handling for `]`- and `}`-closed containers.
    /// Returns `false` (popping the container) at the terminator.
    fn container_next(&mut self, close: u8) -> Result<bool, Error> {
        match self.peek() {
            Some(b) if b == close => {
                self.pos += 1;
                self.counts.pop();
                Ok(false)
            }
            Some(_) => {
                let first = match self.counts.last() {
                    Some(&count) => count == 0,
                    None => return Err(self.error("element outside any container")),
                };
                if !first {
                    self.expect(b',')?;
                    self.skip_ws();
                    if self.bytes().get(self.pos) == Some(&close) {
                        return Err(self.error("trailing comma"));
                    }
                }
                if let Some(count) = self.counts.last_mut() {
                    *count += 1;
                }
                Ok(true)
            }
            None => Err(self.error("unterminated container")),
        }
    }
}

impl<'de> serde::Deserializer<'de> for Deserializer<'de> {
    type Error = Error;

    fn parse_bool(&mut self) -> Result<bool, Error> {
        if self.eat_word("true") {
            Ok(true)
        } else if self.eat_word("false") {
            Ok(false)
        } else {
            Err(self.error("expected a boolean"))
        }
    }

    fn parse_i64(&mut self) -> Result<i64, Error> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| self.error(&format!("invalid integer `{tok}`")))
    }

    fn parse_u64(&mut self) -> Result<u64, Error> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| self.error(&format!("invalid integer `{tok}`")))
    }

    fn parse_i128(&mut self) -> Result<i128, Error> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| self.error(&format!("invalid integer `{tok}`")))
    }

    fn parse_u128(&mut self) -> Result<u128, Error> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| self.error(&format!("invalid integer `{tok}`")))
    }

    fn parse_f64(&mut self) -> Result<f64, Error> {
        // Non-finite floats serialize as `null`; read them back as NaN.
        if self.eat_word("null") {
            return Ok(f64::NAN);
        }
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| self.error(&format!("invalid number `{tok}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        self.parse_string_inner()
    }

    fn parse_null(&mut self) -> Result<bool, Error> {
        Ok(self.eat_word("null"))
    }

    fn seq_begin(&mut self) -> Result<(), Error> {
        self.expect(b'[')?;
        self.counts.push(0);
        Ok(())
    }

    fn seq_next(&mut self) -> Result<bool, Error> {
        self.container_next(b']')
    }

    fn map_begin(&mut self) -> Result<(), Error> {
        self.expect(b'{')?;
        self.counts.push(0);
        Ok(())
    }

    fn map_key(&mut self) -> Result<Option<String>, Error> {
        if !self.container_next(b'}')? {
            return Ok(None);
        }
        let key = self.parse_string()?;
        self.expect(b':')?;
        Ok(Some(key))
    }

    fn variant_begin(&mut self) -> Result<(String, bool), Error> {
        match self.peek() {
            Some(b'"') => Ok((self.parse_string_inner()?, false)),
            Some(b'{') => {
                self.pos += 1;
                let variant = self.parse_string()?;
                self.expect(b':')?;
                Ok((variant, true))
            }
            _ => Err(self.error("expected an enum (string or single-key object)")),
        }
    }

    fn variant_end(&mut self, has_payload: bool) -> Result<(), Error> {
        if has_payload {
            self.expect(b'}')?;
        }
        Ok(())
    }

    fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string_inner()?;
                Ok(())
            }
            Some(b'[') => {
                self.seq_begin()?;
                while self.seq_next()? {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'{') => {
                self.map_begin()?;
                while self.map_key()?.is_some() {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b't') | Some(b'f') => {
                self.parse_bool()?;
                Ok(())
            }
            Some(b'n') => {
                if self.eat_word("null") {
                    Ok(())
                } else {
                    Err(self.error("expected null"))
                }
            }
            Some(_) => {
                self.number_token()?;
                Ok(())
            }
            None => Err(self.error("expected a value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(
            to_string(&"hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn extreme_numbers_round_trip_exactly() {
        for v in [u64::MAX, u64::MAX - 1, 0, 1 << 63] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<u64>(&s).unwrap(), v);
        }
        for v in [
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            0.1 + 0.2,
            1.0 / 3.0,
            6.02214076e23,
        ] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let t: (u64, f64) = (9, 0.25);
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u64, f64)>(&s).unwrap(), t);

        let a: [u8; 3] = [7, 8, 9];
        assert_eq!(from_str::<[u8; 3]>(&to_string(&a).unwrap()).unwrap(), a);
        assert!(from_str::<[u8; 3]>("[1,2]").is_err());

        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<Vec<u32>>("[1,2,]").is_err());
        assert!(from_str::<Vec<u32>>("[1 2]").is_err());
        assert!(from_str::<u64>("12x").is_err());
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<bool>("yes").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("5 trailing").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  "), "{s}");
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }
}

//! Vendored `serde_derive`: generates real field-wise impls of the vendored
//! `serde` traits.
//!
//! The workspace builds offline, so the crates.io derive (and its `syn`
//! dependency tree) is unavailable. This macro hand-parses the token stream
//! of the annotated type — enough for everything the repository derives:
//! structs with named fields, tuple/newtype structs, unit structs, and
//! enums with unit, newtype, tuple, and struct variants. Generics are
//! deliberately unsupported (no annotated type uses them). Three field
//! attributes are honored, mirroring serde's:
//!
//! * `#[serde(skip)]` — never serialized; filled from `Default::default()`
//!   on deserialization.
//! * `#[serde(default)]` — serialized normally; `Default::default()` when
//!   absent from the input.
//! * `#[serde(with = "module")]` — delegates to `module::serialize` /
//!   `module::deserialize` (push/pull signatures; see
//!   `cdcs_core::descriptor::serde_buckets` for the shape).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    with: Option<String>,
}

/// The shape of a variant's payload.
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed body of the annotated type.
enum Body {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Field attributes recognized inside `#[serde(...)]`.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

/// Parses the contents of one `#[...]` attribute group, returning parsed
/// serde options if it was a `serde` attribute.
fn parse_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or other attribute
    }
    let Some(TokenTree::Group(inner)) = iter.next() else {
        return;
    };
    let mut it = inner.stream().into_iter().peekable();
    while let Some(tt) = it.next() {
        match tt {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                "with" => {
                    match (it.next(), it.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let s = lit.to_string();
                            attrs.with = Some(s.trim_matches('"').to_string());
                        }
                        other => {
                            panic!("serde(with = ...) expects a string literal, got {other:?}")
                        }
                    };
                }
                other => panic!("unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token in serde attribute: {other}"),
        }
    }
}

/// Consumes leading attributes from `iter`, folding serde options.
fn take_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        parse_attr(&g, &mut attrs);
                    }
                    other => panic!("expected attribute body after `#`, got {other:?}"),
                }
            }
            _ => return attrs,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consumes type tokens up to (and including) a top-level `,`, tracking
/// angle-bracket depth so commas inside generics do not terminate early.
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses a brace-delimited named-field list (`{ a: T, b: U }`).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
            with: attrs.with,
        });
    }
    fields
}

/// Counts the fields of a parenthesized tuple-field list (`(A, B)`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        let _ = take_attrs(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            return count;
        }
        skip_type(&mut iter);
        count += 1;
    }
}

/// Parses a brace-delimited enum body into variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let _ = take_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("explicit enum discriminants are not supported by the vendored derive")
            }
            other => panic!("expected `,` after variant, got {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Parses the macro input into the type name and its body shape.
fn parse_input(input: TokenStream) -> (String, Body) {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    continue; // visibility or other modifier
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected type name, got {other:?}"),
                };
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("the vendored serde_derive does not support generic type `{name}`")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let body = if kw == "struct" {
                            Body::NamedStruct(parse_named_fields(g.stream()))
                        } else {
                            Body::Enum(parse_variants(g.stream()))
                        };
                        return (name, body);
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        assert!(kw == "struct", "parenthesized enum body");
                        return (name, Body::TupleStruct(count_tuple_fields(g.stream())));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                        return (name, Body::UnitStruct);
                    }
                    other => panic!("unexpected token after type name: {other:?}"),
                }
            }
            // Skip attributes (`#` followed by a bracketed group).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum in input"),
        }
    }
}

/// Emits the serialization statements for a named-field list, reading each
/// field through `accessor(name)` (e.g. `&self.a` or a match binding).
fn gen_serialize_fields(out: &mut String, fields: &[Field], accessor: impl Fn(&str) -> String) {
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "::serde::Serializer::struct_field(__s, \"{}\")?;",
            f.name
        ));
        let value = accessor(&f.name);
        match &f.with {
            Some(module) => out.push_str(&format!("{module}::serialize({value}, __s)?;")),
            None => out.push_str(&format!("::serde::Serialize::serialize({value}, __s)?;")),
        }
    }
}

/// Emits the deserialization body for a named-field list: local options,
/// the key-dispatch loop, and the struct-literal field list (into
/// `literal`). `type_name` feeds error messages.
fn gen_deserialize_fields(
    out: &mut String,
    literal: &mut String,
    fields: &[Field],
    type_name: &str,
) {
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "let mut __f_{} = ::core::option::Option::None;",
            f.name
        ));
    }
    out.push_str("while let ::core::option::Option::Some(__key) = ::serde::Deserializer::map_key(__d)? { match __key.as_str() {");
    for f in fields.iter().filter(|f| !f.skip) {
        let read = match &f.with {
            Some(module) => format!("{module}::deserialize(__d)?"),
            None => "::serde::Deserialize::deserialize(__d)?".to_string(),
        };
        out.push_str(&format!(
            "\"{0}\" => {{ __f_{0} = ::core::option::Option::Some({read}); }}",
            f.name
        ));
    }
    out.push_str("_ => { ::serde::Deserializer::skip_value(__d)?; } } }");
    for f in fields {
        if f.skip {
            literal.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else if f.default {
            literal.push_str(&format!("{0}: __f_{0}.unwrap_or_default(),", f.name));
        } else {
            literal.push_str(&format!(
                "{0}: match __f_{0} {{ ::core::option::Option::Some(__v) => __v, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::missing_field(\"{1}\", \"{0}\")) }},",
                f.name, type_name
            ));
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let mut out = String::new();
    out.push_str("#[automatically_derived] #[allow(clippy::all, clippy::pedantic)] ");
    out.push_str(&format!("impl ::serde::Serialize for {name} {{"));
    out.push_str(
        "fn serialize<S: ::serde::Serializer>(&self, __s: &mut S) \
         -> ::core::result::Result<(), S::Error> {",
    );
    match &body {
        Body::UnitStruct => out.push_str("::serde::Serializer::emit_unit(__s)"),
        Body::TupleStruct(1) => {
            out.push_str("::serde::Serialize::serialize(&self.0, __s)");
        }
        Body::TupleStruct(arity) => {
            out.push_str(&format!("::serde::Serializer::seq_begin(__s, {arity})?;"));
            for i in 0..*arity {
                out.push_str(&format!(
                    "::serde::Serializer::seq_element(__s)?;\
                     ::serde::Serialize::serialize(&self.{i}, __s)?;"
                ));
            }
            out.push_str("::serde::Serializer::seq_end(__s)");
        }
        Body::NamedStruct(fields) => {
            let n = fields.iter().filter(|f| !f.skip).count();
            out.push_str(&format!(
                "::serde::Serializer::struct_begin(__s, \"{name}\", {n})?;"
            ));
            gen_serialize_fields(&mut out, fields, |f| format!("&self.{f}"));
            out.push_str("::serde::Serializer::struct_end(__s)");
        }
        Body::Enum(variants) => {
            out.push_str("match self {");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{0} => ::serde::Serializer::unit_variant(__s, \"{name}\", \"{0}\"),",
                        v.name
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "{name}::{0}(__v0) => {{\
                         ::serde::Serializer::variant_begin(__s, \"{name}\", \"{0}\")?;\
                         ::serde::Serialize::serialize(__v0, __s)?;\
                         ::serde::Serializer::variant_end(__s) }},",
                        v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__v{i}")).collect();
                        out.push_str(&format!(
                            "{name}::{0}({binds}) => {{\
                             ::serde::Serializer::variant_begin(__s, \"{name}\", \"{0}\")?;\
                             ::serde::Serializer::seq_begin(__s, {arity})?;",
                            v.name,
                            binds = binds.join(", ")
                        ));
                        for b in &binds {
                            out.push_str(&format!(
                                "::serde::Serializer::seq_element(__s)?;\
                                 ::serde::Serialize::serialize({b}, __s)?;"
                            ));
                        }
                        out.push_str(
                            "::serde::Serializer::seq_end(__s)?;\
                             ::serde::Serializer::variant_end(__s) },",
                        );
                    }
                    VariantKind::Named(fields) => {
                        // Skipped fields bind to `_` so the generated match
                        // arm has no unused bindings.
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    format!("{0}: __b_{0}", f.name)
                                }
                            })
                            .collect();
                        let n = fields.iter().filter(|f| !f.skip).count();
                        out.push_str(&format!(
                            "{name}::{0} {{ {binds} }} => {{\
                             ::serde::Serializer::variant_begin(__s, \"{name}\", \"{0}\")?;\
                             ::serde::Serializer::struct_begin(__s, \"{0}\", {n})?;",
                            v.name,
                            binds = binds.join(", ")
                        ));
                        gen_serialize_fields(&mut out, fields, |f| format!("__b_{f}"));
                        out.push_str(
                            "::serde::Serializer::struct_end(__s)?;\
                             ::serde::Serializer::variant_end(__s) },",
                        );
                    }
                }
            }
            out.push('}');
        }
    }
    out.push_str("} }");
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let mut out = String::new();
    out.push_str("#[automatically_derived] #[allow(clippy::all, clippy::pedantic)] ");
    out.push_str(&format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{"
    ));
    out.push_str(
        "fn deserialize<D: ::serde::Deserializer<'de>>(__d: &mut D) \
         -> ::core::result::Result<Self, D::Error> {",
    );
    match &body {
        Body::UnitStruct => out.push_str(&format!(
            "if ::serde::Deserializer::parse_null(__d)? {{ ::core::result::Result::Ok({name}) }} \
             else {{ ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
             \"expected null for unit struct {name}\")) }}"
        )),
        Body::TupleStruct(1) => out.push_str(&format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))"
        )),
        Body::TupleStruct(arity) => {
            out.push_str("::serde::Deserializer::seq_begin(__d)?;");
            let mut fields = String::new();
            for i in 0..*arity {
                fields.push_str(&format!(
                    "{{ if !::serde::Deserializer::seq_next(__d)? {{\
                     return ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::invalid_length({i}, &\"{arity} fields\")); }}\
                     ::serde::Deserialize::deserialize(__d)? }},"
                ));
            }
            out.push_str(&format!("let __value = {name}({fields});"));
            out.push_str(&format!(
                "if ::serde::Deserializer::seq_next(__d)? {{\
                 return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::invalid_length({arity} + 1, &\"{arity} fields\")); }}\
                 ::core::result::Result::Ok(__value)"
            ));
        }
        Body::NamedStruct(fields) => {
            out.push_str("::serde::Deserializer::map_begin(__d)?;");
            let mut literal = String::new();
            gen_deserialize_fields(&mut out, &mut literal, fields, &name);
            out.push_str(&format!(
                "::core::result::Result::Ok({name} {{ {literal} }})"
            ));
        }
        Body::Enum(variants) => {
            out.push_str(
                "let (__variant, __has_payload) = ::serde::Deserializer::variant_begin(__d)?;",
            );
            out.push_str("let __value = match __variant.as_str() {");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "\"{0}\" => {{ if __has_payload {{\
                         return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                         \"unit variant {name}::{0} takes no payload\")); }} {name}::{0} }},",
                        v.name
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "\"{0}\" => {{ if !__has_payload {{\
                         return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                         \"variant {name}::{0} expects a payload\")); }}\
                         {name}::{0}(::serde::Deserialize::deserialize(__d)?) }},",
                        v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let mut fields = String::new();
                        for i in 0..*arity {
                            fields.push_str(&format!(
                                "{{ if !::serde::Deserializer::seq_next(__d)? {{\
                                 return ::core::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::invalid_length({i}, &\"{arity} fields\")); }}\
                                 ::serde::Deserialize::deserialize(__d)? }},"
                            ));
                        }
                        out.push_str(&format!(
                            "\"{0}\" => {{ if !__has_payload {{\
                             return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                             \"variant {name}::{0} expects a payload\")); }}\
                             ::serde::Deserializer::seq_begin(__d)?;\
                             let __tuple = {name}::{0}({fields});\
                             if ::serde::Deserializer::seq_next(__d)? {{\
                             return ::core::result::Result::Err(\
                             <D::Error as ::serde::de::Error>::invalid_length({arity} + 1, &\"{arity} fields\")); }}\
                             __tuple }},",
                            v.name
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut body_code = String::new();
                        let mut literal = String::new();
                        gen_deserialize_fields(&mut body_code, &mut literal, fields, &v.name);
                        out.push_str(&format!(
                            "\"{0}\" => {{ if !__has_payload {{\
                             return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                             \"variant {name}::{0} expects a payload\")); }}\
                             ::serde::Deserializer::map_begin(__d)?;\
                             {body_code} {name}::{0} {{ {literal} }} }},",
                            v.name
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "_ => return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::unknown_variant(\"{name}\", &__variant)), }};"
            ));
            out.push_str(
                "::serde::Deserializer::variant_end(__d, __has_payload)?;\
                 ::core::result::Result::Ok(__value)",
            );
        }
    }
    out.push_str("} }");
    out.parse().expect("generated Deserialize impl parses")
}

//! Stub `serde_derive`: emits marker impls of the stub `serde` traits.
//!
//! The workspace builds offline, so the real serde is unavailable. Nothing
//! in the repository serializes at runtime today — derives exist so types
//! stay annotated for the day a real serializer is wired in — hence the
//! generated impls panic if ever invoked. The macro only needs the type's
//! name (and generics, which no annotated type uses), so parsing is a small
//! hand-rolled scan rather than a `syn` dependency.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            let name = name.to_string();
                            if let Some(TokenTree::Punct(p)) = iter.next() {
                                assert!(
                                    p.as_char() != '<',
                                    "stub serde_derive does not support generic type `{name}`"
                                );
                            }
                            return name;
                        }
                        other => panic!("expected type name, found {other:?}"),
                    }
                }
            }
            // Skip attributes (`#` followed by a bracketed group).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            _ => {}
        }
    }
    panic!("serde_derive: no struct or enum in input")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl serde::Serialize for {name} {{\
             fn serialize<S: serde::Serializer>(&self, _serializer: S)\
                 -> ::core::result::Result<S::Ok, S::Error> {{\
                 ::core::panic!(\"stub serde: serialization of {name} is not implemented\")\
             }}\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\
             fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D)\
                 -> ::core::result::Result<Self, D::Error> {{\
                 ::core::panic!(\"stub serde: deserialization of {name} is not implemented\")\
             }}\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

//! In-tree stand-in for the subset of `criterion` this workspace uses.
//!
//! The workspace builds offline, so the real crate is unavailable. This is
//! a working micro-benchmark harness, not a no-op: `Bencher::iter`
//! calibrates a per-sample iteration count, runs warm-up batches, takes
//! timed samples, and reports the **median ns/iteration** — the statistic
//! the repository's perf-trajectory files track. It skips criterion's
//! statistical machinery (outlier classification, regression analysis,
//! HTML reports).
//!
//! Extras this workspace relies on:
//!
//! * `CRITERION_SAVE_JSON=<path>` — append every completed benchmark as a
//!   JSON object (one per line) to `<path>`; `scripts/bench.sh` turns these
//!   into the committed `BENCH_*.json` perf-trajectory files.
//! * `CRITERION_SAMPLE_MS` / `CRITERION_SAMPLES` — override per-sample
//!   target time (default 5 ms) and sample count for quick smoke runs.

use std::fmt::Display;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name (empty for top-level benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Median wall time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples behind the median.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Benchmark throughput annotation (accepted, reported as-is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Builds an id of the form `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.repr)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
    sample_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5u64);
        Criterion {
            sample_size: samples,
            sample_target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark("", &id.to_string(), self.sample_size, self.sample_target, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates per-iteration throughput (recorded, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(
            &self.name,
            &id.to_string(),
            samples,
            self.criterion.sample_target,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting symmetry with real criterion).
    pub fn finish(self) {}
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    sample_target: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count targeting
    /// `sample_target` per sample, warms up, then takes `sample_size`
    /// timed samples and records the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the batch size until one batch costs >= 1 ms or
        // the batch is clearly long enough to time accurately.
        let mut iters = 1u64;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break (elapsed.as_nanos() as f64 / iters as f64).max(0.1);
            }
            iters *= 2;
        };
        let iters_per_sample =
            ((self.sample_target.as_nanos() as f64 / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        // One warm-up sample, then timed samples.
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        self.result = Some((median, iters_per_sample));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    samples: usize,
    sample_target: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size: samples.max(1),
        sample_target,
        result: None,
    };
    f(&mut bencher);
    let Some((median_ns, iters)) = bencher.result else {
        eprintln!("warning: benchmark {group}/{name} never called Bencher::iter");
        return;
    };
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("{label:<52} median {median_ns:>12.1} ns/iter  ({samples} samples x {iters} iters)");
    RECORDS.lock().expect("record lock").push(Record {
        group: group.to_string(),
        name: name.to_string(),
        median_ns,
        samples,
        iters_per_sample: iters,
    });
}

/// Flushes results; called by `criterion_main!` after all groups ran.
/// Appends one JSON object per benchmark to `$CRITERION_SAVE_JSON` if set.
pub fn finalize() {
    let records = RECORDS.lock().expect("record lock");
    let Ok(path) = std::env::var("CRITERION_SAVE_JSON") else {
        return;
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("CRITERION_SAVE_JSON={path}: {e}"));
    for r in records.iter() {
        writeln!(
            file,
            "{{\"group\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.2},\"samples\":{},\"iters_per_sample\":{}}}",
            r.group.replace('"', "'"),
            r.name.replace('"', "'"),
            r.median_ns,
            r.samples,
            r.iters_per_sample
        )
        .expect("write bench json");
    }
}

/// Declares a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            sample_size: 3,
            sample_target: Duration::from_micros(200),
        };
        let mut group = c.benchmark_group("t");
        group.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
        let records = RECORDS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.name == "noop_add")
            .expect("recorded");
        assert!(r.median_ns > 0.0 && r.median_ns < 1_000_000.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
    }
}

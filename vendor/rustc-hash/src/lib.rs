//! In-tree stand-in for `rustc-hash`: the Fx multiplicative hash.
//!
//! A non-cryptographic, DoS-unsafe, extremely cheap hasher — one rotate,
//! one xor and one multiply per word — which is exactly what the simulator's
//! line-address maps want: keys are already well-mixed cache-line addresses,
//! and the hash sits on the hottest path in the whole workspace (one lookup
//! per LLC access). Functionally equivalent to the real crate (same
//! word-at-a-time structure and multiplier family); hash values are not
//! guaranteed to match the upstream crate bit-for-bit, which nothing here
//! relies on.

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: word-at-a-time rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn hashes_differ_across_keys() {
        let mut distinct: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            distinct.insert(h.finish());
        }
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn with_capacity_works_with_default_hasher() {
        let m: FxHashMap<u64, u64> =
            FxHashMap::with_capacity_and_hasher(128, FxBuildHasher::default());
        assert!(m.capacity() >= 128);
    }
}

//! In-tree stand-in for the subset of `rayon` this workspace uses.
//!
//! The workspace builds offline, so the real crate is unavailable. This is
//! a working data-parallelism library, not a no-op: `par_iter().map(f)
//! .collect()` fans items across `std::thread::scope` workers that pull
//! indices from a shared atomic counter (dynamic load balancing, which the
//! experiment grids need — simulation cells vary widely in cost). Results
//! are reassembled in input order, so output is deterministic and identical
//! to the sequential equivalent whenever `f` itself is.
//!
//! Supported surface: `par_iter()` on slices and `Vec`s, `par_iter_mut()`
//! on mutable slices and `Vec`s, `into_par_iter()` on `usize` ranges,
//! `map`, `for_each`, `collect::<Vec<_>>()`, and [`current_num_threads`].
//! `RAYON_NUM_THREADS` caps the worker count like the real crate.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything a caller needs: `pub use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelSource, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

std::thread_local! {
    /// Scoped worker-count override for the current thread (see
    /// [`ThreadPool::install`]).
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads fan-outs will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builder for a worker pool with a pinned thread count, mirroring real
/// rayon's `ThreadPoolBuilder` API so callers stay source-compatible with
/// the upstream crate.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Pins the worker count (0 = auto-detect, as in real rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here; the `Result` matches real rayon's
    /// signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Build error type (never produced by the stand-in; exists for signature
/// compatibility with real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool with a pinned worker count. `install` scopes the count to the
/// closure via a thread-local override (panic-safe), so concurrently
/// running code — e.g. sibling tests — is unaffected.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with fan-outs started from this thread using this pool's
    /// worker count, restoring the previous behaviour afterwards.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let pinned = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(pinned))));
        f()
    }
}

/// Parallel iterator machinery.
pub mod iter {
    use super::current_num_threads;
    use super::AtomicUsize;
    use super::Ordering;

    /// A random-access source of items: the base every adapter composes on.
    ///
    /// `get(i)` must be callable concurrently from many threads; each index
    /// in `0..len()` is requested exactly once per drain.
    pub trait IndexedParallelSource: Sync + Sized {
        /// Item type produced.
        type Item: Send;

        /// Number of items.
        fn len(&self) -> usize;

        /// Whether the source is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Produces item `i`.
        ///
        /// # Safety
        ///
        /// Callers must request each index at most once per drain: sources
        /// like [`SliceIterMut`] hand out `&mut` borrows, so requesting an
        /// index twice would mint aliasing exclusive references. (Only the
        /// crate-internal [`drain`] calls this, and it upholds the
        /// contract via its atomic index counter.)
        unsafe fn get(&self, i: usize) -> Self::Item;
    }

    /// The user-facing parallel iterator: adapters plus the drain.
    pub trait ParallelIterator: IndexedParallelSource {
        /// Maps every item through `f` in parallel.
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Runs `f` on every item (parallel, no result).
        fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
            drain(&Map {
                base: self,
                f: |item| f(item),
            });
        }

        /// Drains the iterator into a collection, preserving input order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par_vec(drain(&self))
        }
    }

    impl<T: IndexedParallelSource> ParallelIterator for T {}

    /// Collections a parallel iterator can drain into.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from items already in input order.
        fn from_par_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Fans `source.get(i)` for `i in 0..len` across worker threads and
    /// returns the results in input order.
    fn drain<S: IndexedParallelSource>(source: &S) -> Vec<S::Item> {
        let n = source.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            // SAFETY: the sequential walk visits each index exactly once.
            return (0..n).map(|i| unsafe { source.get(i) }).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<S::Item>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, S::Item)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // SAFETY: the shared atomic counter hands each
                            // index to exactly one worker.
                            local.push((i, unsafe { source.get(i) }));
                        }
                        local
                    })
                })
                .collect();
            let mut slots: Vec<Option<S::Item>> = (0..n).map(|_| None).collect();
            for h in handles {
                for (i, item) in h.join().expect("parallel worker panicked") {
                    slots[i] = Some(item);
                }
            }
            slots
        });
        slots
            .iter_mut()
            .map(|s| s.take().expect("every index produced exactly once"))
            .collect()
    }

    /// `map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: IndexedParallelSource, R: Send, F: Fn(B::Item) -> R + Sync> IndexedParallelSource
        for Map<B, F>
    {
        type Item = R;

        fn len(&self) -> usize {
            self.base.len()
        }

        unsafe fn get(&self, i: usize) -> R {
            // SAFETY: forwarded under the caller's once-per-index contract.
            (self.f)(unsafe { self.base.get(i) })
        }
    }

    /// Parallel iterator over `&[T]`.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> IndexedParallelSource for SliceIter<'a, T> {
        type Item = &'a T;

        fn len(&self) -> usize {
            self.slice.len()
        }

        unsafe fn get(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    /// Parallel iterator over `&mut [T]`.
    ///
    /// Stored as a raw pointer + length so `get(&self, i)` can hand out
    /// `&'a mut T` from a shared receiver. Soundness rests on `get`'s
    /// once-per-index safety contract (upheld by the crate's one caller,
    /// [`drain`]): the `&mut` borrows handed out are disjoint, and the
    /// `'a` lifetime ties them all to the one `&'a mut [T]` borrow taken
    /// by [`IntoParallelRefMutIterator`].
    pub struct SliceIterMut<'a, T> {
        ptr: *mut T,
        len: usize,
        _marker: std::marker::PhantomData<&'a mut [T]>,
    }

    // SAFETY: the iterator only ever hands out disjoint `&mut T` (one per
    // index), so sharing the source across worker threads is safe whenever
    // `T` itself may cross threads.
    unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}
    unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}

    impl<'a, T: Send + 'a> IndexedParallelSource for SliceIterMut<'a, T> {
        type Item = &'a mut T;

        fn len(&self) -> usize {
            self.len
        }

        unsafe fn get(&self, i: usize) -> &'a mut T {
            debug_assert!(i < self.len);
            // SAFETY: `i < len` indexes the original slice, and the
            // caller's once-per-index contract guarantees no two returned
            // references alias.
            unsafe { &mut *self.ptr.add(i) }
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct RangeIter {
        start: usize,
        end: usize,
    }

    impl IndexedParallelSource for RangeIter {
        type Item = usize;

        fn len(&self) -> usize {
            self.end - self.start
        }

        unsafe fn get(&self, i: usize) -> usize {
            self.start + i
        }
    }

    /// `.par_iter()` on by-reference collections.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Returns a parallel iterator over references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `.par_iter_mut()` on by-mutable-reference collections.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Returns a parallel iterator over mutable references.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = SliceIterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            SliceIterMut {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = SliceIterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            self.as_mut_slice().par_iter_mut()
        }
    }

    /// `.into_par_iter()` on owned sources.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for core::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;

        fn into_par_iter(self) -> RangeIter {
            RangeIter {
                start: self.start,
                end: self.end,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (10..20).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (11..21).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .map(|i| {
                if i % 7 == 0 {
                    // Simulate a slow cell; black_box keeps the busy loop.
                    let mut acc = 0usize;
                    for k in 0..200_000 {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    std::hint::black_box(acc);
                    i
                } else {
                    i
                }
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(v, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_respects_install_scope() {
        // A pinned 1-worker pool must take the in-thread sequential path
        // and still produce the same mutations.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        let mut v: Vec<u64> = (0..64).collect();
        pool.install(|| v.par_iter_mut().for_each(|x| *x += 1));
        assert_eq!(v, (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
    }
}

//! In-tree stand-in for the subset of `rand` this workspace uses.
//!
//! The workspace builds offline, so the real crate is unavailable. Unlike
//! the serde stub this one is fully functional — simulations and planners
//! draw real random numbers from it — but it intentionally implements only
//! the API surface the repository exercises: `seed_from_u64` seeding,
//! `gen`/`gen_bool`/`gen_range` over half-open ranges, and slice shuffling.
//!
//! Both [`rngs::StdRng`] and [`rngs::SmallRng`] are xoshiro256++ generators
//! seeded through SplitMix64 (the reference seeding scheme), so streams are
//! deterministic per seed and identical across platforms. They are NOT
//! stream-compatible with the real `rand` crate; every consumer in this
//! repository only relies on per-seed determinism, not on matching external
//! reference streams.

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into independent state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core state.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is a fixed point; splitmix cannot produce it from
        // any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The "standard" generator (stub: xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    /// The "small fast" generator (stub: xoshiro256++ with a tweaked seed
    /// domain so Std/Small streams differ for equal seeds).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state ^ 0x51a1_1bad_c0de_d00d))
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening multiply-shift (Lemire): one `mul` on the hot
                // path instead of a 128-bit modulo. Bias is < 2^-64 per
                // draw for every span this workspace uses; accepted for
                // simplicity (the upstream crate rejects to remove it).
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}

//! In-tree stand-in for the subset of `proptest` this workspace uses.
//!
//! The workspace builds offline, so the real crate is unavailable. This is
//! a working property-testing harness: the `proptest!` macro expands each
//! test into a deterministic multi-case loop (seeded per test name, so runs
//! are reproducible), strategies generate random values, and the
//! `prop_assert*` macros report failures with the standard panic machinery.
//! What it deliberately omits from real proptest: shrinking (failures
//! report the generated values as-is via panic message context), failure
//! persistence files, and `fork`/timeout support.
//!
//! Set `PROPTEST_CASES` to override the per-test case count globally.

/// Configuration and RNG plumbing used by the `proptest!` expansion.
pub mod test_runner {
    /// Per-test configuration (subset of real proptest's).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG (xoshiro256++ seeded from the test name
    /// and case index, so every `cargo test` run sees the same cases).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut seed);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0, "empty sampling span");
            u128::from(self.next_u64()) % span
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Object-safe core (`generate`); combinators require `Sized`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union of alternatives; must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Boxes one arm (helper for `prop_oneof!` type unification).
        pub fn arm<S: Strategy<Value = T> + 'static>(strategy: S) -> Box<dyn Strategy<Value = T>> {
            Box::new(strategy)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u128) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// A fixed value (real proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeFrom<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (<$ty>::MAX as i128 - self.start as i128) as u128 + 1;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`,
/// `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Acceptable sizes for a generated collection.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec`s of values from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u128;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Picks uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty list");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u128) as usize].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform `bool`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The standard import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

/// Skips the current case unless the condition holds.
///
/// Real proptest regenerates rejected cases; this stand-in simply skips
/// them, which is equivalent for the loose rejection rates used here.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Union::arm($strategy) ),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    // Entry with a config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };

    // One test fn at a time.
    (@fns ($config:expr)) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // The immediately-invoked closure gives `prop_assume!` an
                // early-exit channel for the case body.
                #[allow(clippy::redundant_closure_call)]
                let _ = (|| -> ::core::option::Option<()> {
                    $crate::proptest!(@bind (__rng) $($args)*);
                    $body
                    ::core::option::Option::Some(())
                })();
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };

    // Argument muncher: `name in strategy-expr` separated by top-level commas.
    (@bind ($rng:ident)) => {};
    (@bind ($rng:ident) $arg:ident in $($rest:tt)*) => {
        $crate::proptest!(@munch ($rng) ($arg) [] $($rest)*);
    };
    (@munch ($rng:ident) ($arg:ident) [$($strategy:tt)*] , $next:ident in $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($($strategy)*), &mut $rng);
        $crate::proptest!(@munch ($rng) ($next) [] $($rest)*);
    };
    (@munch ($rng:ident) ($arg:ident) [$($strategy:tt)*] $(,)?) => {
        let $arg = $crate::strategy::Strategy::generate(&($($strategy)*), &mut $rng);
    };
    (@munch ($rng:ident) ($arg:ident) [$($strategy:tt)*] $token:tt $($rest:tt)*) => {
        $crate::proptest!(@munch ($rng) ($arg) [$($strategy)* $token] $($rest)*);
    };

    // Entry without a config attribute (must stay the last rule).
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 5u32..50, b in 0u16.., f in -2.0f64..3.5) {
            prop_assert!((5..50).contains(&a));
            let _ = b;
            prop_assert!((-2.0..3.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u64..10).prop_map(|v| v as i64),
                (0u64..10).prop_map(|v| -(v as i64)),
            ],
            pick in prop::sample::select(vec![1u64, 2, 4]),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(pick == 1 || pick == 2 || pick == 4);
            prop_assume!(flag);
            prop_assert!(flag);
        }
    }

    #[test]
    fn deterministic_across_invocations() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let gen = |name: &str| -> Vec<u64> {
            (0..8)
                .map(|case| (0u64..1000).generate(&mut TestRng::deterministic(name, case)))
                .collect()
        };
        assert_eq!(gen("x"), gen("x"));
        assert_ne!(gen("x"), gen("y"));
    }
}

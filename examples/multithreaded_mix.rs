//! Multi-threaded co-scheduling (the paper's Fig. 16 scenario): a
//! private-heavy, intensive process (mgrid) plus shared-heavy processes
//! (md, ilbdc, nab). CDCS spreads mgrid's threads and clusters each
//! shared-heavy process around its shared data. Declared as an
//! [`ExperimentSpec`]; the artifact lands under `out/`.
//!
//! ```sh
//! cargo run --example multithreaded_mix --release
//! ```

use cdcs::bench::exp::SpecKind;
use cdcs::bench::{run_and_save, specs};
use cdcs::workload::WorkloadMix;

fn main() -> Result<(), String> {
    let report = run_and_save(specs::multithreaded_mix())?;
    let grid = report.grid();
    let group = &grid.groups[0];
    let SpecKind::Grid(spec) = &report.spec.kind else {
        unreachable!("multithreaded mix is a grid experiment");
    };
    let mix = WorkloadMix::from_spec(&spec.mixes[0].spec)?;
    let baseline = &grid.cells[group.baseline.expect("baseline ran")].result;

    println!("{:<10} {:>8}   per-process speedups", "scheme", "WS");
    for row in &group.rows {
        let perf = grid.result(row).process_perf();
        let base = baseline.process_perf();
        let per: Vec<String> = mix
            .processes()
            .iter()
            .enumerate()
            .map(|(p, app)| format!("{}={:.2}x", app.name, perf[p] / base[p]))
            .collect();
        let ws = row.weighted_speedup.expect("ws derived");
        println!("{:<10} {:>8.3}   {}", row.scheme, ws, per.join(" "));
    }
    println!("\nexpected: CDCS at least matches the better of Jigsaw+C / Jigsaw+R per mix");
    Ok(())
}

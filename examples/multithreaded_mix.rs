//! Multi-threaded co-scheduling (the paper's Fig. 16 scenario): a
//! private-heavy, intensive process (mgrid) plus shared-heavy processes
//! (md, ilbdc, nab). CDCS spreads mgrid's threads and clusters each
//! shared-heavy process around its shared data.
//!
//! ```sh
//! cargo run --example multithreaded_mix --release
//! ```

use cdcs::sim::{runner, Scheme, SimConfig};
use cdcs::workload::{MixSpec, WorkloadMix};

fn main() -> Result<(), String> {
    let config = SimConfig::default();
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
        "mgrid".into(),
        "md".into(),
        "ilbdc".into(),
        "nab".into(),
    ]))?;
    let alone = runner::alone_perf_for_mix(&config, &mix)?;
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca)?;
    println!("{:<10} {:>8}   per-process speedups", "scheme", "WS");
    for scheme in [
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ] {
        let r = runner::run_scheme(&config, &mix, scheme)?;
        let ws = runner::weighted_speedup_vs(&r, &snuca, &alone);
        let perf = r.process_perf();
        let base = snuca.process_perf();
        let per: Vec<String> = mix
            .processes()
            .iter()
            .enumerate()
            .map(|(p, app)| format!("{}={:.2}x", app.name, perf[p] / base[p]))
            .collect();
        println!("{:<10} {:>8.3}   {}", r.scheme, ws, per.join(" "));
    }
    println!("\nexpected: CDCS at least matches the better of Jigsaw+C / Jigsaw+R per mix");
    Ok(())
}

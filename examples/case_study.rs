//! The paper's §II-B case study (Fig. 1 + Table 1): a 36-tile CMP running
//! 6x omnet, 14x milc, and 2x 8-thread ilbdc under four NUCA schemes —
//! declared as an [`ExperimentSpec`] (alone runs, baseline, and every
//! scheme fan out in one grid wave) and persisted as a JSON artifact.
//!
//! ```sh
//! cargo run --example case_study --release
//! ```

use cdcs::bench::exp::SpecKind;
use cdcs::bench::{run_and_save, specs};
use cdcs::workload::WorkloadMix;

fn main() -> Result<(), String> {
    let report = run_and_save(specs::case_study())?;
    let grid = report.grid();
    let group = &grid.groups[0];
    let SpecKind::Grid(spec) = &report.spec.kind else {
        unreachable!("case study is a grid experiment");
    };
    let mix = WorkloadMix::from_spec(&spec.mixes[0].spec)?;

    for row in &group.rows {
        if row.scheme == "S-NUCA" {
            continue;
        }
        let ws = row.weighted_speedup.expect("ws derived");
        println!("== {} (weighted speedup {ws:.2}) ==", row.scheme);
        // Speedup per benchmark (gmean over instances), via the shared
        // report rollup.
        for (app, speedup) in grid.per_app_speedups(group, row, &mix) {
            println!("  {app:<8} {speedup:>5.2}x");
        }
    }
    Ok(())
}

//! The paper's §II-B case study (Fig. 1 + Table 1): a 36-tile CMP running
//! 6x omnet, 14x milc, and 2x 8-thread ilbdc under four NUCA schemes.
//!
//! Prints per-app speedups over S-NUCA and an ASCII rendition of Fig. 1's
//! thread map.
//!
//! ```sh
//! cargo run --example case_study --release
//! ```

use cdcs::sim::{runner, Scheme, SimConfig};
use cdcs::workload::{MixSpec, WorkloadMix};

fn main() -> Result<(), String> {
    let mut config = SimConfig::case_study();
    // The headline runs below are one cell at a time, so cell-level
    // parallelism has nothing to chew on; bank-sharding the cell itself
    // puts the idle cores to work. Results are bit-identical to the
    // single-core engine, and `run_grid` (the alone-perf fan-out) clamps
    // the inner count so outer × inner stays within the machine.
    config.intra_cell_threads = SimConfig::auto_intra_cell_threads();
    let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy)?;
    let alone = runner::alone_perf_for_mix(&config, &mix)?;
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca)?;

    for scheme in [
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ] {
        let r = runner::run_scheme(&config, &mix, scheme)?;
        let ws = runner::weighted_speedup_vs(&r, &snuca, &alone);
        // Speedup per benchmark (gmean over instances).
        let perf = r.process_perf();
        let base = snuca.process_perf();
        let mut by_app: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for (p, app) in mix.processes().iter().enumerate() {
            by_app
                .entry(app.name.as_str())
                .or_default()
                .push(perf[p] / base[p]);
        }
        println!("== {} (weighted speedup {ws:.2}) ==", r.scheme);
        for (app, v) in &by_app {
            println!("  {app:<8} {:>5.2}x", runner::gmean(v));
        }
    }
    Ok(())
}

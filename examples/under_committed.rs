//! Under-committed chips (the paper's Fig. 13 scenario): few apps on a big
//! chip, where latency-aware allocation matters most — Jigsaw's "use all
//! capacity" hurts on-chip latency while CDCS leaves capacity unused.
//! Declared as an [`ExperimentSpec`]; the artifact lands under `out/`.
//!
//! ```sh
//! cargo run --example under_committed --release
//! ```

use cdcs::bench::exp::SpecKind;
use cdcs::bench::{run_and_save, specs};
use cdcs::workload::WorkloadMix;

fn main() -> Result<(), String> {
    let report = run_and_save(specs::under_committed())?;
    let grid = report.grid();
    let group = &grid.groups[0];
    let SpecKind::Grid(spec) = &report.spec.kind else {
        unreachable!("under_committed is a grid experiment");
    };
    let mix = WorkloadMix::from_spec(&spec.mixes[0].spec)?;
    println!(
        "4 apps on 64 cores: {:?}",
        mix.processes()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "scheme", "WS", "on-chip/acc", "off-chip/acc"
    );
    for row in &group.rows {
        println!(
            "{:<10} {:>8.3} {:>12.2} {:>12.2}",
            row.scheme,
            row.weighted_speedup.expect("ws derived"),
            row.on_chip_latency,
            row.off_chip_latency
        );
    }
    println!("\nexpected: CDCS keeps VCs compact (low on-chip latency); Jigsaw spreads allocations chip-wide");
    Ok(())
}

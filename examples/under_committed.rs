//! Under-committed chips (the paper's Fig. 13 scenario): few apps on a big
//! chip, where latency-aware allocation matters most — Jigsaw's "use all
//! capacity" hurts on-chip latency while CDCS leaves capacity unused.
//!
//! ```sh
//! cargo run --example under_committed --release
//! ```

use cdcs::sim::{runner, Scheme, SimConfig};
use cdcs::workload::{MixSpec, WorkloadMix};

fn main() -> Result<(), String> {
    let config = SimConfig::default(); // 64 cores
    let mix = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
        count: 4,
        mix_seed: 7,
    })?;
    println!(
        "4 apps on 64 cores: {:?}",
        mix.processes()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
    );
    let alone = runner::alone_perf_for_mix(&config, &mix)?;
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca)?;
    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "scheme", "WS", "on-chip/acc", "off-chip/acc"
    );
    for scheme in [Scheme::SNuca, Scheme::jigsaw_random(), Scheme::cdcs()] {
        let r = runner::run_scheme(&config, &mix, scheme)?;
        let ws = runner::weighted_speedup_vs(&r, &snuca, &alone);
        println!(
            "{:<10} {:>8.3} {:>12.2} {:>12.2}",
            r.scheme,
            ws,
            r.mean_on_chip_latency(),
            r.mean_off_chip_latency()
        );
    }
    println!("\nexpected: CDCS keeps VCs compact (low on-chip latency); Jigsaw spreads allocations chip-wide");
    Ok(())
}

//! Quickstart: simulate a small mix under S-NUCA and CDCS and compare —
//! declared as an [`ExperimentSpec`], run as one parallel wave, persisted
//! as a JSON artifact under `out/`.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use cdcs::bench::{run_and_save, specs};

fn main() -> Result<(), String> {
    let report = run_and_save(specs::quickstart())?;
    let grid = report.grid();
    let group = &grid.groups[0];
    let snuca = grid.result(&group.rows[0]);
    let cdcs = grid.result(&group.rows[1]);

    println!("per-app results (IPC):");
    println!(
        "{:<12} {:>8} {:>8} {:>9}",
        "app", "S-NUCA", "CDCS", "speedup"
    );
    for (s, c) in snuca.threads.iter().zip(&cdcs.threads) {
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.2}x",
            s.app,
            s.ipc(),
            c.ipc(),
            c.ipc() / s.ipc()
        );
    }
    let ws = group.rows[1].weighted_speedup.expect("ws derived");
    println!("\nweighted speedup of CDCS over S-NUCA: {ws:.3}");
    println!(
        "on-chip LLC latency: S-NUCA {:.1} vs CDCS {:.1} cycles/access",
        group.rows[0].on_chip_latency, group.rows[1].on_chip_latency
    );
    Ok(())
}

//! Quickstart: simulate a small mix under S-NUCA and CDCS and compare.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use cdcs::sim::{runner, Scheme, SimConfig};
use cdcs::workload::{MixSpec, WorkloadMix};

fn main() -> Result<(), String> {
    // Four apps on the paper's 64-tile chip: a cache-fitting app, a
    // streaming app, and two in between.
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
        "omnet".into(),
        "milc".into(),
        "xalancbmk".into(),
        "calculix".into(),
    ]))?;
    let config = SimConfig::default();

    println!("running alone-IPC calibration...");
    let alone = runner::alone_perf_for_mix(&config, &mix)?;
    println!("running S-NUCA baseline...");
    let snuca = runner::run_scheme(&config, &mix, Scheme::SNuca)?;
    println!("running CDCS...");
    let cdcs = runner::run_scheme(&config, &mix, Scheme::cdcs())?;

    println!("\nper-app results (IPC):");
    println!(
        "{:<12} {:>8} {:>8} {:>9}",
        "app", "S-NUCA", "CDCS", "speedup"
    );
    for (s, c) in snuca.threads.iter().zip(&cdcs.threads) {
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.2}x",
            s.app,
            s.ipc(),
            c.ipc(),
            c.ipc() / s.ipc()
        );
    }
    let ws = runner::weighted_speedup_vs(&cdcs, &snuca, &alone);
    println!("\nweighted speedup of CDCS over S-NUCA: {ws:.3}");
    println!(
        "on-chip LLC latency: S-NUCA {:.1} vs CDCS {:.1} cycles/access",
        snuca.mean_on_chip_latency(),
        cdcs.mean_on_chip_latency()
    );
    Ok(())
}

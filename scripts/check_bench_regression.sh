#!/usr/bin/env bash
# Guards the simulation engines against perf regressions using a
# machine-independent statistic: each `simulation/<scheme>` and
# `simulation_sharded/<scheme>` row is normalized by the same run's
# `simulation_reference/<scheme>` row (the definitional per-access engine,
# which shares every non-batching optimization). CI boxes and quick-mode
# sampling shift *absolute* medians by large, noisy factors, but all
# engines shift together — so the engine/reference ratio is stable, and a
# pipeline regression (a lost fast path, a reintroduced per-access
# allocation, a serialized shard phase) shows up as that ratio degrading
# vs the committed baseline.
#
# The planner trajectory (BENCH_planner.json) adds two gates of its own,
# also machine-independent because every operand comes from the same fresh
# run: the hierarchical `placement_scaling/full_pipeline/{256,1024}` rows
# must beat the linear extrapolation of the flat 64->144 trend (the flat
# pipeline is superlinear per tile, so the linear bound is conservative —
# exceeding it means the hierarchy stopped paying for itself), and each
# `placement_incremental/warm/N` row must be >=5x faster than its
# `placement_incremental/cold/N` sibling (the incremental warm-start
# contract). These gates engage whenever the committed baseline carries
# the corresponding rows.
#
# Any benchmark row the committed baseline gates on that is missing from
# either file is a hard failure: silently skipping a vanished row is
# exactly how a deleted bench would sneak past the gate.
#
# Usage: scripts/check_bench_regression.sh <baseline.json> <fresh.json> [max-degradation]
#        max-degradation defaults to 1.30 (fail if a fresh
#        engine/reference ratio exceeds the committed one by >30%).

set -euo pipefail

baseline="$1"
fresh="$2"
max_ratio="${3:-1.30}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Extract "group/name median" rows from the trajectory JSON. Tolerant of
# re-formatting: all whitespace (including newlines from pretty-printing)
# is stripped before matching, so one-object-per-line, packed, and
# pretty-printed documents all parse. Group/name values are identifiers
# (no spaces), so the stripping cannot corrupt them.
rows() {
    tr -d '[:space:]' < "$1" |
        grep -o '{"group":"[^"]*","name":"[^"]*","median_ns":[0-9.eE+-]*' |
        sed 's/{"group":"\([^"]*\)","name":"\([^"]*\)","median_ns":\([0-9.eE+-]*\)/\1\/\2 \3/'
}

lookup() { # file-rows name
    awk -v n="$2" '$1 == n { print $2 }' "$1"
}

rows "$baseline" > "$workdir/baseline"
rows "$fresh" > "$workdir/fresh"

status=0
checked=0
missing=0

require() { # value row-name file-label
    if [ -z "$1" ]; then
        echo "MISSING ROW: $2 not found in $3" >&2
        missing=1
    fi
}

for group in simulation simulation_sharded; do
    for scheme in $(awk -F'[/ ]' -v g="$group" '$1 == g { print $2 }' "$workdir/baseline"); do
        bb="$(lookup "$workdir/baseline" "$group/$scheme")"
        br="$(lookup "$workdir/baseline" "simulation_reference/$scheme")"
        fb="$(lookup "$workdir/fresh" "$group/$scheme")"
        fr="$(lookup "$workdir/fresh" "simulation_reference/$scheme")"
        require "$br" "simulation_reference/$scheme" "baseline $baseline"
        require "$fb" "$group/$scheme" "fresh $fresh"
        require "$fr" "simulation_reference/$scheme" "fresh $fresh"
        if [ -z "$bb" ] || [ -z "$br" ] || [ -z "$fb" ] || [ -z "$fr" ]; then
            continue
        fi
        checked=$((checked + 1))
        read -r committed_ratio fresh_ratio flag <<< "$(awk -v bb="$bb" -v br="$br" -v fb="$fb" -v fr="$fr" -v r="$max_ratio" 'BEGIN {
            base_ratio = bb / br
            fresh_ratio = fb / fr
            printf "%.3f %.3f %s", base_ratio, fresh_ratio, (fresh_ratio <= base_ratio * r) ? "ok" : "regressed"
        }')"
        printf '%-28s engine/reference: committed %s  fresh %s  %s\n' \
            "$group/$scheme" "$committed_ratio" "$fresh_ratio" "$flag"
        case "$flag" in regressed) status=1 ;; esac
    done
done

# Event-engine gate: engages when the baseline carries the event rows.
# `simulation_event/steady` runs the exact cell `simulation/CDCS` runs —
# an empty script through the event-driven loop, bit-identical results —
# so steady/batched is the event engine's pure dispatch-and-gating
# overhead, machine-independent like the engine/reference ratios above.
# `simulation_event/bursty` must exist (it is the trajectory row for
# event application itself) but is not ratio-gated: a script that bursts
# and idles legitimately does different work than the steady cell.
if [ -n "$(lookup "$workdir/baseline" simulation_event/steady)" ]; then
    bev="$(lookup "$workdir/baseline" simulation_event/steady)"
    bbat="$(lookup "$workdir/baseline" simulation/CDCS)"
    fev="$(lookup "$workdir/fresh" simulation_event/steady)"
    fbat="$(lookup "$workdir/fresh" simulation/CDCS)"
    fbur="$(lookup "$workdir/fresh" simulation_event/bursty)"
    require "$bbat" simulation/CDCS "baseline $baseline"
    require "$fev" simulation_event/steady "fresh $fresh"
    require "$fbat" simulation/CDCS "fresh $fresh"
    require "$fbur" simulation_event/bursty "fresh $fresh"
    if [ -n "$bev" ] && [ -n "$bbat" ] && [ -n "$fev" ] && [ -n "$fbat" ]; then
        checked=$((checked + 1))
        read -r committed_ratio fresh_ratio flag <<< "$(awk -v be="$bev" -v bb="$bbat" -v fe="$fev" -v fb="$fbat" -v r="$max_ratio" 'BEGIN {
            base_ratio = be / bb
            fresh_ratio = fe / fb
            printf "%.3f %.3f %s", base_ratio, fresh_ratio, (fresh_ratio <= base_ratio * r) ? "ok" : "regressed"
        }')"
        printf '%-28s event/batched: committed %s  fresh %s  %s\n' \
            "simulation_event/steady" "$committed_ratio" "$fresh_ratio" "$flag"
        case "$flag" in regressed) status=1 ;; esac
    fi
fi

# Hierarchical planner scaling gate: engages when the baseline gates on
# the mega-mesh rows. The fresh hierarchical median at N tiles must beat
# the linear extrapolation of the fresh flat 64->144 trend to N tiles.
if [ -n "$(lookup "$workdir/baseline" placement_scaling/full_pipeline/256)" ]; then
    f64="$(lookup "$workdir/fresh" placement_scaling/full_pipeline/64)"
    f144="$(lookup "$workdir/fresh" placement_scaling/full_pipeline/144)"
    require "$f64" placement_scaling/full_pipeline/64 "fresh $fresh"
    require "$f144" placement_scaling/full_pipeline/144 "fresh $fresh"
    for tiles in $(awk -F'[/ ]' '$1 == "placement_scaling" && $2 == "full_pipeline" && $3 + 0 >= 256 { print $3 }' "$workdir/baseline"); do
        fh="$(lookup "$workdir/fresh" "placement_scaling/full_pipeline/$tiles")"
        require "$fh" "placement_scaling/full_pipeline/$tiles" "fresh $fresh"
        if [ -z "$f64" ] || [ -z "$f144" ] || [ -z "$fh" ]; then
            continue
        fi
        checked=$((checked + 1))
        verdict="$(awk -v a="$f64" -v b="$f144" -v h="$fh" -v t="$tiles" 'BEGIN {
            limit = b + (b - a) / (144 - 64) * (t - 144)
            printf "%.0fns vs flat-linear limit %.0fns  %s", h, limit, (h < limit) ? "ok" : "regressed"
        }')"
        printf '%-36s hierarchical %s\n' "placement_scaling/full_pipeline/$tiles" "$verdict"
        case "$verdict" in *regressed) status=1 ;; esac
    done
fi

# Incremental warm-start gate: for every scale the baseline carries a
# cold row for, the fresh warm row must be >=5x faster than fresh cold.
for tiles in $(awk -F'[/ ]' '$1 == "placement_incremental" && $2 == "cold" { print $3 }' "$workdir/baseline"); do
    fc="$(lookup "$workdir/fresh" "placement_incremental/cold/$tiles")"
    fw="$(lookup "$workdir/fresh" "placement_incremental/warm/$tiles")"
    require "$fc" "placement_incremental/cold/$tiles" "fresh $fresh"
    require "$fw" "placement_incremental/warm/$tiles" "fresh $fresh"
    if [ -z "$fc" ] || [ -z "$fw" ]; then
        continue
    fi
    checked=$((checked + 1))
    verdict="$(awk -v c="$fc" -v w="$fw" 'BEGIN {
        printf "warm %.1fx faster than cold (need >=5x)  %s", c / w, (w * 5 <= c) ? "ok" : "regressed"
    }')"
    printf '%-36s %s\n' "placement_incremental/$tiles" "$verdict"
    case "$verdict" in *regressed) status=1 ;; esac
done

if [ "$missing" -ne 0 ]; then
    echo "baseline rows without counterparts — refusing to pass a partial comparison" >&2
    exit 1
fi
if [ "$checked" -eq 0 ]; then
    echo "no comparable benchmark rows found" >&2
    exit 1
fi
if [ "$status" -ne 0 ]; then
    echo "a gated benchmark regressed (engine ratio >$max_ratio x, event overhead >$max_ratio x, hier above flat-linear, or warm <5x cold)" >&2
fi
exit "$status"

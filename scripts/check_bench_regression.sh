#!/usr/bin/env bash
# Guards the batched simulation engine against perf regressions using a
# machine-independent statistic: each `simulation/<scheme>` row is
# normalized by the same run's `simulation_reference/<scheme>` row (the
# definitional per-access engine, which shares every non-batching
# optimization). CI boxes and quick-mode sampling shift *absolute* medians
# by large, noisy factors, but both engines shift together — so the
# batched/reference ratio is stable, and a batched-pipeline regression (a
# lost fast path, a reintroduced per-access allocation) shows up as that
# ratio degrading vs the committed baseline.
#
# Usage: scripts/check_bench_regression.sh <baseline.json> <fresh.json> [max-degradation]
#        max-degradation defaults to 1.30 (fail if the fresh
#        batched/reference ratio exceeds the committed one by >30%).

set -euo pipefail

baseline="$1"
fresh="$2"
max_ratio="${3:-1.30}"

# Extract "group/name median" rows from the trajectory JSON (one benchmark
# object per line inside the "benchmarks" array).
rows() {
    grep -o '{"group":"[^"]*","name":"[^"]*","median_ns":[0-9.]*' "$1" |
        sed 's/{"group":"\([^"]*\)","name":"\([^"]*\)","median_ns":\([0-9.]*\)/\1\/\2 \3/'
}

lookup() { # file-rows name
    awk -v n="$2" '$1 == n { print $2 }' "$1"
}

rows "$baseline" > /tmp/bench_baseline.$$
rows "$fresh" > /tmp/bench_fresh.$$

status=0
checked=0
for scheme in $(awk -F'[/ ]' '$1 == "simulation" { print $2 }' /tmp/bench_baseline.$$); do
    bb="$(lookup /tmp/bench_baseline.$$ "simulation/$scheme")"
    br="$(lookup /tmp/bench_baseline.$$ "simulation_reference/$scheme")"
    fb="$(lookup /tmp/bench_fresh.$$ "simulation/$scheme")"
    fr="$(lookup /tmp/bench_fresh.$$ "simulation_reference/$scheme")"
    if [ -z "$bb" ] || [ -z "$br" ] || [ -z "$fb" ] || [ -z "$fr" ]; then
        continue
    fi
    checked=$((checked + 1))
    verdict="$(awk -v bb="$bb" -v br="$br" -v fb="$fb" -v fr="$fr" -v r="$max_ratio" 'BEGIN {
        base_ratio = bb / br
        fresh_ratio = fb / fr
        printf "%.3f %.3f %s", base_ratio, fresh_ratio, (fresh_ratio <= base_ratio * r) ? "ok" : "regressed"
    }')"
    printf '%-10s batched/reference: committed %s  fresh %s  %s\n' \
        "$scheme" $verdict
    case "$verdict" in *regressed) status=1 ;; esac
done

rm -f /tmp/bench_baseline.$$ /tmp/bench_fresh.$$
if [ "$checked" -eq 0 ]; then
    echo "no comparable simulation rows found" >&2
    exit 1
fi
if [ "$status" -ne 0 ]; then
    echo "batched engine regressed >$max_ratio x relative to the reference engine" >&2
fi
exit "$status"

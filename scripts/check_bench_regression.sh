#!/usr/bin/env bash
# Guards the simulation engines against perf regressions using a
# machine-independent statistic: each `simulation/<scheme>` and
# `simulation_sharded/<scheme>` row is normalized by the same run's
# `simulation_reference/<scheme>` row (the definitional per-access engine,
# which shares every non-batching optimization). CI boxes and quick-mode
# sampling shift *absolute* medians by large, noisy factors, but all
# engines shift together — so the engine/reference ratio is stable, and a
# pipeline regression (a lost fast path, a reintroduced per-access
# allocation, a serialized shard phase) shows up as that ratio degrading
# vs the committed baseline.
#
# Any benchmark row the committed baseline gates on that is missing from
# either file is a hard failure: silently skipping a vanished row is
# exactly how a deleted bench would sneak past the gate.
#
# Usage: scripts/check_bench_regression.sh <baseline.json> <fresh.json> [max-degradation]
#        max-degradation defaults to 1.30 (fail if a fresh
#        engine/reference ratio exceeds the committed one by >30%).

set -euo pipefail

baseline="$1"
fresh="$2"
max_ratio="${3:-1.30}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Extract "group/name median" rows from the trajectory JSON. Tolerant of
# re-formatting: all whitespace (including newlines from pretty-printing)
# is stripped before matching, so one-object-per-line, packed, and
# pretty-printed documents all parse. Group/name values are identifiers
# (no spaces), so the stripping cannot corrupt them.
rows() {
    tr -d '[:space:]' < "$1" |
        grep -o '{"group":"[^"]*","name":"[^"]*","median_ns":[0-9.eE+-]*' |
        sed 's/{"group":"\([^"]*\)","name":"\([^"]*\)","median_ns":\([0-9.eE+-]*\)/\1\/\2 \3/'
}

lookup() { # file-rows name
    awk -v n="$2" '$1 == n { print $2 }' "$1"
}

rows "$baseline" > "$workdir/baseline"
rows "$fresh" > "$workdir/fresh"

status=0
checked=0
missing=0

require() { # value row-name file-label
    if [ -z "$1" ]; then
        echo "MISSING ROW: $2 not found in $3" >&2
        missing=1
    fi
}

for group in simulation simulation_sharded; do
    for scheme in $(awk -F'[/ ]' -v g="$group" '$1 == g { print $2 }' "$workdir/baseline"); do
        bb="$(lookup "$workdir/baseline" "$group/$scheme")"
        br="$(lookup "$workdir/baseline" "simulation_reference/$scheme")"
        fb="$(lookup "$workdir/fresh" "$group/$scheme")"
        fr="$(lookup "$workdir/fresh" "simulation_reference/$scheme")"
        require "$br" "simulation_reference/$scheme" "baseline $baseline"
        require "$fb" "$group/$scheme" "fresh $fresh"
        require "$fr" "simulation_reference/$scheme" "fresh $fresh"
        if [ -z "$bb" ] || [ -z "$br" ] || [ -z "$fb" ] || [ -z "$fr" ]; then
            continue
        fi
        checked=$((checked + 1))
        verdict="$(awk -v bb="$bb" -v br="$br" -v fb="$fb" -v fr="$fr" -v r="$max_ratio" 'BEGIN {
            base_ratio = bb / br
            fresh_ratio = fb / fr
            printf "%.3f %.3f %s", base_ratio, fresh_ratio, (fresh_ratio <= base_ratio * r) ? "ok" : "regressed"
        }')"
        printf '%-28s engine/reference: committed %s  fresh %s  %s\n' \
            "$group/$scheme" $verdict
        case "$verdict" in *regressed) status=1 ;; esac
    done
done

if [ "$missing" -ne 0 ]; then
    echo "baseline rows without counterparts — refusing to pass a partial comparison" >&2
    exit 1
fi
if [ "$checked" -eq 0 ]; then
    echo "no comparable simulation rows found" >&2
    exit 1
fi
if [ "$status" -ne 0 ]; then
    echo "an engine regressed >$max_ratio x relative to the reference engine" >&2
fi
exit "$status"

#!/usr/bin/env bash
# Shell-level tests for scripts/check_bench_regression.sh: the gate must
# (1) pass identical files, (2) fail a genuine ratio regression, (3) fail
# loudly when a baseline row has no counterpart instead of silently
# skipping it, (4) parse re-formatted (pretty-printed) JSON, (5) leave
# no temp files behind in any of those outcomes — including the early
# `set -e` exits — (6) enforce the planner gates: hierarchical
# mega-mesh rows below the flat linear extrapolation, warm incremental
# replans >=5x faster than cold, and missing planner rows failing loudly —
# and (7) enforce the event-engine gate: the steady event row's overhead
# over the batched CDCS row bounded, and a vanished bursty row loud.
#
# Usage: scripts/test_check_bench_regression.sh

set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"
checker="$here/check_bench_regression.sh"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
# Route every mktemp the checker performs into an observable, initially
# empty directory so leaks are detectable.
export TMPDIR="$scratch/tmp"
mkdir -p "$TMPDIR"

fails=0

check() { # name expected-exit actual-exit
    if [ "$2" -ne "$3" ]; then
        echo "FAIL: $1 (expected exit $2, got $3)" >&2
        fails=$((fails + 1))
    else
        echo "ok: $1"
    fi
}

assert_no_temp_leaks() { # name
    leaked="$(find "$TMPDIR" -mindepth 1 | head -5)"
    if [ -n "$leaked" ]; then
        echo "FAIL: $1 leaked temp files:" >&2
        echo "$leaked" >&2
        fails=$((fails + 1))
        rm -rf "$TMPDIR"
        mkdir -p "$TMPDIR"
    fi
}

emit_json() { # file  b-snuca b-cdcs sh-snuca sh-cdcs ref-snuca ref-cdcs ev-steady ev-bursty
    cat > "$1" <<EOF
{
  "bench": "sim",
  "unit": "ns_per_op_median",
  "benchmarks": [
    {"group":"simulation","name":"S-NUCA","median_ns":$2,"samples":10},
    {"group":"simulation","name":"CDCS","median_ns":$3,"samples":10},
    {"group":"simulation_sharded","name":"S-NUCA","median_ns":$4,"samples":10},
    {"group":"simulation_sharded","name":"CDCS","median_ns":$5,"samples":10},
    {"group":"simulation_reference","name":"S-NUCA","median_ns":$6,"samples":10},
    {"group":"simulation_reference","name":"CDCS","median_ns":$7,"samples":10},
    {"group":"simulation_event","name":"steady","median_ns":$8,"samples":10},
    {"group":"simulation_event","name":"bursty","median_ns":$9,"samples":10}
  ]
}
EOF
}

emit_json "$scratch/base.json" 600 700 650 720 800 900 770 1400

# 1. Identical files pass.
rc=0; "$checker" "$scratch/base.json" "$scratch/base.json" > /dev/null || rc=$?
check "identical files pass" 0 "$rc"
assert_no_temp_leaks "identical files"

# 2. A >30% engine/reference ratio regression fails.
emit_json "$scratch/slow.json" 1200 700 650 720 800 900 770 1400
rc=0; "$checker" "$scratch/base.json" "$scratch/slow.json" > /dev/null 2>&1 || rc=$?
check "ratio regression fails" 1 "$rc"
assert_no_temp_leaks "ratio regression"

# 7a. A >30% event-dispatch overhead regression (steady/batched ratio:
# committed 770/700 = 1.1, fresh 2000/700 = 2.86) fails.
emit_json "$scratch/event-slow.json" 600 700 650 720 800 900 2000 1400
rc=0; "$checker" "$scratch/base.json" "$scratch/event-slow.json" > /dev/null 2>&1 || rc=$?
check "event overhead regression fails" 1 "$rc"
assert_no_temp_leaks "event overhead regression"

# 7b. A vanished bursty trajectory row fails loudly, not silently.
grep -v '"bursty"' "$scratch/base.json" > "$scratch/no-bursty.json"
rc=0; out="$("$checker" "$scratch/base.json" "$scratch/no-bursty.json" 2>&1)" || rc=$?
check "missing bursty row fails" 1 "$rc"
case "$out" in
    *"MISSING ROW: simulation_event/bursty"*) echo "ok: missing bursty row is named" ;;
    *) echo "FAIL: missing bursty row not reported: $out" >&2; fails=$((fails + 1)) ;;
esac
assert_no_temp_leaks "missing bursty row"

# 3a. A baseline row missing from the fresh file fails loudly.
grep -v 'simulation_sharded","name":"CDCS' "$scratch/base.json" > "$scratch/missing-row.json"
rc=0; out="$("$checker" "$scratch/base.json" "$scratch/missing-row.json" 2>&1)" || rc=$?
check "missing fresh row fails" 1 "$rc"
case "$out" in
    *"MISSING ROW: simulation_sharded/CDCS"*) echo "ok: missing row is named" ;;
    *) echo "FAIL: missing row not reported: $out" >&2; fails=$((fails + 1)) ;;
esac
assert_no_temp_leaks "missing fresh row"

# 3b. A gated baseline row with no reference counterpart anywhere fails
# (the old implementation silently skipped the comparison).
grep -v 'simulation_reference' "$scratch/base.json" > "$scratch/no-ref.json"
rc=0; "$checker" "$scratch/base.json" "$scratch/no-ref.json" > /dev/null 2>&1 || rc=$?
check "missing reference counterpart fails" 1 "$rc"
assert_no_temp_leaks "missing reference"

# 3c. Files with no simulation rows at all fail.
echo '{"benchmarks":[]}' > "$scratch/empty.json"
rc=0; "$checker" "$scratch/empty.json" "$scratch/empty.json" > /dev/null 2>&1 || rc=$?
check "no comparable rows fails" 1 "$rc"
assert_no_temp_leaks "no comparable rows"

# 4. Re-formatted JSON (one field per line, indented) still parses.
sed 's/,/,\n    /g' "$scratch/base.json" > "$scratch/pretty.json"
rc=0; "$checker" "$scratch/base.json" "$scratch/pretty.json" > /dev/null || rc=$?
check "re-formatted JSON parses" 0 "$rc"
assert_no_temp_leaks "re-formatted JSON"

# 6. Planner gates (BENCH_planner.json shape): hierarchical scaling and
# incremental warm-start. Flat trend 64->144 has slope 10 ns/tile here, so
# the linear limit at 256 tiles is 2000 + 10*(256-144) = 3120 ns and at
# 1024 tiles 2000 + 10*(1024-144) = 10800 ns.
emit_planner_json() { # file f64 f144 h256 h1024 cold256 warm256 cold1024 warm1024
    cat > "$1" <<EOF
{
  "bench": "planner",
  "unit": "ns_per_op_median",
  "benchmarks": [
    {"group":"placement_scaling","name":"full_pipeline/64","median_ns":$2,"samples":10},
    {"group":"placement_scaling","name":"full_pipeline/144","median_ns":$3,"samples":10},
    {"group":"placement_scaling","name":"full_pipeline/256","median_ns":$4,"samples":10},
    {"group":"placement_scaling","name":"full_pipeline/1024","median_ns":$5,"samples":10},
    {"group":"placement_incremental","name":"cold/256","median_ns":$6,"samples":10},
    {"group":"placement_incremental","name":"warm/256","median_ns":$7,"samples":10},
    {"group":"placement_incremental","name":"cold/1024","median_ns":$8,"samples":10},
    {"group":"placement_incremental","name":"warm/1024","median_ns":$9,"samples":10}
  ]
}
EOF
}

emit_planner_json "$scratch/planner-base.json" 1200 2000 2500 8000 2500 300 8000 900

# 6a. Healthy planner trajectory passes.
rc=0; "$checker" "$scratch/planner-base.json" "$scratch/planner-base.json" > /dev/null || rc=$?
check "healthy planner gates pass" 0 "$rc"
assert_no_temp_leaks "healthy planner gates"

# 6b. Hierarchical 256 above the flat linear extrapolation (3120) fails.
emit_planner_json "$scratch/planner-slow.json" 1200 2000 3500 8000 2500 300 8000 900
rc=0; "$checker" "$scratch/planner-base.json" "$scratch/planner-slow.json" > /dev/null 2>&1 || rc=$?
check "hier above flat-linear fails" 1 "$rc"
assert_no_temp_leaks "hier above flat-linear"

# 6c. Warm replan slower than cold/5 fails (1024-tile row here: 8000/5=1600).
emit_planner_json "$scratch/planner-warm.json" 1200 2000 2500 8000 2500 300 8000 1700
rc=0; "$checker" "$scratch/planner-base.json" "$scratch/planner-warm.json" > /dev/null 2>&1 || rc=$?
check "warm <5x cold fails" 1 "$rc"
assert_no_temp_leaks "warm <5x cold"

# 6d. A vanished warm row fails loudly, not silently.
grep -v '"warm/1024"' "$scratch/planner-base.json" > "$scratch/planner-missing.json"
rc=0; out="$("$checker" "$scratch/planner-base.json" "$scratch/planner-missing.json" 2>&1)" || rc=$?
check "missing warm row fails" 1 "$rc"
case "$out" in
    *"MISSING ROW: placement_incremental/warm/1024"*) echo "ok: missing warm row is named" ;;
    *) echo "FAIL: missing warm row not reported: $out" >&2; fails=$((fails + 1)) ;;
esac
assert_no_temp_leaks "missing warm row"

# 5. Legacy /tmp/bench_* names must not be used at all (the old leak).
stray="$(find /tmp -maxdepth 1 -name 'bench_*' -newer "$scratch/base.json" 2>/dev/null | head -3)"
if [ -n "$stray" ]; then
    echo "FAIL: checker wrote legacy /tmp/bench_* files: $stray" >&2
    fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
    echo "$fails check(s) failed" >&2
    exit 1
fi
echo "all checks passed"

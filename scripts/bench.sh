#!/usr/bin/env bash
# Perf-trajectory benches: runs the planner, LLC and simulation-engine
# criterion benches and emits BENCH_planner.json / BENCH_llc.json /
# BENCH_sim.json (median ns/op per benchmark) at the repo root. Commit the
# refreshed files so future PRs can track the speedup trajectory.
#
# Usage: scripts/bench.sh [output-dir]        (default: repo root)
# Env:   CRITERION_SAMPLES / CRITERION_SAMPLE_MS tune the vendored harness.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-$repo_root}"
mkdir -p "$out_dir"
cd "$repo_root"

emit() {
    local bench_name="$1" out_file="$2" tmp
    tmp="$(mktemp)"
    echo "== cargo bench -p cdcs-bench --bench ${bench_name}"
    CRITERION_SAVE_JSON="$tmp" cargo bench -p cdcs-bench --bench "$bench_name"
    # The vendored criterion appends one JSON object per line; wrap them
    # into a stable, committable JSON document.
    {
        echo '{'
        echo "  \"bench\": \"${bench_name}\","
        echo "  \"unit\": \"ns_per_op_median\","
        echo '  "benchmarks": ['
        awk 'NR > 1 { print "    " prev "," } { prev = $0 } END { if (NR > 0) print "    " prev }' "$tmp"
        echo '  ]'
        echo '}'
    } > "$out_file"
    rm -f "$tmp"
    echo "wrote $out_file"
}

emit placement "$out_dir/BENCH_planner.json"
emit llc "$out_dir/BENCH_llc.json"
emit sim "$out_dir/BENCH_sim.json"

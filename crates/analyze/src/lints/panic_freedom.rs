//! `panic-freedom` — the daemon never panics on a poisoned lock.
//!
//! PR 6's hardening rule, pinned statically: a worker that panicked while
//! holding a lock poisons it, and any later `.lock().unwrap()` turns one
//! contained fault into a daemon-wide cascade. Every lock acquisition in
//! `cdcs-serve` non-test code must recover instead:
//!
//! ```ignore
//! let guard = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
//! ```
//!
//! The pass flags `.lock()`, `.read()` or `.write()` results consumed by
//! `.unwrap()` / `.expect(…)`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

const LINT: &str = "panic-freedom";

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    // Pattern: `.` {lock|read|write} `(` `)` `.` {unwrap|expect} `(`
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
            continue;
        }
        if file.is_test_line(m.line) {
            continue;
        }
        if !(toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.')))
        {
            continue;
        }
        let Some(sink) = toks.get(i + 5) else {
            continue;
        };
        if (sink.is_ident("unwrap") || sink.is_ident("expect"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct('('))
        {
            out.push(Diagnostic {
                lint: LINT.to_string(),
                file: file.rel.clone(),
                line: sink.line,
                message: format!(
                    "`.{}().{}(…)` panics on a poisoned lock; recover with \
                     `.{}().unwrap_or_else(PoisonError::into_inner)`",
                    m.text, sink.text, m.text
                ),
            });
        }
    }
}

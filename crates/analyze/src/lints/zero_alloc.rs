//! `zero-alloc` — fenced hot regions may not allocate.
//!
//! The `plan_into` call graph performs a whole warm reconfiguration epoch
//! with zero allocations (pinned dynamically by `crates/core/tests/
//! alloc_free.rs` under a counting allocator). The dynamic test only sees
//! lines it executes; this pass pins the property at the source level for
//! every line inside a fence:
//!
//! ```ignore
//! // lint: zero-alloc
//! pub fn plan_into(&mut self, …) { … }
//! // lint: end-zero-alloc
//! ```
//!
//! Forbidden inside fences: `Vec::new`, `vec![…]`, `.collect`, `.to_vec`,
//! `.clone()`, `Box::new`, `format!`. Cold-path setup lines (first-use
//! pool growth) carry `lint: allow(zero-alloc) — <why cold>` waivers.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

const LINT: &str = "zero-alloc";

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.fences.is_empty() {
        return;
    }
    let toks = &file.toks;
    let push = |line: u32, what: &str, out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic {
            lint: LINT.to_string(),
            file: file.rel.clone(),
            line,
            message: format!("`{what}` allocates inside a zero-alloc fence"),
        });
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if !file.in_fence(t.line) {
            continue;
        }
        let colon2 = |j: usize| {
            toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        };
        if (t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("String"))
            && colon2(i + 1)
            && toks.get(i + 2 + 1).is_some_and(|n| n.is_ident("new"))
        {
            push(t.line, &format!("{}::new", t.text), out);
        } else if t.is_ident("vec") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            push(t.line, "vec!", out);
        } else if t.is_ident("format") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            push(t.line, "format!", out);
        } else if t.is_punct('.') {
            let Some(m) = toks.get(i + 1) else { continue };
            if m.is_ident("collect") || m.is_ident("to_vec") {
                push(m.line, &format!(".{}", m.text), out);
            } else if m.is_ident("clone")
                && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
                && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
            {
                push(m.line, ".clone()", out);
            }
        }
    }
}

//! `golden-coupling` — config structs may never break committed goldens.
//!
//! `out/fig5.json` and `out/fig12_small.json` are byte-exact CI goldens,
//! and `specs/*.json` round-trip to byte fixpoints. A new `SimConfig` or
//! `ConfigPatch` field *without* `#[serde(default)]` makes every committed
//! JSON document (written before the field existed) fail to deserialize —
//! the exact regression that turns "add a knob" into "regenerate every
//! golden". This pass requires the attribute on every field of the structs
//! in [`GOLDEN_STRUCTS`], so the mistake is caught at analysis time rather
//! than in the artifact-diff CI step.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{match_brace, SourceFile};

const LINT: &str = "golden-coupling";

/// Structs whose serialized form is pinned by committed artifacts, plus
/// the fleet wire types (a version-skewed runner/daemon pair must parse
/// each other leniently — same mechanism, same lint), plus the dynamic
/// workload types that ride inside `SimConfig`/`ConfigPatch` (event
/// scripts in committed specs, trace indexes in committed fixtures).
pub const GOLDEN_STRUCTS: [&str; 15] = [
    "SimConfig",
    "ConfigPatch",
    "GridCell",
    "WorkloadMix",
    "RunnerHello",
    "RegisterReply",
    "PollReply",
    "LeaseGrant",
    "LeaseResult",
    "FleetStatus",
    "RunnerStatus",
    "EventScript",
    "TimedEvent",
    "TraceIndex",
    "TraceThreadMeta",
];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_ident("struct")
            && toks
                .get(i + 1)
                .is_some_and(|t| GOLDEN_STRUCTS.iter().any(|s| t.is_ident(s))))
        {
            i += 1;
            continue;
        }
        let struct_name = toks[i + 1].text.clone();
        // Find the body brace (tuple/unit structs end in `;` — none here).
        let mut b = i + 2;
        while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
            b += 1;
        }
        if b >= toks.len() || toks[b].is_punct(';') {
            i = b + 1;
            continue;
        }
        let end = match_brace(toks, b);
        check_fields(file, &struct_name, b + 1, end, out);
        i = end + 1;
    }
}

fn check_fields(
    file: &SourceFile,
    struct_name: &str,
    mut j: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &file.toks;
    while j < end {
        // Gather this field's attributes.
        let mut has_serde_default = false;
        while j + 1 < end && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let close = bracket_match(file, j + 1, end);
            let attr = &toks[j + 2..close];
            let is_serde = attr.first().is_some_and(|t| t.is_ident("serde"));
            if is_serde
                && attr
                    .iter()
                    .any(|t| t.is_ident("default") || t.is_ident("skip"))
            {
                // `skip` fields are refilled from Default and never
                // serialized, which is golden-compatible too.
                has_serde_default = true;
            }
            j = close + 1;
        }
        // `pub` / `pub(crate)` visibility.
        if toks.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                while j < end && !toks[j].is_punct(')') {
                    j += 1;
                }
                j += 1;
            }
        }
        // Field name.
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            break;
        };
        if !has_serde_default {
            out.push(Diagnostic {
                lint: LINT.to_string(),
                file: file.rel.clone(),
                line: name_tok.line,
                message: format!(
                    "`{struct_name}::{}` lacks `#[serde(default)]`; committed goldens and \
                     specs written before this field existed would fail to deserialize",
                    name_tok.text
                ),
            });
        }
        // Skip to the field-separating comma at brace/bracket/paren depth 0
        // (generic commas in the type hide behind `<…>`, which the lexer
        // leaves as puncts — track angle depth too, conservatively).
        j += 1;
        let mut depth = 0i32;
        let mut angle = 0i32;
        while j < end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct(',') && depth == 0 && angle <= 0 {
                j += 1;
                break;
            }
            j += 1;
        }
    }
}

/// Bracket-matches from `open` (a `[`), bounded by `end`.
fn bracket_match(file: &SourceFile, open: usize, end: usize) -> usize {
    let toks = &file.toks;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    end
}

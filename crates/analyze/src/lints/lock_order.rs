//! `lock-order` — `cdcs-serve` acquires its mutexes in one declared order.
//!
//! The daemon holds six mutexes across four layers (server → scheduler →
//! job → admission). Deadlock needs two functions acquiring two of them in
//! opposite orders, so the pass extracts, per function, the sequence of
//! lock acquisitions appearing in the body and checks every ordered pair
//! against [`ORDER`]. The check is conservative-lexical: a later
//! acquisition counts even if the earlier guard was already dropped —
//! waive those lines with `lint: allow(lock-order) — guard dropped above`.
//!
//! Acquisitions are recognized three ways:
//! * directly — `<name>.lock()` (receiver ident before the call);
//! * through the named wrapper methods ([`WRAPPERS`]: `lock_jobs`,
//!   `lock_phase`, `lock_running`);
//! * through a bare `self.lock()` whose meaning is file-specific
//!   ([`SELF_ALIAS`]).
//!
//! A `.lock()` on a receiver not declared in [`ORDER`] is itself a
//! diagnostic: new mutexes must be added to the table (with a position
//! chosen against the existing ones) before they can ship.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{match_brace, SourceFile};

const LINT: &str = "lock-order";

/// The declared acquisition order, outermost first. Derived from the
/// daemon's layering: the server's job list is the entry point, the
/// fleet's runner/lease/ring state nests next (its poll path holds
/// `fleet` while claiming from the rotation — the second deliberate
/// nesting), the scheduler's rotation coordinates workers, per-job state
/// nests inside (the running-cell bookkeeping is touch-and-release
/// around each unit, the phase is the terminal-state gate, and the
/// assembly is drained *while the phase lock is held* in `try_finalize`
/// — the other deliberate nesting), and the admission buckets are a leaf
/// taken on their own.
pub const ORDER: [&str; 7] = [
    "jobs",
    "fleet",
    "rotation",
    "running_cells",
    "phase",
    "assembly",
    "buckets",
];

/// Wrapper methods that acquire a named lock.
pub const WRAPPERS: [(&str, &str); 4] = [
    ("lock_jobs", "jobs"),
    ("lock_fleet", "fleet"),
    ("lock_phase", "phase"),
    ("lock_running", "running_cells"),
];

/// What a bare `self.lock()` means, per file stem.
pub const SELF_ALIAS: [(&str, &str); 1] = [("scheduler", "rotation")];

fn rank(name: &str) -> Option<usize> {
    ORDER.iter().position(|&n| n == name)
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    let stem = file
        .rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    let self_alias = SELF_ALIAS
        .iter()
        .find(|(s, _)| *s == stem)
        .map(|&(_, lock)| lock);

    // Walk functions: `fn name … { body }`.
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let fn_name = toks
            .get(i + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or("?", |t| t.text.as_str())
            .to_string();
        // Find the body brace (or `;` for a bodyless trait method).
        let mut b = i + 1;
        while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
            b += 1;
        }
        if b >= toks.len() || toks[b].is_punct(';') {
            i = b + 1;
            continue;
        }
        let end = match_brace(toks, b);
        check_body(file, &fn_name, b, end, self_alias, out);
        i = end + 1;
    }
}

fn check_body(
    file: &SourceFile,
    fn_name: &str,
    body_start: usize,
    body_end: usize,
    self_alias: Option<&str>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &file.toks;
    // (lock name, line) in first-acquisition order.
    let mut seq: Vec<(String, u32)> = Vec::new();
    let mut j = body_start;
    while j < body_end {
        let t = &toks[j];
        if file.is_test_line(t.line) {
            j += 1;
            continue;
        }
        let mut acquired: Option<(String, u32)> = None;
        if t.is_ident("lock")
            && toks.get(j + 1).is_some_and(|p| p.is_punct('('))
            && j >= 2
            && toks[j - 1].is_punct('.')
            && toks[j - 2].kind == TokKind::Ident
        {
            let recv = toks[j - 2].text.as_str();
            if recv == "self" {
                match self_alias {
                    Some(lock) => acquired = Some((lock.to_string(), t.line)),
                    None => out.push(Diagnostic {
                        lint: LINT.to_string(),
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "bare `self.lock()` in `{fn_name}` has no SELF_ALIAS entry for \
                             `{stem}.rs`; name the mutex so its order can be checked",
                            stem = file
                                .rel
                                .rsplit('/')
                                .next()
                                .and_then(|f| f.strip_suffix(".rs"))
                                .unwrap_or("?")
                        ),
                    }),
                }
            } else {
                acquired = Some((recv.to_string(), t.line));
            }
        } else if toks.get(j + 1).is_some_and(|p| p.is_punct('(')) {
            if let Some(&(_, lock)) = WRAPPERS.iter().find(|(w, _)| t.is_ident(w)) {
                acquired = Some((lock.to_string(), t.line));
            }
        }
        if let Some((name, line)) = acquired {
            if rank(&name).is_none() {
                out.push(Diagnostic {
                    lint: LINT.to_string(),
                    file: file.rel.clone(),
                    line,
                    message: format!(
                        "lock `{name}` (in `{fn_name}`) is not in the declared order table; \
                         add it to lints::lock_order::ORDER"
                    ),
                });
            } else if !seq.iter().any(|(n, _)| *n == name) {
                seq.push((name, line));
            }
        }
        j += 1;
    }
    for w in 0..seq.len() {
        for v in w + 1..seq.len() {
            let (ref a, _) = seq[w];
            let (ref b, line_b) = seq[v];
            if rank(a) > rank(b) {
                out.push(Diagnostic {
                    lint: LINT.to_string(),
                    file: file.rel.clone(),
                    line: line_b,
                    message: format!(
                        "`{b}` acquired after `{a}` in `{fn_name}`, but the declared order is \
                         `{b}` before `{a}` (see lints::lock_order::ORDER)"
                    ),
                });
            }
        }
    }
}

//! `determinism` — result-affecting crates must be reproducible from the
//! seed alone.
//!
//! Every committed golden (`out/fig5.json`, `out/fig12_small.json`) and
//! every bit-identity suite (engine equivalence, sharded equivalence,
//! hierarchical equivalence) assumes that `core`/`sim`/`cache`/`mesh`/
//! `workload` compute the same bytes on every run and every machine. Two
//! things silently break that:
//!
//! * **Randomized-iteration maps.** `std::collections::HashMap`/`HashSet`
//!   seed their hasher per process, so any iteration (even one feeding a
//!   later sort with ties) can reorder results between runs. Use
//!   `FxHashMap` (fixed hasher, insertion-stable across runs — already the
//!   LLC's choice) or `BTreeMap`/`BTreeSet` (ordered by construction).
//! * **Wall-clock and thread identity.** `Instant::now`, `SystemTime`, and
//!   `std::thread::current` leak the machine into the computation.
//!
//! Scope: non-test lines of the result crates. Waive with
//! `lint: allow(determinism) — <why the use cannot reach a result>`.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;

const LINT: &str = "determinism";

fn diag(file: &SourceFile, line: u32, message: String, out: &mut Vec<Diagnostic>) {
    out.push(Diagnostic {
        lint: LINT.to_string(),
        file: file.rel.clone(),
        line,
        message,
    });
}

/// `toks[i..]` starts with the given idents separated by `::`.
fn path_seq(toks: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if !toks.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
        if k + 1 < segs.len() {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            diag(
                file,
                t.line,
                format!(
                    "`{}` iterates in a per-process random order; use `Fx{}` or `BTree{}` in \
                     result-affecting crates",
                    t.text,
                    t.text,
                    t.text.replace("Hash", "")
                ),
                out,
            );
        } else if path_seq(toks, i, &["Instant", "now"]) {
            diag(
                file,
                t.line,
                "`Instant::now` reads the wall clock inside a result-affecting crate".to_string(),
                out,
            );
        } else if t.is_ident("SystemTime") {
            diag(
                file,
                t.line,
                "`SystemTime` reads the wall clock inside a result-affecting crate".to_string(),
                out,
            );
        } else if path_seq(toks, i, &["thread", "current"]) {
            diag(
                file,
                t.line,
                "`thread::current` leaks thread identity into a result-affecting crate".to_string(),
                out,
            );
        }
    }
}

//! `safety-comment` — every `unsafe` block justifies itself.
//!
//! Only `cdcs-cache`'s SIMD monitor scans may use `unsafe` (every other
//! crate carries `#![forbid(unsafe_code)]`, checked at the workspace
//! level by [`crate::lints::check_forbid_unsafe`]). Each `unsafe { … }`
//! block must be announced by a `// SAFETY:` comment on the same line or
//! within the three lines above it — close enough that the justification
//! and the code can't drift apart silently.
//!
//! `unsafe fn` / `unsafe impl` / `unsafe trait` declarations are not
//! flagged: the compiler already forces their *callers* into `unsafe`
//! blocks, which is where the justification lands.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

const LINT: &str = "safety-comment";

/// How far above the `unsafe` keyword a `SAFETY:` comment may sit. Three
/// lines covers one comment plus a wrapped continuation plus one
/// intervening statement (the fused SIMD loads share one comment).
const SAFETY_WINDOW: u32 = 3;

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("unsafe") || file.is_test_line(t.line) {
            continue;
        }
        // Declaration forms introduce no executable region; skip.
        if toks.get(i + 1).is_some_and(|n| {
            n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait") || n.is_ident("extern")
        }) {
            continue;
        }
        let covered = file.comments.iter().any(|c| {
            c.line <= t.line
                && c.line + SAFETY_WINDOW >= t.line
                && c.text
                    .trim_start()
                    .trim_start_matches('/')
                    .trim_start()
                    .starts_with("SAFETY:")
        });
        if !covered {
            out.push(Diagnostic {
                lint: LINT.to_string(),
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`unsafe` block without a `// SAFETY:` comment within {SAFETY_WINDOW} \
                     lines above"
                ),
            });
        }
    }
}

//! The lint passes and their scoping rules.
//!
//! Each pass is a function from one [`SourceFile`] to diagnostics; this
//! module owns which crates/lines each pass applies to, waiver filtering,
//! and the one workspace-level check (`#![forbid(unsafe_code)]` presence).

pub mod determinism;
pub mod golden_coupling;
pub mod lock_order;
pub mod panic_freedom;
pub mod safety;
pub mod zero_alloc;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Names of every lint, in the order they run. `waiver` (malformed
/// directives, unbalanced fences) is produced during parsing, not listed.
pub const LINT_NAMES: [&str; 6] = [
    "determinism",
    "panic-freedom",
    "zero-alloc",
    "lock-order",
    "golden-coupling",
    "safety-comment",
];

/// Crates whose non-test code feeds committed byte-exact goldens; the
/// determinism pass runs only here. `serve` and `bench` orchestrate (their
/// timing/maps never reach a `SimResult`), and `analyze` audits.
pub const RESULT_CRATES: [&str; 5] = ["core", "sim", "cache", "mesh", "workload"];

/// Runs every requested pass over one file, drops waived findings, and
/// appends the rest (plus any malformed-directive findings) to `out`.
pub fn check_file(file: &SourceFile, only: Option<&[String]>, out: &mut Vec<Diagnostic>) {
    let enabled = |name: &str| only.is_none_or(|names| names.iter().any(|n| n == name));
    let mut raw: Vec<Diagnostic> = Vec::new();
    if enabled("determinism") && RESULT_CRATES.contains(&file.crate_name.as_str()) {
        determinism::check(file, &mut raw);
    }
    if enabled("panic-freedom") && file.crate_name == "serve" {
        panic_freedom::check(file, &mut raw);
    }
    if enabled("zero-alloc") {
        zero_alloc::check(file, &mut raw);
    }
    if enabled("lock-order") && file.crate_name == "serve" {
        lock_order::check(file, &mut raw);
    }
    if enabled("golden-coupling") {
        golden_coupling::check(file, &mut raw);
    }
    if enabled("safety-comment") {
        safety::check(file, &mut raw);
    }
    raw.retain(|d| !file.waived(&d.lint, d.line));
    out.extend(raw);
    if enabled("waiver") || only.is_none() {
        out.extend(file.directive_diags.iter().cloned());
    }
}

/// Workspace-level pass: every crate root except `cdcs-cache` (SIMD
/// monitors) must carry `#![forbid(unsafe_code)]`, so the attribute can't
/// be silently dropped once added.
pub fn check_forbid_unsafe(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        let is_crate_root = file.rel.ends_with("src/lib.rs");
        if !is_crate_root || file.crate_name == "cache" {
            continue;
        }
        let toks = &file.toks;
        let mut found = false;
        for i in 0..toks.len().saturating_sub(3) {
            if toks[i].is_punct('#')
                && toks[i + 1].is_punct('!')
                && toks[i + 2].is_punct('[')
                && toks[i + 3].is_ident("forbid")
                && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Diagnostic {
                lint: "safety-comment".to_string(),
                file: file.rel.clone(),
                line: 1,
                message: format!(
                    "crate `{}` must declare `#![forbid(unsafe_code)]` (only cdcs-cache's \
                     SIMD monitors may use unsafe)",
                    file.crate_name
                ),
            });
        }
    }
}

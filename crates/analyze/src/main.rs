#![forbid(unsafe_code)]
//! CLI for `cdcs-analyze`. See the library docs for the lint catalog.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use cdcs_analyze::{analyze_workspace, diag, find_root, lints};

/// Writes to stdout. `Err(true)` is a closed pipe (`--json | head` —
/// finish quietly with whatever verdict we already hold), `Err(false)`
/// a real I/O error.
fn out(text: std::fmt::Arguments) -> Result<(), bool> {
    let mut stdout = std::io::stdout().lock();
    match writeln!(stdout, "{text}") {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(true),
        Err(e) => {
            eprintln!("cdcs-analyze: stdout: {e}");
            Err(false)
        }
    }
}

/// On a closed pipe, return `$code` — the exit status the run would have
/// produced anyway — so `--deny | head` can never hide a failure.
macro_rules! outln {
    (code = $code:expr, $($arg:tt)*) => {
        if let Err(pipe) = out(format_args!($($arg)*)) {
            return if pipe { $code } else { ExitCode::from(2) };
        }
    };
    ($($arg:tt)*) => { outln!(code = ExitCode::SUCCESS, $($arg)*) };
}

const USAGE: &str = "\
cdcs-analyze — workspace-invariant static analysis

USAGE:
    cargo run -p cdcs-analyze -- [OPTIONS]

OPTIONS:
    --deny           exit non-zero when any diagnostic is found (the CI gate)
    --json           emit diagnostics as a JSON array
    --root <path>    workspace root (default: walk up from the current dir)
    --lint <name>    run only this lint (repeatable); names:
                     determinism panic-freedom zero-alloc lock-order
                     golden-coupling safety-comment waiver
    --list-lints     print the lint names and exit
    -h, --help       this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--lint" => match args.next() {
                Some(l) => only.push(l),
                None => return usage_error("--lint needs a name"),
            },
            "--list-lints" => {
                for l in lints::LINT_NAMES {
                    outln!("{l}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                outln!("{}", USAGE.trim_end());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    for l in &only {
        if !lints::LINT_NAMES.contains(&l.as_str()) && l != "waiver" {
            return usage_error(&format!("unknown lint `{l}`"));
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("cdcs-analyze: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let filter = if only.is_empty() {
        None
    } else {
        Some(only.as_slice())
    };
    let diags = match analyze_workspace(&root, filter) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cdcs-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = if deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    };
    if json {
        outln!(code = verdict, "{}", diag::render_json(&diags));
    } else {
        for d in &diags {
            outln!(code = verdict, "{}", d.render());
        }
        if diags.is_empty() {
            outln!(
                code = verdict,
                "cdcs-analyze: workspace clean ({} lints)",
                lints::LINT_NAMES.len()
            );
        } else {
            outln!(
                code = verdict,
                "cdcs-analyze: {} diagnostic(s)",
                diags.len()
            );
        }
    }
    verdict
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("cdcs-analyze: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

//! Source model: one lexed file plus the workspace-level facts the lint
//! passes key on — which crate a file belongs to, which lines are test
//! code, which lines sit inside `zero-alloc` fences, and which diagnostics
//! the author has waived.
//!
//! ## Directive grammar (line comments only)
//!
//! * `lint: allow(<name>[, <name>…]) — <reason>` — waives the named lints
//!   on the directive's own line and on the next line carrying code (so a
//!   justification may continue over several comment lines). The reason
//!   is mandatory; `—`, `--`, `-` and `:` all work as the separator. A
//!   reasonless or unparsable directive is itself reported (lint
//!   `waiver`).
//! * `lint: zero-alloc` / `lint: end-zero-alloc` — open/close a fenced
//!   region checked by the `zero-alloc` pass. Unbalanced fences are
//!   reported (lint `waiver`).
//!
//! Doc comments (`///`, `//!`) and block comments never carry directives,
//! so prose *about* the grammar can quote it freely.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Comment, Lexed, Tok};

/// A waiver extracted from a `lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Lint names the directive waives.
    pub lints: Vec<String>,
    /// Directive line (covered, for trailing-comment waivers).
    pub line: u32,
    /// The next line carrying code after the directive (covered too, so a
    /// multi-line justification comment can sit between directive and
    /// code). Filled in after lexing.
    pub code_line: u32,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Repo-relative path, `/`-separated (used in diagnostics).
    pub rel: String,
    /// Crate short name: `core`, `sim`, `cache`, `mesh`, `workload`,
    /// `bench`, `serve`, `analyze`, or `cdcs` for the workspace-root crate.
    pub crate_name: String,
    /// Whole file is test code (under `tests/`, `benches/`, `examples/`).
    pub test_file: bool,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// `[start, end]` line ranges of `#[cfg(test)] mod … { … }` bodies.
    test_regions: Vec<(u32, u32)>,
    /// `[start, end]` line ranges of zero-alloc fences.
    pub fences: Vec<(u32, u32)>,
    pub waivers: Vec<Waiver>,
    /// Malformed-directive diagnostics found while parsing comments.
    pub directive_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `src` and extracts regions/waivers. `rel` is the path shown in
    /// diagnostics; `crate_name` scopes the passes.
    pub fn parse(rel: &str, crate_name: &str, src: &str) -> SourceFile {
        let Lexed { toks, comments } = lex(src);
        let test_file = ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| rel.contains(d))
            || rel.starts_with("tests/")
            || rel.starts_with("benches/")
            || rel.starts_with("examples/");
        let mut file = SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            test_file,
            test_regions: find_test_regions(&toks),
            fences: Vec::new(),
            waivers: Vec::new(),
            directive_diags: Vec::new(),
            toks,
            comments,
        };
        file.parse_directives();
        file
    }

    /// `true` if `line` is test code (file-level or inside `#[cfg(test)]`).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }

    /// `true` if `line` sits inside a `zero-alloc` fence.
    pub fn in_fence(&self, line: u32) -> bool {
        self.fences.iter().any(|&(s, e)| line >= s && line <= e)
    }

    /// `true` if a waiver for `lint` covers `line`.
    pub fn waived(&self, lint: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| (w.line == line || w.code_line == line) && w.lints.iter().any(|l| l == lint))
    }

    fn diag(&mut self, lint: &'static str, line: u32, message: String) {
        self.directive_diags.push(Diagnostic {
            lint: lint.to_string(),
            file: self.rel.clone(),
            line,
            message,
        });
    }

    fn parse_directives(&mut self) {
        let mut open_fence: Option<u32> = None;
        let comments = std::mem::take(&mut self.comments);
        for c in &comments {
            // Only plain `//` comments carry directives; `///` and `//!`
            // doc text starts with an extra `/` or `!`.
            if !c.line_comment || c.text.starts_with('/') || c.text.starts_with('!') {
                continue;
            }
            let Some(body) = c.text.trim_start().strip_prefix("lint:") else {
                continue;
            };
            let body = body.trim();
            if body == "zero-alloc" {
                if let Some(start) = open_fence {
                    self.diag(
                        "waiver",
                        c.line,
                        format!("zero-alloc fence opened again (previous open on line {start})"),
                    );
                } else {
                    open_fence = Some(c.line);
                }
            } else if body == "end-zero-alloc" {
                match open_fence.take() {
                    Some(start) => self.fences.push((start, c.line)),
                    None => self.diag(
                        "waiver",
                        c.line,
                        "end-zero-alloc without an open fence".to_string(),
                    ),
                }
            } else if let Some(rest) = body.strip_prefix("allow(") {
                match parse_allow(rest) {
                    Ok(lints) => {
                        let code_line = self
                            .toks
                            .iter()
                            .map(|t| t.line)
                            .find(|&l| l > c.line)
                            .unwrap_or(c.line);
                        self.waivers.push(Waiver {
                            lints,
                            line: c.line,
                            code_line,
                        });
                    }
                    Err(why) => self.diag("waiver", c.line, why),
                }
            } else {
                self.diag(
                    "waiver",
                    c.line,
                    format!("unknown lint directive `lint: {body}`"),
                );
            }
        }
        if let Some(start) = open_fence {
            self.diag(
                "waiver",
                start,
                "zero-alloc fence never closed (missing `lint: end-zero-alloc`)".to_string(),
            );
        }
        self.comments = comments;
    }
}

/// Parses `name[, name…]) — reason`. The reason is mandatory — a waiver
/// without a recorded justification is how exceptions rot.
fn parse_allow(rest: &str) -> Result<Vec<String>, String> {
    let Some(close) = rest.find(')') else {
        return Err("allow(...) missing closing parenthesis".to_string());
    };
    let lints: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if lints.is_empty() {
        return Err("allow() names no lints".to_string());
    }
    if let Some(bad) = lints
        .iter()
        .find(|l| !crate::lints::LINT_NAMES.contains(&l.as_str()))
    {
        // A misspelled name would otherwise waive nothing, silently —
        // the author believes the finding is covered and it is not.
        return Err(format!(
            "allow() names unknown lint `{bad}` (known: {})",
            crate::lints::LINT_NAMES.join(", ")
        ));
    }
    let mut reason = rest[close + 1..].trim_start();
    let mut found_sep = false;
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            found_sep = true;
            break;
        }
    }
    if !found_sep || reason.trim().is_empty() {
        return Err(format!(
            "waiver for `{}` has no reason (grammar: `lint: allow(<name>) — <why this is sound>`)",
            lints.join(", ")
        ));
    }
    Ok(lints)
}

/// Finds `#[cfg(test)] mod name { … }` body line ranges by token scanning:
/// an attribute whose tokens include both `cfg` and `test`, followed
/// (possibly through further attributes) by `mod <name> {`, brace-matched.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Bracket-match the attribute, noting whether it is cfg(...test...).
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            } else if toks[j].is_ident("cfg") {
                saw_cfg = true;
            } else if toks[j].is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j;
            continue;
        }
        // Skip any further attributes, then expect `mod <name> {`.
        let mut k = j;
        while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
            let mut d = 1i32;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        if k < toks.len() && toks[k].is_ident("mod") {
            // mod name { ... } — find the opening brace, then match it.
            let mut b = k + 1;
            while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                b += 1;
            }
            if b < toks.len() && toks[b].is_punct('{') {
                let start = toks[b].line;
                let mut d = 1i32;
                let mut e = b + 1;
                let mut end = toks.last().map_or(start, |t| t.line);
                while e < toks.len() {
                    if toks[e].is_punct('{') {
                        d += 1;
                    } else if toks[e].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            end = toks[e].line;
                            break;
                        }
                    }
                    e += 1;
                }
                regions.push((start, end));
                i = e + 1;
                continue;
            }
        }
        i = j;
    }
    regions
}

/// Brace-matches from the token at `open` (which must be `{`), returning
/// the index of the matching `}` (or `toks.len() - 1` when unbalanced).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    debug_assert!(toks[open].is_punct('{'));
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs", "core", src)
    }

    #[test]
    fn cfg_test_mod_lines_are_test_code() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn waiver_covers_own_and_next_line() {
        let f = file("// lint: allow(determinism) — stable order proven\nlet x = 1;\nlet y = 2;");
        assert!(f.waived("determinism", 1));
        assert!(f.waived("determinism", 2));
        assert!(!f.waived("determinism", 3));
        assert!(!f.waived("zero-alloc", 2));
        assert!(f.directive_diags.is_empty());
    }

    #[test]
    fn reasonless_waiver_is_reported() {
        let f = file("// lint: allow(determinism)\nlet x = 1;");
        assert_eq!(f.directive_diags.len(), 1);
        assert!(f.directive_diags[0].message.contains("no reason"));
    }

    #[test]
    fn fences_and_unbalanced_fences() {
        let f = file("// lint: zero-alloc\nfn a() {}\n// lint: end-zero-alloc\n");
        assert_eq!(f.fences, vec![(1, 3)]);
        let g = file("// lint: zero-alloc\nfn a() {}\n");
        assert_eq!(g.directive_diags.len(), 1);
        assert!(g.directive_diags[0].message.contains("never closed"));
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let f = file("/// lint: allow(determinism) — prose\nfn a() {}\n");
        assert!(f.waivers.is_empty());
        assert!(f.directive_diags.is_empty());
    }

    #[test]
    fn multi_lint_waiver() {
        let f = file("// lint: allow(determinism, zero-alloc) -- both fine here\nlet x = 1;");
        assert!(f.waived("determinism", 2));
        assert!(f.waived("zero-alloc", 2));
    }
}

//! Diagnostics and their text/JSON renderings.

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (`determinism`, `panic-freedom`, `zero-alloc`,
    /// `lock-order`, `golden-coupling`, `safety-comment`, `waiver`).
    pub lint: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// `file:line: [lint] message` — the clickable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (hand-rolled: the analyzer depends
/// on nothing, including the vendored serde).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\"lint\":");
        json_string(&mut out, &d.lint);
        out.push_str(",\"file\":");
        json_string(&mut out, &d.file);
        out.push_str(&format!(",\"line\":{}", d.line));
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sorts diagnostics for stable output: by file, then line, then lint.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let d = vec![Diagnostic {
            lint: "determinism".into(),
            file: "a\\b.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        }];
        let j = render_json(&d);
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"no\\\""));
    }
}

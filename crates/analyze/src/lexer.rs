//! A minimal, dependency-free Rust lexer producing a span-carrying token
//! stream with comments and string contents stripped.
//!
//! The lint passes match on *token sequences* (`Instant` `::` `now`,
//! `.` `lock` `(` `)` `.` `unwrap`), so the lexer's job is to make those
//! sequences reliable: comments never alias code, string literals never
//! contain false idents (`"HashMap"` lexes as an empty string literal), and
//! every token remembers the 1-based line it started on.
//!
//! The grammar handled here is the subset of Rust that affects tokenization
//! boundaries: line/nested-block comments, plain/raw/byte string literals,
//! char literals vs. lifetimes, raw identifiers, and numeric literals.
//! Everything else is an identifier or a single-character punct.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Single punctuation character (`.`, `:`, `(` …). Multi-character
    /// operators arrive as consecutive puncts (`::` is `:` `:`).
    Punct,
    /// Literal: strings and chars are stripped to `""`/`''`; numbers keep
    /// their text.
    Lit,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment, recorded separately from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//` / `/*` opener (closer stripped for block
    /// comments). Doc comments keep their extra marker (`/`, `!`, `*`) as
    /// the first character so directive parsing can exclude them.
    pub text: String,
    /// `true` for `//`-style comments (lint directives are line comments
    /// only).
    pub line_comment: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes Rust source. Total: unterminated constructs consume to EOF rather
/// than erroring (the analyzer must never panic on the code it audits).
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes chars[i..] while `f` holds, tracking newlines.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let text_start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: chars[text_start.min(i)..i].iter().collect(),
                    line_comment: true,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let text_start = i + 2;
                i += 2;
                let mut depth = 1;
                let mut text_end = chars.len();
                while i < chars.len() {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        if depth == 0 {
                            text_end = i;
                            bump!();
                            bump!();
                            break;
                        }
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: chars[text_start.min(text_end)..text_end].iter().collect(),
                    line_comment: false,
                });
                continue;
            }
        }
        // Raw strings / raw identifiers / byte strings: r"", r#""#, br"", b"".
        if (c == 'r' || c == 'b') && i + 1 < chars.len() {
            let (prefix_len, rest) = if c == 'b' && chars[i + 1] == 'r' {
                (2, i + 2)
            } else {
                (1, i + 1)
            };
            let after = chars.get(rest).copied();
            if (c == 'r' || prefix_len == 2) && matches!(after, Some('#') | Some('"')) {
                // Raw (byte) string: count #s, then scan to the matching
                // closer `"###`.
                let mut j = rest;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    i = j;
                    bump!(); // opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                bump!();
                                for _ in 0..hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: String::from("\"\""),
                        line: start_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through to ident lexing
                // below after skipping `r#`.
                if c == 'r' && hashes == 1 && chars.get(j).is_some_and(|&c| is_ident_start(c)) {
                    i = j;
                    let start = i;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                    });
                    continue;
                }
            }
            if c == 'b' && after == Some('"') && prefix_len == 1 {
                // b"..." — handled by the plain-string arm below after
                // skipping the prefix.
                i += 1;
                // fall through to the '"' case on the next loop turn
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::from("\"\""),
                line: start_line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            // `'\x'`-style or `'c'` char literal: a quote appears within a
            // few chars. Otherwise it's a lifetime.
            if i + 1 < chars.len() && chars[i + 1] == '\\' {
                bump!(); // '
                bump!(); // backslash
                while i < chars.len() && chars[i] != '\'' {
                    bump!();
                }
                if i < chars.len() {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::from("''"),
                    line: start_line,
                });
                continue;
            }
            if i + 2 < chars.len() && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                i += 3;
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::from("''"),
                    line: start_line,
                });
                continue;
            }
            // Lifetime: 'ident (no closing quote).
            let start = i;
            i += 1;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Numbers (good enough for span purposes; `1..2` must not swallow
        // the range dots, `1.5` must stay one token).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d == '.' {
                    // Two dots = range operator; stop before them.
                    if chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    // `1.method()` — stop before the dot if an ident
                    // follows.
                    if chars.get(i + 1).is_some_and(|&n| is_ident_start(n)) {
                        break;
                    }
                    i += 1;
                } else if is_ident_continue(d) {
                    i += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Everything else: single-char punct.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    out
}

impl Tok {
    /// `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` if this token is the punct `p`.
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == p as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_strings_and_comments() {
        let l = lex("let x = \"HashMap\"; // HashMap in a comment\nuse a::b;");
        assert!(!l.toks.iter().any(|t| t.text == "HashMap"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.toks.last().unwrap().line, 2);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let l = lex("r#\"Instant::now\"# /* outer /* inner */ still */ ident");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            1
        );
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let v = texts("&'a str; 'x'; '\\n';");
        assert!(v.contains(&"'a".to_string()));
        assert_eq!(v.iter().filter(|t| *t == "''").count(), 2);
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let v = texts("Instant::now()");
        assert_eq!(v, vec!["Instant", ":", ":", "now", "(", ")"]);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let v = texts("0..10 1.5 2.x");
        assert_eq!(v, vec!["0", ".", ".", "10", "1.5", "2", ".", "x"]);
    }

    #[test]
    fn raw_identifiers() {
        let v = texts("r#type r#\"s\"#");
        assert_eq!(v, vec!["type", "\"\""]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let l = lex("\"a\nb\nc\"\nident");
        assert_eq!(l.toks[1].line, 4);
    }
}

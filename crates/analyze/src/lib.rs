#![forbid(unsafe_code)]
//! `cdcs-analyze` — workspace-invariant static analysis for the CDCS repo.
//!
//! Every result this workspace ships is pinned by byte-exact goldens and
//! bit-identity suites; the invariants that make those pins hold are
//! otherwise only enforced *dynamically*, by tests that must happen to
//! execute the offending line. This crate enforces them at the source
//! level with a dependency-free, syn-free lexer (in the same spirit as the
//! vendored syn-free `serde_derive`) and six passes:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `determinism` | no `HashMap`/`HashSet`/`Instant::now`/`SystemTime`/`thread::current` in result-affecting crates |
//! | `panic-freedom` | no `.lock().unwrap()`-style poison panics in `cdcs-serve` |
//! | `zero-alloc` | no allocation inside `lint: zero-alloc` fences (the `plan_into` call graph) |
//! | `lock-order` | `cdcs-serve` mutexes acquired in one declared order |
//! | `golden-coupling` | every `SimConfig`/`ConfigPatch` field carries `#[serde(default)]` |
//! | `safety-comment` | every `unsafe` block carries `// SAFETY:`; every crate but `cdcs-cache` forbids unsafe |
//!
//! Findings are waivable inline — reason mandatory:
//!
//! ```text
//! // lint: allow(determinism) — deadline clock; never reaches a SimResult
//! ```
//!
//! Run as `cargo run -p cdcs-analyze -- --deny` (the CI gate) or with
//! `--json` for machine-readable output.

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use source::SourceFile;

/// Walks `root` and returns every analyzable source file, lexed and
/// classified, in a deterministic (sorted-path) order. Scanned: the root
/// crate's `src/` and each `crates/<name>/src/` tree. Not scanned: vendor
/// stand-ins (external code), `target/`, and test/bench/example trees
/// (the invariants govern shipped code; fixtures under
/// `crates/analyze/tests/` deliberately violate them).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut roots: Vec<(PathBuf, String)> = vec![(root.join("src"), "cdcs".to_string())];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for e in entries {
            if let Some(name) = e.file_name().and_then(|n| n.to_str()) {
                if e.join("src").is_dir() {
                    roots.push((e.join("src"), name.to_string()));
                }
            }
        }
    }
    for (dir, crate_name) in roots {
        let mut paths = Vec::new();
        collect_rs(&dir, &mut paths)?;
        paths.sort();
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&p)?;
            files.push(SourceFile::parse(&rel, &crate_name, &src));
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Runs the requested lints (all when `only` is `None`) over the whole
/// workspace at `root`. Returned diagnostics are unwaived findings, sorted
/// by file/line/lint.
pub fn analyze_workspace(root: &Path, only: Option<&[String]>) -> io::Result<Vec<Diagnostic>> {
    let files = load_workspace(root)?;
    let mut diags = Vec::new();
    for file in &files {
        lints::check_file(file, only, &mut diags);
    }
    let safety_on = only.is_none_or(|names| names.iter().any(|n| n == "safety-comment"));
    if safety_on {
        lints::check_forbid_unsafe(&files, &mut diags);
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Analyzes one file as if it lived in `crate_name` — the fixture-test
/// entry point.
pub fn analyze_source_as(
    rel: &str,
    crate_name: &str,
    src: &str,
    only: Option<&[String]>,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, crate_name, src);
    let mut diags = Vec::new();
    lints::check_file(&file, only, &mut diags);
    diag::sort(&mut diags);
    diags
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

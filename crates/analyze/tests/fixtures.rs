//! Fixture-corpus tests: each lint must catch its seeded violation and
//! stay silent on the compliant twin, pinned down to the exact rendered
//! diagnostics (`*.expected` sidecars). Plus the workspace gate: the repo
//! itself must be clean under `--deny`.

use std::fs;
use std::path::{Path, PathBuf};

use cdcs_analyze::{analyze_source_as, analyze_workspace, find_root};

/// (lint, crate the fixture impersonates). `waiver` exercises the
/// directive grammar itself (malformed allows, unbalanced fences).
const CASES: &[(&str, &str)] = &[
    ("determinism", "core"),
    ("panic-freedom", "serve"),
    ("zero-alloc", "core"),
    ("lock-order", "serve"),
    ("golden-coupling", "sim"),
    ("safety-comment", "cache"),
    ("waiver", "core"),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs exactly one lint over one fixture, rendering diagnostics the same
/// way the CLI does.
fn run_fixture(lint: &str, file_name: &str, crate_name: &str) -> Vec<String> {
    let path = fixtures_dir().join(file_name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let only = vec![lint.to_string()];
    analyze_source_as(file_name, crate_name, &src, Some(&only))
        .iter()
        .map(cdcs_analyze::diag::Diagnostic::render)
        .collect()
}

#[test]
fn accept_fixtures_are_clean() {
    for &(lint, crate_name) in CASES {
        let diags = run_fixture(lint, &format!("{lint}_accept.rs"), crate_name);
        assert!(
            diags.is_empty(),
            "{lint}_accept.rs should be clean, got:\n{}",
            diags.join("\n")
        );
    }
}

#[test]
fn reject_fixtures_produce_exactly_the_expected_diagnostics() {
    for &(lint, crate_name) in CASES {
        let actual = run_fixture(lint, &format!("{lint}_reject.rs"), crate_name);
        assert!(
            !actual.is_empty(),
            "{lint}_reject.rs: the seeded violations were not caught"
        );
        for line in &actual {
            assert!(
                line.contains(&format!("[{lint}]")),
                "{lint}_reject.rs produced a foreign diagnostic: {line}"
            );
        }
        let sidecar = fixtures_dir().join(format!("{lint}_reject.expected"));
        if std::env::var_os("CDCS_ANALYZE_BLESS").is_some() {
            // Regeneration mode: rewrite the sidecars from actual output
            // (then diff them in review, like any golden).
            fs::write(&sidecar, actual.join("\n") + "\n").expect("write sidecar");
        }
        let expected =
            fs::read_to_string(&sidecar).unwrap_or_else(|e| panic!("{}: {e}", sidecar.display()));
        let expected: Vec<&str> = expected.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(
            actual,
            expected,
            "{lint}_reject.rs diagnostics drifted from the sidecar; actual:\n{}",
            actual.join("\n")
        );
    }
}

#[test]
fn workspace_is_clean_under_deny() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let diags = analyze_workspace(&root, None).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "the workspace must stay clean under --deny; findings:\n{}",
        diags
            .iter()
            .map(cdcs_analyze::diag::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

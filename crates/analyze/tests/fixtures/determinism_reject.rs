//! Reject fixture (crate `core`): every determinism trigger, unwaived.
//! Fixtures are analyzer inputs, not compiled code.

use std::collections::HashMap;
use std::time::Instant;

pub struct EpochStats {
    pub last_seen: HashMap<u64, u64>,
}

pub fn measure(stats: &mut EpochStats) -> u64 {
    let t0 = Instant::now();
    let ids: std::collections::HashSet<u64> = Default::default();
    let stamp = std::time::SystemTime::now();
    let who = std::thread::current();
    drop((stamp, who, ids));
    stats.last_seen.len() as u64 + t0.elapsed().as_nanos() as u64
}

//! Accept fixture (crate `serve`): every acquisition recovers from poison.

use std::sync::{Mutex, PoisonError, RwLock};

pub struct Registry {
    jobs: Mutex<Vec<u64>>,
    index: RwLock<Vec<u64>>,
}

impl Registry {
    pub fn push(&self, id: u64) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(id);
    }

    pub fn first(&self) -> Option<u64> {
        self.index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .first()
            .copied()
    }

    pub fn len_for_metrics(&self) -> usize {
        // Plain Option/Result unwraps are not poison panics; only lock
        // results are in scope for this lint.
        Some(1usize).unwrap()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_locks() {
        let m = std::sync::Mutex::new(3u64);
        assert_eq!(*m.lock().unwrap(), 3);
    }
}

//! Reject fixture (crate `serve`): an inverted acquisition pair and an
//! undeclared mutex.

use std::sync::Mutex;

pub struct Daemon {
    jobs: Mutex<Vec<u64>>,
    phase: Mutex<u8>,
    assembly: Mutex<Vec<u8>>,
    cache_dir: Mutex<String>,
}

impl Daemon {
    pub fn finalize_backwards(&self) {
        let a = self.assembly.lock().unwrap_or_else(|e| e.into_inner());
        let p = self.phase.lock().unwrap_or_else(|e| e.into_inner());
        drop((a, p));
    }

    pub fn undeclared(&self) {
        let d = self.cache_dir.lock().unwrap_or_else(|e| e.into_inner());
        let j = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        drop((d, j));
    }
}

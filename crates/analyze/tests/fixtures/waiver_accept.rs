//! Accept fixture (crate `core`): well-formed directives — reasons on
//! every waiver, fences balanced, multiple lints in one allow.

pub fn stale() -> u64 {
    // lint: allow(determinism) — fixture demonstrating the grammar; the
    // waived line is compliant anyway.
    let t = 1u64;
    // lint: allow(determinism, zero-alloc): alternate separator form
    let u = 2u64;
    t + u
}

// lint: zero-alloc
pub fn hot(out: &mut Vec<u64>) {
    out.clear();
}
// lint: end-zero-alloc

//! Accept fixture (crate `core`): deterministic containers, one waived
//! wall-clock read, and test-only use of the forbidden types.

use rustc_hash::FxHashMap;
use std::collections::BTreeMap;

pub struct EpochStats {
    pub last_seen: FxHashMap<u64, u64>,
    pub by_bank: BTreeMap<u32, u64>,
}

pub fn deadline_check(deadline_nanos: u64) -> bool {
    // lint: allow(determinism) — deadline enforcement only stops issuing
    // work; no result bytes depend on this read.
    let now = std::time::Instant::now();
    now.elapsed().as_nanos() as u64 > deadline_nanos
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_use_std_maps() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}

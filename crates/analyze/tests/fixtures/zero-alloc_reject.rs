//! Reject fixture (crate `core`): a fenced hot path that allocates.

pub struct Scratch {
    pub order: Vec<usize>,
}

// lint: zero-alloc
pub fn plan_into(sizes: &[u64], scratch: &mut Scratch, out: &mut Vec<u64>) {
    let fresh: Vec<u64> = Vec::new();
    let seeded = vec![0u64; sizes.len()];
    let doubled: Vec<u64> = sizes.iter().map(|s| s * 2).collect();
    let copied = sizes.to_vec();
    let label = format!("{} vcs", sizes.len());
    let again = copied.clone();
    let boxed = Box::new(sizes.len());
    drop((fresh, seeded, doubled, label, again, boxed));
    out.extend_from_slice(sizes);
    scratch.order.clear();
}
// lint: end-zero-alloc

//! Accept fixture (crate `serve`): acquisitions follow the declared
//! order (jobs → phase → assembly), wrapper methods resolve to their
//! lock names, and a deliberate out-of-order touch is waived.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub struct Daemon {
    jobs: Mutex<Vec<u64>>,
    phase: Mutex<u8>,
    assembly: Mutex<Vec<u8>>,
}

impl Daemon {
    fn lock_phase(&self) -> MutexGuard<'_, u8> {
        self.phase.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn finalize(&self) {
        let j = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let p = self.lock_phase();
        let a = self.assembly.lock().unwrap_or_else(PoisonError::into_inner);
        drop((j, p, a));
    }

    pub fn drain_then_report(&self) {
        {
            let a = self.assembly.lock().unwrap_or_else(PoisonError::into_inner);
            drop(a);
        }
        // lint: allow(lock-order) — the assembly guard was dropped above;
        // the acquisitions never overlap.
        let p = self.lock_phase();
        drop(p);
    }
}

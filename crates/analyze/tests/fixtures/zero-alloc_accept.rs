//! Accept fixture (crate `core`): the fenced hot path reuses pooled
//! buffers; the one cold-path growth line carries a waiver. Allocation
//! outside the fence is not this lint's business.

pub struct Scratch {
    pub order: Vec<usize>,
}

// lint: zero-alloc
pub fn plan_into(sizes: &[u64], scratch: &mut Scratch, out: &mut Vec<u64>) {
    out.clear();
    out.extend_from_slice(sizes);
    scratch.order.clear();
    if scratch.order.capacity() < sizes.len() {
        // lint: allow(zero-alloc) — first-use pool growth; warm epochs
        // never enter this branch (pinned by alloc_free.rs).
        scratch.order = (0..sizes.len()).collect();
    }
    scratch.order.clear();
    scratch.order.extend(0..sizes.len());
}
// lint: end-zero-alloc

pub fn one_shot(sizes: &[u64]) -> Vec<u64> {
    sizes.to_vec()
}

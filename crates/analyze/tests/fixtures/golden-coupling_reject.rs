//! Reject fixture (crate `sim`): golden structs with bare fields. Adding
//! either field this way would break every committed JSON artifact
//! written before it existed.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Undefaulted: old goldens fail to deserialize.
    pub bank_lines: u64,
    #[serde(default)]
    pub seed: u64,
    /// Undefaulted, and the generic comma must not split the field.
    pub overrides: Option<(u64, u64)>,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigPatch {
    pub label: String,
    #[serde(default)]
    pub epoch_cycles: Option<u64>,
}

//! Reject fixture (crate `core`): malformed waiver directives and an
//! unbalanced fence.

pub fn stale() -> u64 {
    // lint: allow(determinism)
    let t = 1u64;
    // lint: allow(nonexistent-lint) — the lint name must be real
    let u = 2u64;
    t + u
}

// lint: zero-alloc
pub fn hot(out: &mut Vec<u64>) {
    out.clear();
}

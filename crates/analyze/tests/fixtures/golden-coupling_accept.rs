//! Accept fixture (crate `sim`): every golden-struct field is default- or
//! skip-marked, and non-golden structs are out of scope entirely.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    #[serde(default)]
    pub bank_lines: u64,
    #[serde(default)]
    pub seed: u64,
    #[serde(skip)]
    pub scratch_hint: usize,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigPatch {
    #[serde(default)]
    pub label: String,
    #[serde(default)]
    pub epoch_cycles: Option<u64>,
}

/// Not a golden struct: bare fields are fine here.
#[derive(Debug, Serialize, Deserialize)]
pub struct EphemeralReport {
    pub cells_done: u64,
    pub wall_nanos: u64,
}

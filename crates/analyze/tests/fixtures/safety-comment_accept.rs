//! Accept fixture (crate `cache`): every unsafe block is announced, and
//! declaration forms need no comment of their own.

pub fn sum_lanes(xs: &[u64; 4]) -> u64 {
    let p = xs.as_ptr();
    // SAFETY: `xs` is a fixed-size array of 4 lanes, so `p..p+3` are all
    // in bounds and aligned.
    unsafe { p.read() + p.add(1).read() + p.add(2).read() + p.add(3).read() }
}

/// # Safety
///
/// `xs` must be non-empty.
pub unsafe fn read_first_unchecked(xs: &[u64]) -> u64 {
    // SAFETY: the caller contract above guarantees at least one element.
    unsafe { *xs.as_ptr() }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_out_of_scope() {
        let xs = [7u64];
        assert_eq!(unsafe { *xs.as_ptr() }, 7);
    }
}

//! Reject fixture (crate `serve`): poison-panicking lock acquisitions.

use std::sync::{Mutex, RwLock};

pub struct Registry {
    jobs: Mutex<Vec<u64>>,
    index: RwLock<Vec<u64>>,
}

impl Registry {
    pub fn push(&self, id: u64) {
        self.jobs.lock().unwrap().push(id);
    }

    pub fn first(&self) -> Option<u64> {
        self.index.read().expect("index poisoned").first().copied()
    }

    pub fn clear(&self) {
        self.index.write().unwrap().clear();
    }
}

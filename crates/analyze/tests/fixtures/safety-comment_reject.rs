//! Reject fixture (crate `cache`): unsafe blocks without (or with
//! too-distant) `SAFETY:` justifications.

pub fn sum_lanes(xs: &[u64; 4]) -> u64 {
    let p = xs.as_ptr();
    unsafe { p.read() + p.add(1).read() + p.add(2).read() + p.add(3).read() }
}

// SAFETY: this comment is five lines above the block — outside the
// three-line window, so the justification and the code have already
// drifted apart. The pass must flag the block below.
//
//
pub fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}

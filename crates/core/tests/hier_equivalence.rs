//! Equivalence guard for the hierarchical planner (ISSUE 7 satellite 2):
//! with the partition collapsed to **one whole-mesh region** and warm
//! starts disabled (`change_threshold = 0`), [`HierarchicalPlanner`] must
//! produce **bit-identical** output to the flat [`CdcsPlanner`] it wraps —
//! across every per-step feature combination the Fig. 12 factor analysis
//! exercises, on two different synthetic mixes, cold and with a previous
//! placement supplied.
//!
//! This is what makes the hierarchy a strict superset of the flat planner:
//! enabling it with degenerate settings changes nothing, so the committed
//! fig5/fig12 goldens stay byte-exact with hierarchy off by construction.

use cdcs_cache::MissCurve;
use cdcs_core::policy::{clustered_cores, CdcsPlanner, HierarchicalPlanner};
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::Mesh;

/// Mix A: thread-private VCs with staggered cliffy curves (capacity
/// contention, distinct winners).
fn private_mix(side: u16) -> PlacementProblem {
    let n = (side as usize * side as usize) / 4;
    let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
    let vcs = (0..n as u32)
        .map(|i| {
            VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::new(vec![
                    (0.0, 1500.0 + 13.0 * i as f64),
                    (1024.0 + 128.0 * i as f64, 40.0 + i as f64),
                ]),
            )
        })
        .collect();
    let threads = (0..n as u32)
        .map(|i| ThreadInfo::new(i, vec![(i, 800.0 + 7.0 * i as f64)]))
        .collect();
    PlacementProblem::new(params, vcs, threads).unwrap()
}

/// Mix B: per-thread private VCs plus process-shared VCs accessed by
/// several threads each (the multi-accessor paths: centers, accessor-
/// weighted costs).
fn shared_mix(side: u16) -> PlacementProblem {
    let n = (side as usize * side as usize) / 4;
    let processes = 4u32;
    let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
    let mut vcs: Vec<VcInfo> = (0..n as u32)
        .map(|i| {
            VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::new(vec![
                    (0.0, 900.0 + 11.0 * i as f64),
                    (768.0 + 96.0 * i as f64, 25.0),
                ]),
            )
        })
        .collect();
    for p in 0..processes {
        vcs.push(VcInfo::new(
            n as u32 + p,
            VcKind::process_shared(p),
            MissCurve::new(vec![(0.0, 4000.0 + 100.0 * p as f64), (6144.0, 200.0)]),
        ));
    }
    let threads = (0..n as u32)
        .map(|i| {
            ThreadInfo::new(
                i,
                vec![
                    (i, 600.0 + 5.0 * i as f64),
                    (n as u32 + (i % processes), 300.0 + 3.0 * i as f64),
                ],
            )
        })
        .collect();
    PlacementProblem::new(params, vcs, threads).unwrap()
}

#[test]
fn one_region_zero_threshold_is_bit_identical_to_flat() {
    let side = 8u16;
    let schemes = [
        ("CDCS", CdcsPlanner::default()),
        ("CDCS+L", CdcsPlanner::with_features(true, false, false)),
        ("CDCS+T", CdcsPlanner::with_features(false, true, false)),
        ("CDCS+D", CdcsPlanner::with_features(false, false, true)),
    ];
    let mixes = [("private", private_mix(side)), ("shared", shared_mix(side))];
    for (mix_name, problem) in &mixes {
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        for (scheme_name, inner) in &schemes {
            // Region side >= the mesh side collapses to one region.
            let hier = HierarchicalPlanner {
                inner: *inner,
                region_side: side,
                change_threshold: 0.0,
            };

            let mut flat_scratch = PlanScratch::new();
            let mut hier_scratch = PlanScratch::new();
            let flat = inner.plan_with(problem, &cores, &mut flat_scratch);
            let cold = hier.plan_with(problem, None, &cores, &mut hier_scratch);
            assert_eq!(
                flat, cold,
                "{scheme_name}/{mix_name}: cold hierarchical (1 region, \
                 threshold 0) must be bit-identical to flat"
            );

            // Supplying the previous epoch's placement must change nothing:
            // threshold 0 disables warm starts, so the epoch replans flat.
            let mut warm = Placement::default();
            hier.plan_into(
                problem,
                Some(&cold),
                &cold.thread_cores,
                &mut hier_scratch,
                &mut warm,
            );
            let flat2 = inner.plan_with(problem, &cold.thread_cores, &mut flat_scratch);
            assert_eq!(
                flat2, warm,
                "{scheme_name}/{mix_name}: hierarchical with prev (threshold \
                 0) must still be bit-identical to flat"
            );
        }
    }
}

//! Equivalence tests for the hot-path overhaul: the CSR accessor index,
//! precomputed round-trip table and flattened cost matrix must be *exact*
//! drop-ins — identical floats, identical placements — for the definitional
//! implementations they replaced. The naive references below are the
//! pre-overhaul scan-everything versions, kept verbatim under test.

use cdcs_cache::MissCurve;
use cdcs_core::place::{greedy_place, optimistic_place, place_threads, trade_refine, vc_bank_cost};
use cdcs_core::policy::{clustered_cores, CdcsPlanner, Planner};
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadId, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::{Mesh, TileId, Topology};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Naive references (the definitional implementations, full-thread scans and
// per-call allocation, as before the accessor index existed).
// ---------------------------------------------------------------------------

/// `Σ_t a_{t,d}` by scanning every thread's access list.
fn naive_vc_accesses(problem: &PlacementProblem, vc: u32) -> f64 {
    problem
        .threads
        .iter()
        .flat_map(|t| t.vc_accesses.iter())
        .filter(|&&(d, _)| d == vc)
        .map(|&(_, a)| a)
        .sum()
}

/// The threads accessing `vc` with summed rates, by scanning every thread.
fn naive_vc_accessors(problem: &PlacementProblem, vc: u32) -> Vec<(ThreadId, f64)> {
    problem
        .threads
        .iter()
        .filter_map(|t| {
            let rate: f64 = t
                .vc_accesses
                .iter()
                .filter(|&&(d, _)| d == vc)
                .map(|&(_, a)| a)
                .sum();
            (rate > 0.0).then_some((t.id, rate))
        })
        .collect()
}

/// Round-trip latency computed from first principles (no table).
fn naive_net_round_trip(params: &SystemParams, core: TileId, bank: TileId) -> f64 {
    f64::from(
        params
            .noc()
            .round_trip_latency(params.mesh().hops(core, bank)),
    )
}

/// `D(VC, b)` over the naive accessor scan and naive round trips.
fn naive_vc_bank_cost(
    problem: &PlacementProblem,
    thread_cores: &[TileId],
    vc: u32,
    bank: usize,
) -> f64 {
    naive_vc_accessors(problem, vc)
        .into_iter()
        .map(|(t, rate)| {
            rate * naive_net_round_trip(
                &problem.params,
                thread_cores[t as usize],
                TileId(bank as u16),
            )
        })
        .sum()
}

/// The pre-overhaul greedy placement: cost evaluated inside the sort
/// comparator, per-VC `Vec` bank orders.
fn naive_greedy_place(
    problem: &PlacementProblem,
    sizes: &[u64],
    thread_cores: &[TileId],
    chunk: u64,
) -> Placement {
    let banks = problem.params.num_banks();
    let bank_order: Vec<Vec<usize>> = (0..problem.vcs.len())
        .map(|d| {
            let mut order: Vec<usize> = (0..banks).collect();
            order.sort_by(|&a, &b| {
                let ca = naive_vc_bank_cost(problem, thread_cores, d as u32, a);
                let cb = naive_vc_bank_cost(problem, thread_cores, d as u32, b);
                ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
            });
            order
        })
        .collect();

    let mut need: Vec<u64> = sizes.to_vec();
    let mut cursor = vec![0usize; problem.vcs.len()];
    let mut free = vec![problem.params.bank_lines; banks];
    let mut placement = Placement::empty(problem.threads.len(), problem.vcs.len(), banks);
    placement.thread_cores = thread_cores.to_vec();
    loop {
        let mut progressed = false;
        for d in 0..problem.vcs.len() {
            if need[d] == 0 {
                continue;
            }
            while cursor[d] < banks && free[bank_order[d][cursor[d]]] == 0 {
                cursor[d] += 1;
            }
            let b = bank_order[d][cursor[d]];
            let take = chunk.min(need[d]).min(free[b]);
            placement[(d, b)] += take;
            free[b] -= take;
            need[d] -= take;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    placement
}

// ---------------------------------------------------------------------------
// Random problem generation.
// ---------------------------------------------------------------------------

/// Builds a valid problem with shared VCs and duplicate / zero-rate
/// accessor entries (the cases the CSR build must merge and filter).
fn build_problem(side: u16, apps: Vec<(u32, u32, u32)>) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 2048);
    let n = apps.len().min(side as usize * side as usize);
    let mut vcs: Vec<VcInfo> = apps[..n]
        .iter()
        .enumerate()
        .map(|(i, &(acc, fp, plateau))| {
            let acc = f64::from(acc % 50_000 + 100);
            let fp = f64::from(fp % 20_000 + 256);
            let tail = acc * f64::from(plateau % 100) / 400.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, acc), (fp, tail)]),
            )
        })
        .collect();
    let shared_vc = vcs.len() as u32;
    vcs.push(VcInfo::new(
        shared_vc,
        VcKind::process_shared(0),
        MissCurve::new(vec![(0.0, 5_000.0), (4096.0, 500.0)]),
    ));
    let threads = (0..n)
        .map(|i| {
            let mut acc = vec![(i as u32, vcs[i].curve.at_zero())];
            match i % 3 {
                // A shared-VC entry.
                0 => acc.push((shared_vc, 500.0 + i as f64)),
                // A duplicate private entry (must merge) and a zero-rate
                // shared entry (must be filtered).
                1 => {
                    acc.push((i as u32, 17.0));
                    acc.push((shared_vc, 0.0));
                }
                _ => {}
            }
            ThreadInfo::new(i as u32, acc)
        })
        .collect();
    PlacementProblem::new(params, vcs, threads).expect("valid problem")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_index_matches_naive_scans(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 1..12),
    ) {
        let problem = build_problem(4, apps);
        for d in 0..problem.vcs.len() as u32 {
            prop_assert_eq!(problem.vc_accesses(d), naive_vc_accesses(&problem, d), "vc {}", d);
            prop_assert_eq!(
                problem.vc_accessors(d),
                naive_vc_accessors(&problem, d).as_slice(),
                "vc {}", d
            );
        }
    }

    #[test]
    fn round_trip_table_matches_direct_computation(side in 1u16..7) {
        let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
        for a in params.mesh().tiles() {
            for b in params.mesh().tiles() {
                prop_assert_eq!(
                    params.net_round_trip(a, b),
                    naive_net_round_trip(&params, a, b)
                );
            }
        }
    }

    #[test]
    fn cost_matrix_and_scalar_costs_match_naive(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 1..10),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let mut scratch = PlanScratch::new();
        scratch.compute_cost_matrix(&problem, &cores);
        for d in 0..problem.vcs.len() {
            let row = scratch.cost_row(d);
            for (b, &cell) in row.iter().enumerate() {
                let naive = naive_vc_bank_cost(&problem, &cores, d as u32, b);
                prop_assert_eq!(vc_bank_cost(&problem, &cores, d as u32, b), naive);
                prop_assert_eq!(cell, naive, "matrix vc {} bank {}", d, b);
            }
        }
    }

    #[test]
    fn indexed_greedy_matches_naive_greedy(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 1..12),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let sizes = cdcs_core::alloc::miss_driven_sizes(&problem, 512);
        let fast = greedy_place(&problem, &sizes, &cores, 512);
        let slow = naive_greedy_place(&problem, &sizes, &cores, 512);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn full_planner_is_deterministic_and_scratch_invariant(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 2..12),
    ) {
        // The same problem planned (a) twice with fresh scratches and
        // (b) with a scratch warmed on a DIFFERENT problem must produce
        // identical placements: reused buffers carry no state across plans.
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let planner = CdcsPlanner::default();
        let fresh = Planner::plan(&planner, &problem, &cores);

        let other = build_problem(3, vec![(1, 2, 3), (7, 1, 9)]);
        let mut warmed = PlanScratch::new();
        let _ = planner.plan_with(&other, &clustered_cores(2, other.params.mesh()), &mut warmed);
        let reused = planner.plan_with(&problem, &cores, &mut warmed);
        prop_assert_eq!(&fresh, &reused);
        // And once more on the same warmed scratch.
        let again = planner.plan_with(&problem, &cores, &mut warmed);
        prop_assert_eq!(&fresh, &again);
    }

    #[test]
    fn step_wrappers_match_scratch_variants(
        apps in prop::collection::vec((0u32.., 0u32.., 0u32..), 2..10),
    ) {
        let problem = build_problem(4, apps);
        let cores = clustered_cores(problem.threads.len(), problem.params.mesh());
        let sizes = cdcs_core::alloc::latency_aware_sizes(&problem, 512);
        let mut scratch = PlanScratch::new();

        let opt_a = optimistic_place(&problem, &sizes, Some(&cores));
        let opt_b = cdcs_core::place::optimistic_place_with(
            &problem, &sizes, Some(&cores), &mut scratch,
        );
        prop_assert_eq!(&opt_a.centers, &opt_b.centers);
        prop_assert_eq!(&opt_a.claimed, &opt_b.claimed);

        let th_a = place_threads(&problem, &sizes, &opt_a, Some(&cores), 1.0);
        let th_b = cdcs_core::place::place_threads_with(
            &problem, &sizes, &opt_b, Some(&cores), 1.0, &mut scratch,
        );
        prop_assert_eq!(&th_a, &th_b);

        let mut pl_a = greedy_place(&problem, &sizes, &th_a, 512);
        let mut pl_b = cdcs_core::place::greedy_place_with(
            &problem, &sizes, &th_b, 512, &mut scratch,
        );
        prop_assert_eq!(&pl_a, &pl_b);

        let tr_a = trade_refine(&problem, &mut pl_a);
        let tr_b = cdcs_core::place::trade_refine_with(&problem, &mut pl_b, &mut scratch);
        prop_assert_eq!(tr_a, tr_b);
        prop_assert_eq!(&pl_a, &pl_b);
        pl_a.check_feasible(&problem).unwrap();
    }
}

//! Property-based tests for the CDCS algorithms: allocation optimality
//! bounds, placement feasibility, descriptor proportionality.

use cdcs_cache::MissCurve;
use cdcs_core::alloc::{lookahead_reference, peekahead, AllocOptions};
use cdcs_core::{Placement, VcDescriptor};
use proptest::prelude::*;

fn curve_strategy() -> impl Strategy<Value = MissCurve> {
    prop::collection::vec((0.0f64..20_000.0, 0.0f64..50_000.0), 1..6).prop_map(MissCurve::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peekahead_respects_budget_and_granularity(
        curves in prop::collection::vec(curve_strategy(), 1..8),
        total in 0u64..100_000,
        g in prop::sample::select(vec![256u64, 512, 1024]),
    ) {
        let alloc = peekahead(
            &curves,
            AllocOptions { total_lines: total, granularity: g, use_all_capacity: false, tie_tolerance: 0.1 },
        );
        prop_assert_eq!(alloc.len(), curves.len());
        prop_assert!(alloc.iter().sum::<u64>() <= total);
        for a in &alloc {
            prop_assert_eq!(a % g, 0);
        }
    }

    #[test]
    fn peekahead_extracts_at_least_lookahead_utility(
        curves in prop::collection::vec(curve_strategy(), 1..5),
        total in 1024u64..40_000,
    ) {
        // On convex hulls both are optimal; peekahead must never extract
        // less utility than the O(n^2) reference (up to rounding slack of
        // one granule per VC).
        let opts = AllocOptions {
            total_lines: total,
            granularity: 1024,
            use_all_capacity: false,
            tie_tolerance: 0.0,
        };
        let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull()).collect();
        let fast = peekahead(&hulls, opts);
        let slow = lookahead_reference(&hulls, opts);
        let utility = |alloc: &[u64]| -> f64 {
            hulls.iter().zip(alloc).map(|(c, &s)| c.at_zero() - c.misses_at(s as f64)).sum()
        };
        let slack: f64 = hulls
            .iter()
            .map(|c| c.hits_gained(0.0, 1024.0))
            .fold(0.0, f64::max) * curves.len() as f64;
        prop_assert!(
            utility(&fast) + slack + 1e-6 >= utility(&slow),
            "peekahead {} vs lookahead {}",
            utility(&fast),
            utility(&slow)
        );
    }

    #[test]
    fn use_all_capacity_fills_everything_when_demand_exists(
        curves in prop::collection::vec(curve_strategy(), 1..6),
        total in 1024u64..50_000,
    ) {
        prop_assume!(curves.iter().any(|c| c.at_zero() > 0.0));
        let alloc = peekahead(
            &curves,
            AllocOptions { total_lines: total, granularity: 1024, use_all_capacity: true, tie_tolerance: 0.1 },
        );
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }

    #[test]
    fn descriptor_buckets_are_proportional(
        sizes in prop::collection::vec(1u64..100_000, 1..16),
    ) {
        let alloc: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let desc = VcDescriptor::from_allocation(&alloc).unwrap();
        let hist = desc.bucket_histogram();
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(hist.values().sum::<usize>(), 64);
        for (b, &lines) in sizes.iter().enumerate() {
            let ideal = lines as f64 * 64.0 / total as f64;
            let got = hist
                .get(&cdcs_cache::BankId(b as u16))
                .copied()
                .unwrap_or(0) as f64;
            // Largest-remainder + min-1 rounding stays within 2 buckets of
            // the ideal share.
            prop_assert!((got - ideal).abs() <= 2.0, "bank {b}: {got} vs {ideal}");
        }
    }

    #[test]
    fn stable_rebuild_changes_few_buckets(
        sizes in prop::collection::vec(4096u64..20_000, 2..8),
        jitter in prop::collection::vec(-1024i64..1024, 2..8),
    ) {
        let n = sizes.len().min(jitter.len());
        let alloc: Vec<(usize, u64)> = sizes[..n].iter().copied().enumerate().collect();
        let prev = VcDescriptor::from_allocation(&alloc).unwrap();
        let jittered: Vec<(usize, u64)> = alloc
            .iter()
            .zip(&jitter[..n])
            .map(|(&(b, l), &j)| (b, (l as i64 + j).max(1024) as u64))
            .collect();
        let next = VcDescriptor::from_allocation_stable(&jittered, Some(&prev)).unwrap();
        let changed = prev
            .buckets()
            .iter()
            .zip(next.buckets().iter())
            .filter(|(a, b)| a != b)
            .count();
        // Jitter of <= 1024 lines on >= 4096-line banks shifts at most a few
        // buckets of 64.
        prop_assert!(changed <= 3 * n, "{changed} buckets changed");
    }

    #[test]
    fn placement_accounting_is_consistent(
        alloc in prop::collection::vec(prop::collection::vec(0u64..2048, 4), 1..6),
    ) {
        let num_vcs = alloc.len();
        let placement = Placement::from_rows(vec![], alloc.clone());
        let by_vc: u64 = (0..num_vcs).map(|d| placement.vc_total(d as u32)).sum();
        let by_bank: u64 = (0..4).map(|b| placement.bank_used(b)).sum();
        prop_assert_eq!(by_vc, by_bank);
        for d in 0..num_vcs {
            let listed: u64 = placement.vc_banks(d as u32).iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(listed, placement.vc_total(d as u32));
        }
    }
}

//! Pins the mega-mesh scratch-memory property (ISSUE 7 satellite 4): a
//! hierarchical plan at 1024 tiles must never materialize the flat
//! planner's quadratic buffers — the `vcs × banks` cost matrix / bank-order
//! table and the `tiles²` spiral ring cache. Those are what make flat
//! planning unaffordable at mega-mesh scale; the hierarchical path works
//! region-by-region and must keep them empty, cold and warm.

use cdcs_cache::MissCurve;
use cdcs_core::policy::{clustered_cores, CdcsPlanner, HierarchicalPlanner};
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::Mesh;

/// `tiles/4` thread-private VCs; VCs with id below `changed_prefix` get
/// their demand doubled (to fabricate a changed epoch for the warm path).
fn mega_problem(side: u16, changed_prefix: usize) -> PlacementProblem {
    let n = (side as usize * side as usize) / 4;
    let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
    let vcs = (0..n as u32)
        .map(|i| {
            let scale = if (i as usize) < changed_prefix {
                2.0
            } else {
                1.0
            };
            VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::new(vec![
                    (0.0, scale * (1200.0 + 3.0 * i as f64)),
                    (scale * (1024.0 + 16.0 * (i % 64) as f64), scale * 30.0),
                ]),
            )
        })
        .collect();
    let threads = (0..n as u32)
        .map(|i| {
            ThreadInfo::new(
                i,
                vec![(i, scale_for(i, changed_prefix) * (700.0 + i as f64))],
            )
        })
        .collect();
    PlacementProblem::new(params, vcs, threads).unwrap()
}

fn scale_for(i: u32, changed_prefix: usize) -> f64 {
    if (i as usize) < changed_prefix {
        2.0
    } else {
        1.0
    }
}

#[test]
fn hierarchical_planning_at_1024_tiles_keeps_scratch_linear() {
    let side = 32u16; // 1024 tiles
    let p = mega_problem(side, 0);
    let cores = clustered_cores(p.threads.len(), p.params.mesh());
    let planner = HierarchicalPlanner::new(4, 0.05); // 64 regions
    let mut scratch = PlanScratch::new();

    // Cold hierarchical plan: no quadratic buffer may be touched.
    let cold = planner.plan_with(&p, None, &cores, &mut scratch);
    cold.check_feasible(&p).expect("cold plan feasible");
    assert_eq!(
        scratch.quadratic_matrix_bytes(),
        0,
        "cold hierarchical plan materialized the vcs×banks cost matrix"
    );
    assert_eq!(
        scratch.spiral_cache_bytes(),
        0,
        "cold hierarchical plan materialized the tiles² spiral cache"
    );

    // Warm incremental replan (a few VCs change): still nothing quadratic.
    let p2 = mega_problem(side, 8);
    let mut warm = Placement::default();
    planner.plan_into(
        &p2,
        Some(&cold),
        &cold.thread_cores,
        &mut scratch,
        &mut warm,
    );
    warm.check_feasible(&p2).expect("warm plan feasible");
    assert_eq!(scratch.quadratic_matrix_bytes(), 0, "warm replan (matrix)");
    assert_eq!(scratch.spiral_cache_bytes(), 0, "warm replan (spiral)");

    // Sanity: the accessors are not vacuous — a flat plan on a small mesh
    // does materialize both buffers.
    let small = mega_problem(8, 0);
    let small_cores = clustered_cores(small.threads.len(), small.params.mesh());
    let mut flat_scratch = PlanScratch::new();
    CdcsPlanner::default().plan_with(&small, &small_cores, &mut flat_scratch);
    assert!(
        flat_scratch.quadratic_matrix_bytes() > 0,
        "flat planning should use the cost matrix (accessor is vacuous?)"
    );
    assert!(
        flat_scratch.spiral_cache_bytes() > 0,
        "flat planning should build the spiral cache (accessor is vacuous?)"
    );
}

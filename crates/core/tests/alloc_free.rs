//! Proves the planner's cost evaluation *and plan emission* are
//! allocation-free in steady state: with a warmed [`PlanScratch`] and a
//! pooled flat `Placement` buffer, recomputing the `(vc × bank)` cost
//! matrix, evaluating `vc_bank_cost`, running the whole trade search, and
//! refilling the placement through `greedy_place_into` perform **zero**
//! heap allocations. This pins the hot-path property so a future
//! regression (an innocent-looking `collect()` in the inner loop, or a
//! planner that returns a fresh `Vec<Vec<u64>>` per epoch) fails loudly.
//!
//! Single-test file on purpose: the counting `#[global_allocator]` is
//! process-wide, and a lone test keeps the measured window unshared.

use cdcs_cache::MissCurve;
use cdcs_core::place::{greedy_place_into, trade_refine_with, vc_bank_cost};
use cdcs_core::policy::{CdcsPlanner, HierarchicalPlanner};
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::{Mesh, TileId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn problem() -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::new(8, 8), 8192);
    let n = 64usize;
    let vcs = (0..n)
        .map(|i| {
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 20_000.0), (8192.0, 500.0)]),
            )
        })
        .collect();
    let threads = (0..n)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 20_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, threads).expect("problem")
}

#[test]
fn warm_cost_paths_do_not_allocate() {
    let p = problem();
    let cores: Vec<TileId> = (0..p.threads.len() as u16).map(TileId).collect();
    let sizes: Vec<u64> = vec![4096; p.vcs.len()];
    let mut scratch = PlanScratch::new();

    // Warm every buffer: one full greedy + trade pass sizes the scratch.
    let mut placement = cdcs_core::place::greedy_place_with(&p, &sizes, &cores, 1024, &mut scratch);
    trade_refine_with(&p, &mut placement, &mut scratch);

    // Steady state: matrix recomputation, scalar cost evaluation, the
    // entire trade search, and the *plan output itself* (the greedy pass
    // refilling a pooled flat `Placement` buffer) must perform zero
    // allocations.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);

    scratch.compute_cost_matrix(&p, &cores);
    let mut checksum = 0.0f64;
    for d in 0..p.vcs.len() as u32 {
        for b in 0..p.params.num_banks() {
            checksum += vc_bank_cost(&p, &cores, d, b);
        }
    }
    trade_refine_with(&p, &mut placement, &mut scratch);
    // Pooled plan output: `greedy_place_into` resets and refills the warm
    // flat buffer (no per-epoch `Vec<Vec<u64>>`, no clone into the
    // simulator's `last_placement`), and `Placement::reset` reshaping a
    // warm buffer to a same-or-smaller shape reuses its capacity.
    greedy_place_into(&p, &sizes, &cores, 1024, &mut scratch, &mut placement);
    trade_refine_with(&p, &mut placement, &mut scratch);
    let mut spare = std::mem::take(&mut placement);
    spare.reset(2, 4, 8);
    spare.reset(p.threads.len(), p.vcs.len(), p.params.num_banks());
    greedy_place_into(&p, &sizes, &cores, 1024, &mut scratch, &mut spare);
    placement = spare;

    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    placement.check_feasible(&p).expect("still feasible");
    assert_eq!(
        allocations, 0,
        "cost-matrix construction / vc_bank_cost / trade search / pooled \
         plan output allocated {allocations} times"
    );

    // The whole reconfiguration: with the allocation step's curves, hulls
    // and Peekahead state threaded through the scratch
    // (`latency_aware_sizes_into` et al.), a full `CdcsPlanner::plan_into`
    // epoch — all four steps, latency-aware — performs zero steady-state
    // allocations too.
    let planner = CdcsPlanner::default();
    let cores: Vec<TileId> = (0..p.threads.len() as u16).map(TileId).collect();
    let mut plan = Placement::default();
    // Warm the allocation-path buffers (sizes, optimistic sketch, cores,
    // total-latency curves, distance cache).
    planner.plan_into(&p, &cores, &mut scratch, &mut plan);
    let mut jigsaw_plan = Placement::default();
    let jigsaw = cdcs_core::policy::JigsawPlanner::default();
    jigsaw.plan_into(&p, &cores, &mut scratch, &mut jigsaw_plan);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    planner.plan_into(&p, &cores, &mut scratch, &mut plan);
    jigsaw.plan_into(&p, &cores, &mut scratch, &mut jigsaw_plan);
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    plan.check_feasible(&p).expect("plan feasible");
    jigsaw_plan
        .check_feasible(&p)
        .expect("jigsaw plan feasible");
    assert_eq!(
        allocations, 0,
        "a warm whole-reconfiguration plan_into allocated {allocations} times"
    );

    // Mega-mesh pin (ISSUE 7): hierarchical *incremental* epochs at 256
    // tiles — signature diffing, verbatim row copies for unchanged VCs,
    // residual Peekahead for the changed ones, region re-assignment and
    // per-region re-placement — stay zero-alloc once the scratch is warm.
    let side = 16u16; // 256 tiles
    let pa = mega_problem(side, 0);
    let pb = mega_problem(side, 6); // 6 of 64 VCs change demand
    let cores: Vec<TileId> = (0..pa.threads.len() as u16).map(TileId).collect();
    let hier = HierarchicalPlanner::new(4, 0.05);
    let mut hier_scratch = PlanScratch::new();

    // Warm-up: one cold epoch, then one warm epoch in each direction so
    // every buffer (signatures, changed flags, residual-alloc hulls,
    // region shares) reaches steady-state size.
    let mut prev = hier.plan_with(&pa, None, &cores, &mut hier_scratch);
    let mut cur = Placement::default();
    hier.plan_into(
        &pb,
        Some(&prev),
        &prev.thread_cores,
        &mut hier_scratch,
        &mut cur,
    );
    std::mem::swap(&mut prev, &mut cur);
    hier.plan_into(
        &pa,
        Some(&prev),
        &prev.thread_cores,
        &mut hier_scratch,
        &mut cur,
    );
    std::mem::swap(&mut prev, &mut cur);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    hier.plan_into(
        &pb,
        Some(&prev),
        &prev.thread_cores,
        &mut hier_scratch,
        &mut cur,
    );
    std::mem::swap(&mut prev, &mut cur);
    hier.plan_into(
        &pa,
        Some(&prev),
        &prev.thread_cores,
        &mut hier_scratch,
        &mut cur,
    );
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    cur.check_feasible(&pa).expect("warm hierarchical feasible");
    assert_eq!(
        allocations, 0,
        "a warm hierarchical incremental epoch at 256 tiles allocated \
         {allocations} times"
    );
}

/// `tiles/4` thread-private VCs on a `side×side` mesh; ids below
/// `changed_prefix` get doubled demand (a changed-epoch fabricator for the
/// incremental path).
fn mega_problem(side: u16, changed_prefix: usize) -> PlacementProblem {
    let n = (side as usize * side as usize) / 4;
    let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
    let vcs = (0..n as u32)
        .map(|i| {
            let scale = if (i as usize) < changed_prefix {
                2.0
            } else {
                1.0
            };
            VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::new(vec![
                    (0.0, scale * (1100.0 + 3.0 * i as f64)),
                    (scale * (1024.0 + 32.0 * i as f64), 30.0),
                ]),
            )
        })
        .collect();
    let threads = (0..n as u32)
        .map(|i| ThreadInfo::new(i, vec![(i, 650.0 + i as f64)]))
        .collect();
    PlacementProblem::new(params, vcs, threads).expect("problem")
}

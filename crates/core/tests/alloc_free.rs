//! Proves the planner's cost evaluation is allocation-free in steady state:
//! with a warmed [`PlanScratch`], recomputing the `(vc × bank)` cost matrix,
//! evaluating `vc_bank_cost`, and running the whole trade search perform
//! **zero** heap allocations. This pins the tentpole property of the
//! hot-path overhaul so a future regression (an innocent-looking `collect()`
//! in the inner loop) fails loudly.
//!
//! Single-test file on purpose: the counting `#[global_allocator]` is
//! process-wide, and a lone test keeps the measured window unshared.

use cdcs_cache::MissCurve;
use cdcs_core::place::{trade_refine_with, vc_bank_cost};
use cdcs_core::{PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{Mesh, TileId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn problem() -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::new(8, 8), 8192);
    let n = 64usize;
    let vcs = (0..n)
        .map(|i| {
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 20_000.0), (8192.0, 500.0)]),
            )
        })
        .collect();
    let threads = (0..n)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 20_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, threads).expect("problem")
}

#[test]
fn warm_cost_paths_do_not_allocate() {
    let p = problem();
    let cores: Vec<TileId> = (0..p.threads.len() as u16).map(TileId).collect();
    let sizes: Vec<u64> = vec![4096; p.vcs.len()];
    let mut scratch = PlanScratch::new();

    // Warm every buffer: one full greedy + trade pass sizes the scratch.
    let mut placement = cdcs_core::place::greedy_place_with(&p, &sizes, &cores, 1024, &mut scratch);
    trade_refine_with(&p, &mut placement, &mut scratch);

    // Steady state: matrix recomputation, scalar cost evaluation and the
    // entire trade search must perform zero allocations.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);

    scratch.compute_cost_matrix(&p, &cores);
    let mut checksum = 0.0f64;
    for d in 0..p.vcs.len() as u32 {
        for b in 0..p.params.num_banks() {
            checksum += vc_bank_cost(&p, &cores, d, b);
        }
    }
    trade_refine_with(&p, &mut placement, &mut scratch);

    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    placement.check_feasible(&p).expect("still feasible");
    assert_eq!(
        allocations, 0,
        "cost-matrix construction / vc_bank_cost / trade search allocated {allocations} times"
    );
}

//! Capacity allocation: dividing LLC lines among virtual caches.
//!
//! CDCS allocates capacity from *total memory latency* curves rather than
//! miss curves (§IV-C): a larger VC misses less but sits further away, so
//! each VC has a latency "sweet spot" (Fig. 5) and it is sometimes best to
//! leave capacity unused. The optimization itself runs on the curves' convex
//! hulls using the Peekahead algorithm (from Jigsaw): on convex curves,
//! greedily taking the steepest remaining hull segment is exact and runs in
//! near-linear time.
//!
//! Three entry points:
//! * [`peekahead`] — the core allocator over arbitrary benefit curves;
//! * [`latency_aware_sizes`] — CDCS allocation (total-latency curves, may
//!   leave capacity unused);
//! * [`miss_driven_sizes`] — Jigsaw allocation (miss curves only, uses all
//!   capacity), the baseline CDCS improves on.

mod latency;

pub use latency::{
    latency_aware_sizes, latency_aware_sizes_into, miss_driven_sizes, miss_driven_sizes_into,
    total_latency_curve,
};
pub(crate) use latency::{latency_aware_sizes_stepped_into, residual_sizes_into};

use cdcs_cache::MissCurve;
use cdcs_mesh::geometry::CompactDistances;
use cdcs_mesh::Mesh;

/// Options for [`peekahead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocOptions {
    /// Total lines to divide.
    pub total_lines: u64,
    /// Allocation granularity in lines (the paper manages capacity in 64 KB
    /// = 1024-line chunks).
    pub granularity: u64,
    /// If true, capacity left after all *beneficial* segments are exhausted
    /// is spread round-robin over VCs with non-zero demand (Jigsaw-style
    /// "use everything"); if false, it is left unused (CDCS §IV-C: "it is
    /// sometimes better to leave cache capacity unused").
    pub use_all_capacity: bool,
    /// Segments whose benefit densities are within this relative tolerance
    /// are treated as tied and share capacity chunk-by-chunk instead of
    /// serializing. With exact curves this changes nothing (utility is equal
    /// either way); with sampled (GMON) curves it prevents measurement noise
    /// from starving one of several identical VCs when capacity runs out
    /// mid-tie — see `DESIGN.md` §6.
    pub tie_tolerance: f64,
}

impl AllocOptions {
    /// Paper-flavoured options: 1024-line (64 KB) granularity, 25% tie
    /// sharing.
    pub fn new(total_lines: u64) -> Self {
        AllocOptions {
            total_lines,
            granularity: 1024,
            use_all_capacity: false,
            tie_tolerance: 0.25,
        }
    }
}

/// A hull segment: allocating `lines` more lines to `vc` lowers its curve by
/// `benefit_per_line * lines`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    vc: usize,
    lines: f64,
    benefit_per_line: f64,
    /// Build-order index, the tie-break that makes the unstable
    /// best-first sort reproduce the definitional stable sort exactly.
    seq: usize,
}

/// Reusable buffers for the whole capacity-allocation step: the per-VC
/// total-latency curve and hull under construction, the chip-center
/// distance cache, the extracted hull segments, and every working vector
/// Peekahead and its rounding pass need.
///
/// One scratch serves any sequence of problems (buffers grow to the
/// largest problem seen; the distance cache is rebuilt only when the mesh
/// changes). Owned by [`crate::PlanScratch`], so threading the planner's
/// scratch through [`latency_aware_sizes_into`] makes entire
/// reconfigurations allocation-free in steady state — pinned by
/// `crates/core/tests/alloc_free.rs`.
#[derive(Debug)]
pub struct AllocScratch {
    /// Capacity grid under construction (latency-aware allocation).
    pub(crate) grid: Vec<f64>,
    /// Raw `(capacity, cost)` samples before curve normalization.
    pub(crate) raw: Vec<(f64, f64)>,
    /// The current VC's total-latency curve (rebuilt per VC).
    pub(crate) curve: MissCurve,
    /// The current VC's convex hull (rebuilt per VC).
    pub(crate) hull: MissCurve,
    /// Chip-center compact-placement distances, cached per mesh.
    pub(crate) dists: Option<(Mesh, CompactDistances)>,
    /// Beneficial hull segments of every VC.
    pub(crate) segments: Vec<Segment>,
    /// Fractional allocation per VC.
    alloc: Vec<f64>,
    /// Per-group remaining lines (tie-sharing walk).
    rem: Vec<f64>,
    /// Remainder-descending VC order (granularity rounding).
    order: Vec<usize>,
    /// VCs with non-zero demand (`use_all_capacity` spreading).
    pub(crate) demanders: Vec<usize>,
}

impl Default for AllocScratch {
    fn default() -> Self {
        AllocScratch {
            grid: Vec::new(),
            raw: Vec::new(),
            curve: MissCurve::placeholder(),
            hull: MissCurve::placeholder(),
            dists: None,
            segments: Vec::new(),
            alloc: Vec::new(),
            rem: Vec::new(),
            order: Vec::new(),
            demanders: Vec::new(),
        }
    }
}

impl AllocScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        AllocScratch::default()
    }
}

/// Appends `hull`'s beneficial segments for `vc` to `segments` (the
/// per-curve half of [`peekahead`]'s segment construction).
// lint: zero-alloc
fn push_hull_segments(vc: usize, hull: &MissCurve, segments: &mut Vec<Segment>) {
    for w in hull.points().windows(2) {
        let (c0, m0) = w[0];
        let (c1, m1) = w[1];
        let lines = c1 - c0;
        if lines <= 0.0 {
            continue;
        }
        let benefit = (m0 - m1) / lines;
        if benefit > 0.0 {
            segments.push(Segment {
                vc,
                lines,
                benefit_per_line: benefit,
                seq: segments.len(),
            });
        }
    }
}
// lint: end-zero-alloc

/// Allocates `opts.total_lines` among benefit curves by greedy convex-hull
/// descent (Peekahead).
///
/// `curves[d]` maps capacity (lines) to a *cost* (misses, cycles, …); lower
/// is better and curves are non-increasing after hull-ification except that
/// total-latency curves may rise again — rising segments have negative
/// benefit and are never taken.
///
/// Returns per-VC allocations in lines, each a multiple of
/// `opts.granularity` (except possibly the last chunk of a VC, capped by
/// remaining capacity), summing to at most `opts.total_lines`.
///
/// # Panics
///
/// Panics if `opts.granularity` is zero.
pub fn peekahead(curves: &[MissCurve], opts: AllocOptions) -> Vec<u64> {
    let mut out = Vec::new();
    peekahead_into(curves, opts, &mut AllocScratch::new(), &mut out);
    out
}

/// [`peekahead`] against caller-owned buffers, writing the allocations
/// into `out` (identical values, zero steady-state allocations once the
/// scratch is warm).
///
/// # Panics
///
/// As [`peekahead`].
// lint: zero-alloc
pub fn peekahead_into(
    curves: &[MissCurve],
    opts: AllocOptions,
    scratch: &mut AllocScratch,
    out: &mut Vec<u64>,
) {
    scratch.segments.clear();
    let AllocScratch { hull, segments, .. } = scratch;
    for (vc, curve) in curves.iter().enumerate() {
        curve.convex_hull_into(hull);
        push_hull_segments(vc, hull, segments);
    }
    scratch.demanders.clear();
    if opts.use_all_capacity {
        scratch.demanders.extend(
            curves
                .iter()
                .enumerate()
                .filter(|(_, c)| c.at_zero() > 0.0)
                .map(|(i, _)| i),
        );
    }
    peekahead_from_segments(curves.len(), opts, scratch, out);
}
// lint: end-zero-alloc

/// The allocator core over pre-extracted hull segments (`scratch.segments`,
/// built by [`push_hull_segments`]) and pre-computed `scratch.demanders`
/// (only read when `opts.use_all_capacity`). Writes per-VC allocations into
/// `out`.
///
/// # Panics
///
/// Panics if `opts.granularity` is zero.
// lint: zero-alloc
fn peekahead_from_segments(
    num_vcs: usize,
    opts: AllocOptions,
    scratch: &mut AllocScratch,
    out: &mut Vec<u64>,
) {
    assert!(opts.granularity > 0, "granularity must be non-zero");
    let AllocScratch {
        segments,
        alloc,
        rem,
        order,
        demanders,
        ..
    } = scratch;
    alloc.clear();
    alloc.resize(num_vcs, 0.0f64);
    let mut remaining = opts.total_lines as f64;

    // Best-first order. Convexity means each VC's segments have
    // non-increasing benefit density, so this visits them in exactly the
    // order iterative lookahead would; the `seq` tie-break makes the
    // unstable (allocation-free) sort equivalent to the stable one.
    segments.sort_unstable_by(|a, b| {
        b.benefit_per_line
            .partial_cmp(&a.benefit_per_line)
            .unwrap()
            .then(a.seq.cmp(&b.seq))
    });

    // Walk segments best-first; near-tied groups share capacity in
    // granularity-sized chunks round-robin so that ties do not serialize.
    let mut i = 0;
    while i < segments.len() && remaining > 0.0 {
        let group_floor = segments[i].benefit_per_line * (1.0 - opts.tie_tolerance);
        let mut j = i + 1;
        while j < segments.len() && segments[j].benefit_per_line >= group_floor {
            j += 1;
        }
        rem.clear();
        rem.extend(segments[i..j].iter().map(|s| s.lines));
        loop {
            let mut progressed = false;
            for (k, seg) in segments[i..j].iter().enumerate() {
                if remaining <= 0.0 {
                    break;
                }
                if rem[k] <= 0.0 {
                    continue;
                }
                let take = (opts.granularity as f64).min(rem[k]).min(remaining);
                alloc[seg.vc] += take;
                rem[k] -= take;
                remaining -= take;
                progressed = true;
            }
            if !progressed || remaining <= 0.0 {
                break;
            }
        }
        i = j;
    }

    // Round to granularity, preserving the grand total (largest remainders
    // get the leftover chunks).
    round_to_granularity_into(alloc, opts.granularity, opts.total_lines, order, out);

    if opts.use_all_capacity {
        let mut left = opts.total_lines - out.iter().sum::<u64>();
        if !demanders.is_empty() {
            let mut i = 0;
            while left > 0 {
                let chunk = opts.granularity.min(left);
                out[demanders[i % demanders.len()]] += chunk;
                left -= chunk;
                i += 1;
            }
        }
    }
}
// lint: end-zero-alloc

/// Rounds fractional allocations down to multiples of `granularity`, then
/// hands whole chunks back to the largest fractional remainders while the
/// `total` budget allows. All outputs are multiples of `granularity` and the
/// sum never exceeds `total`. `order` is a caller-pooled index buffer; the
/// result lands in `out`.
fn round_to_granularity_into(
    alloc: &[f64],
    granularity: u64,
    total: u64,
    order: &mut Vec<usize>,
    out: &mut Vec<u64>,
) {
    let g = granularity as f64;
    out.clear();
    out.extend(alloc.iter().map(|&a| (a / g).floor() as u64 * granularity));
    let mut sum: u64 = out.iter().sum();
    order.clear();
    order.extend(0..alloc.len());
    // Remainder-descending with an index tie-break: equivalent to the
    // definitional stable sort, without its merge buffer.
    order.sort_unstable_by(|&a, &b| {
        let ra = alloc[a] % g;
        let rb = alloc[b] % g;
        rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter() {
        if alloc[i] % g > 0.0 && sum + granularity <= total {
            out[i] += granularity;
            sum += granularity;
        }
    }
}

/// Reference O(D·S²/g²) utility-based lookahead (UCP [Qureshi & Patt]) used
/// in tests to validate [`peekahead`]: repeatedly gives `granularity` lines
/// to whichever VC gains the highest marginal utility, looking ahead past
/// plateaus.
pub fn lookahead_reference(curves: &[MissCurve], opts: AllocOptions) -> Vec<u64> {
    assert!(opts.granularity > 0, "granularity must be non-zero");
    let mut alloc = vec![0u64; curves.len()];
    let mut remaining = opts.total_lines;
    loop {
        if remaining == 0 {
            break;
        }
        // For each VC, find the extension with the best utility density.
        let mut best: Option<(usize, u64, f64)> = None; // (vc, lines, density)
        for (vc, curve) in curves.iter().enumerate() {
            let cur = alloc[vc] as f64;
            let cur_m = curve.misses_at(cur);
            // Extensions grow monotonically: a cursor answers the thousands
            // of near-sorted queries in one sweep per VC.
            let mut extension = curve.cursor();
            let mut steps = 1u64;
            loop {
                let lines = steps * opts.granularity;
                if lines > remaining {
                    break;
                }
                let density = (cur_m - extension.misses_at(cur + lines as f64)) / lines as f64;
                if density > 0.0 && best.is_none_or(|(_, _, d)| density > d + 1e-12) {
                    best = Some((vc, lines, density));
                }
                if cur + lines as f64 >= curve.max_capacity() {
                    break;
                }
                steps += 1;
            }
        }
        match best {
            Some((vc, lines, _)) => {
                alloc[vc] += lines;
                remaining -= lines;
            }
            None => break,
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)]) -> MissCurve {
        MissCurve::new(points.to_vec())
    }

    #[test]
    fn steepest_curve_wins_scarce_capacity() {
        // VC0 drops 100 misses over 1024 lines; VC1 drops 10.
        let curves = vec![
            curve(&[(0.0, 100.0), (1024.0, 0.0)]),
            curve(&[(0.0, 10.0), (1024.0, 0.0)]),
        ];
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 1024,
                granularity: 1024,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            },
        );
        assert_eq!(alloc, vec![1024, 0]);
    }

    #[test]
    fn capacity_split_follows_marginal_utility() {
        let curves = vec![
            curve(&[(0.0, 100.0), (2048.0, 0.0)]), // 0.049 / line
            curve(&[(0.0, 100.0), (1024.0, 40.0), (4096.0, 0.0)]),
        ];
        let opts = AllocOptions {
            total_lines: 3072,
            granularity: 1024,
            use_all_capacity: false,
            tie_tolerance: 0.1,
        };
        let alloc = peekahead(&curves, opts);
        assert_eq!(alloc.iter().sum::<u64>(), 3072);
        // VC1's first segment (~0.059/line) beats VC0's (0.049), then VC0's
        // beats VC1's tail (0.013).
        assert_eq!(alloc, vec![2048, 1024]);
    }

    #[test]
    fn peekahead_matches_reference_lookahead() {
        let curves = vec![
            curve(&[
                (0.0, 500.0),
                (1024.0, 300.0),
                (2048.0, 180.0),
                (8192.0, 20.0),
            ]),
            curve(&[(0.0, 200.0), (4096.0, 10.0)]),
            curve(&[(0.0, 80.0), (2048.0, 75.0), (3072.0, 70.0)]),
            MissCurve::flat(50.0),
        ];
        for total in [2048u64, 8192, 16384] {
            let opts = AllocOptions {
                total_lines: total,
                granularity: 1024,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            };
            let fast = peekahead(&curves, opts);
            let slow = lookahead_reference(&curves, opts);
            // Both must extract the same total utility (allocations may
            // differ on ties).
            let util = |alloc: &[u64]| -> f64 {
                curves
                    .iter()
                    .zip(alloc)
                    .map(|(c, &s)| c.at_zero() - c.misses_at(s as f64))
                    .sum()
            };
            let (uf, us) = (util(&fast), util(&slow));
            assert!(
                (uf - us).abs() < 1e-6,
                "total {total}: peekahead {uf} vs lookahead {us} ({fast:?} vs {slow:?})"
            );
        }
    }

    #[test]
    fn flat_curves_get_nothing_without_use_all() {
        let curves = vec![
            MissCurve::flat(1000.0),
            curve(&[(0.0, 10.0), (1024.0, 0.0)]),
        ];
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 8192,
                granularity: 1024,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            },
        );
        assert_eq!(alloc[0], 0, "streaming app must get no capacity");
        assert_eq!(alloc[1], 1024);
    }

    #[test]
    fn use_all_capacity_spreads_leftover() {
        let curves = vec![
            MissCurve::flat(1000.0),
            curve(&[(0.0, 10.0), (1024.0, 0.0)]),
        ];
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 8192,
                granularity: 1024,
                use_all_capacity: true,
                tie_tolerance: 0.1,
            },
        );
        assert_eq!(alloc.iter().sum::<u64>(), 8192);
        assert!(alloc[0] > 0, "leftover must be spread");
    }

    #[test]
    fn use_all_capacity_with_no_demand_leaves_unused() {
        let curves = vec![MissCurve::zero()];
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 4096,
                granularity: 1024,
                use_all_capacity: true,
                tie_tolerance: 0.1,
            },
        );
        assert_eq!(alloc, vec![0]);
    }

    #[test]
    fn allocation_respects_total() {
        let curves: Vec<MissCurve> = (0..7)
            .map(|i| curve(&[(0.0, 100.0 + i as f64), (10_000.0, 0.0)]))
            .collect();
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 5000,
                granularity: 512,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            },
        );
        assert!(alloc.iter().sum::<u64>() <= 5000);
        for a in &alloc {
            assert_eq!(a % 512, 0);
        }
    }

    #[test]
    fn rising_total_latency_segments_never_taken() {
        // A total-latency-style curve: falls to a sweet spot then rises.
        let curves = vec![
            curve(&[(0.0, 100.0), (1024.0, 50.0)]).add(&curve(&[(0.0, 0.0)])), // still falling only
            MissCurve::new(vec![(0.0, 100.0), (1024.0, 40.0), (4096.0, 90.0)]),
        ];
        let alloc = peekahead(
            &curves,
            AllocOptions {
                total_lines: 16_384,
                granularity: 1024,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            },
        );
        // VC1 must stop at its sweet spot (1024), not grow into the rising
        // region.
        assert_eq!(alloc[1], 1024);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_panics() {
        peekahead(
            &[MissCurve::zero()],
            AllocOptions {
                total_lines: 10,
                granularity: 0,
                use_all_capacity: false,
                tie_tolerance: 0.1,
            },
        );
    }

    #[test]
    fn empty_curve_list_is_fine() {
        let alloc = peekahead(&[], AllocOptions::new(1024));
        assert!(alloc.is_empty());
    }
}

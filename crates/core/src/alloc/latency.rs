//! Latency-aware allocation: building total-latency curves (§IV-C).
//!
//! Off-chip latency falls with allocation (fewer misses) while on-chip
//! latency rises (data further away): their sum has a sweet spot (Fig. 5).
//! The on-chip term needs a data placement, which is unknown this early in
//! the reconfiguration, so CDCS uses an *optimistic* estimate: the VC placed
//! compactly around the center of the chip (Fig. 6).

use super::{peekahead_from_segments, push_hull_segments, AllocOptions, AllocScratch};
use crate::{PlacementProblem, PlanScratch, VcId};
use cdcs_cache::MissCurve;
use cdcs_mesh::geometry;

/// Builds the total-latency curve for one VC (Fig. 5): off-chip latency
/// (Eq. 1) plus the optimistic on-chip latency of a compactly-placed VC.
///
/// The returned curve is in cycles over capacity in lines; its grid is the
/// union of the miss curve's points and whole-bank multiples (so the rising
/// on-chip term is visible between miss-curve samples).
///
/// Note: [`MissCurve`] enforces non-increasing values, so the region past
/// the latency sweet spot is stored *flat* rather than rising. For
/// allocation this is equivalent — flat segments have zero marginal benefit
/// and are never taken when capacity may be left unused — and it keeps a
/// single curve type throughout. Callers that want the true rising shape
/// (e.g. the Fig. 5 harness) evaluate the two latency terms directly.
pub fn total_latency_curve(problem: &PlacementProblem, vc: VcId) -> MissCurve {
    let center = geometry::chip_center(problem.params.mesh());
    let dists = geometry::CompactDistances::new(problem.params.mesh(), center);
    let mut grid = Vec::new();
    let mut raw = Vec::new();
    let mut curve = MissCurve::placeholder();
    total_latency_curve_into(problem, vc, &dists, 1, &mut grid, &mut raw, &mut curve);
    curve
}

/// [`total_latency_curve`] with the chip-center distance table precomputed
/// and every buffer caller-pooled: the capacity grid, the raw samples, and
/// the output curve itself (rebuilt in place). The distances from the chip
/// center depend only on the mesh, so [`latency_aware_sizes_into`] caches
/// them in the scratch instead of re-sorting the tile list per evaluation.
// lint: zero-alloc
fn total_latency_curve_into(
    problem: &PlacementProblem,
    vc: VcId,
    dists: &geometry::CompactDistances,
    grid_step_banks: u64,
    grid: &mut Vec<f64>,
    raw: &mut Vec<(f64, f64)>,
    out: &mut MissCurve,
) {
    let params = &problem.params;
    let info = &problem.vcs[vc as usize];
    let accesses = problem.vc_accesses(vc);
    let per_hop = f64::from(params.noc().round_trip_latency(1));

    grid.clear();
    grid.extend(info.curve.points().iter().map(|p| p.0));
    let max_cap = params.total_lines() as f64;
    let step = params.bank_lines as f64 * grid_step_banks.max(1) as f64;
    let mut c = step;
    while c <= max_cap {
        grid.push(c);
        c += step;
    }
    grid.push(max_cap);
    grid.retain(|&c| c <= max_cap);
    // Unstable sort of plain values: equal keys are interchangeable, so
    // the sorted sequence (and the dedup below) is identical to the
    // definitional stable sort's.
    grid.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite capacities"));
    grid.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    // The grid is ascending, so the miss curve is evaluated with a monotone
    // cursor: one sweep over the curve's points instead of a binary search
    // per grid point (identical values — see `CurveCursor`).
    let mut misses = info.curve.cursor();
    raw.clear();
    raw.extend(grid.iter().map(|&s| {
        let off_chip = misses.misses_at(s) * params.mem_latency;
        let mean_dist = dists.mean_distance(s / params.bank_lines as f64);
        let on_chip = accesses * mean_dist * per_hop;
        (s, off_chip + on_chip)
    }));
    out.rebuild(raw);
}
// lint: end-zero-alloc

/// CDCS latency-aware capacity allocation (§IV-C): Peekahead over
/// total-latency curves, leaving capacity unused when further allocation
/// would raise latency.
///
/// One-shot wrapper over [`latency_aware_sizes_into`] (allocates a fresh
/// scratch).
pub fn latency_aware_sizes(problem: &PlacementProblem, granularity: u64) -> Vec<u64> {
    let mut out = Vec::new();
    latency_aware_sizes_into(problem, granularity, &mut PlanScratch::new(), &mut out);
    out
}

/// [`latency_aware_sizes`] against caller-owned buffers: the per-VC
/// total-latency curves, their hulls, the chip-center distance table, and
/// all of Peekahead's working state live in the scratch, so per-epoch
/// reallocation runs allocation-free once warm (each VC's curve is built,
/// hulled, and reduced to segments before the next VC's overwrites the
/// buffers — nothing per-VC is retained).
// lint: zero-alloc
pub fn latency_aware_sizes_into(
    problem: &PlacementProblem,
    granularity: u64,
    scratch: &mut PlanScratch,
    out: &mut Vec<u64>,
) {
    latency_aware_sizes_stepped_into(problem, granularity, 1, scratch, out);
}
// lint: end-zero-alloc

/// [`latency_aware_sizes_into`] on a coarsened capacity grid: the
/// total-latency curves sample every `grid_step_banks` banks instead of
/// every bank. The per-bank grid makes sizing O(VCs × banks) — quadratic in
/// tiles when every tile runs a thread — which is what caps flat planning
/// at mega-mesh scale. The hierarchical planner
/// ([`crate::policy::HierarchicalPlanner`]) passes a step that bounds the
/// grid to ~128 capacity points, keeping sizing near-linear; with step 1
/// this is exactly the flat sizing (the delegation above), so all
/// flat-path results are untouched.
// lint: zero-alloc
pub(crate) fn latency_aware_sizes_stepped_into(
    problem: &PlacementProblem,
    granularity: u64,
    grid_step_banks: u64,
    scratch: &mut PlanScratch,
    out: &mut Vec<u64>,
) {
    let scratch = &mut scratch.alloc;
    let mesh = *problem.params.mesh();
    let stale = scratch.dists.as_ref().is_none_or(|(m, _)| *m != mesh);
    if stale {
        let center = geometry::chip_center(&mesh);
        scratch.dists = Some((mesh, geometry::CompactDistances::new(&mesh, center)));
    }
    scratch.segments.clear();
    let AllocScratch {
        grid,
        raw,
        curve,
        hull,
        dists,
        segments,
        ..
    } = scratch;
    let (_, dists) = dists.as_ref().expect("distance cache ensured above");
    for d in 0..problem.vcs.len() {
        total_latency_curve_into(problem, d as VcId, dists, grid_step_banks, grid, raw, curve);
        curve.convex_hull_into(hull);
        push_hull_segments(d, hull, segments);
    }
    scratch.demanders.clear();
    peekahead_from_segments(
        problem.vcs.len(),
        AllocOptions {
            total_lines: problem.params.total_lines(),
            granularity,
            use_all_capacity: false,
            tie_tolerance: 0.25,
        },
        scratch,
        out,
    );
}
// lint: end-zero-alloc

/// Jigsaw's miss-driven allocation: Peekahead over raw miss curves, spreading
/// leftover capacity over all demanders ("sizes VCs obliviously to their
/// latency", §IV).
///
/// One-shot wrapper over [`miss_driven_sizes_into`] (allocates a fresh
/// scratch).
pub fn miss_driven_sizes(problem: &PlacementProblem, granularity: u64) -> Vec<u64> {
    let mut out = Vec::new();
    miss_driven_sizes_into(problem, granularity, &mut PlanScratch::new(), &mut out);
    out
}

/// [`miss_driven_sizes`] against caller-owned buffers (hulls are built
/// straight from the problem's miss curves — no clones, no per-epoch
/// allocation once warm).
// lint: zero-alloc
pub fn miss_driven_sizes_into(
    problem: &PlacementProblem,
    granularity: u64,
    scratch: &mut PlanScratch,
    out: &mut Vec<u64>,
) {
    let scratch = &mut scratch.alloc;
    scratch.segments.clear();
    let AllocScratch { hull, segments, .. } = scratch;
    for (d, vc) in problem.vcs.iter().enumerate() {
        vc.curve.convex_hull_into(hull);
        push_hull_segments(d, hull, segments);
    }
    scratch.demanders.clear();
    scratch.demanders.extend(
        problem
            .vcs
            .iter()
            .enumerate()
            .filter(|(_, v)| v.curve.at_zero() > 0.0)
            .map(|(i, _)| i),
    );
    peekahead_from_segments(
        problem.vcs.len(),
        AllocOptions {
            total_lines: problem.params.total_lines(),
            granularity,
            use_all_capacity: true,
            tie_tolerance: 0.25,
        },
        scratch,
        out,
    );
}
// lint: end-zero-alloc

/// Capacity allocation restricted to a subset of VCs against a residual
/// budget: Peekahead over the hulls of the `include`d VCs only, with
/// `total_lines` capacity (the chip minus what the excluded VCs keep).
///
/// This is the incremental warm-start's sizing step
/// ([`crate::policy::HierarchicalPlanner`]): unchanged VCs retain their
/// previous allocations verbatim, so only the changed VCs are re-sized, and
/// only against the capacity those allocations left free. Excluded VCs get
/// zero in `out`. Allocation-free once the scratch is warm.
#[allow(clippy::too_many_arguments)] // mirrors the sizing knobs one-for-one
                                     // lint: zero-alloc
pub(crate) fn residual_sizes_into(
    problem: &PlacementProblem,
    include: &[bool],
    total_lines: u64,
    latency_aware: bool,
    granularity: u64,
    grid_step_banks: u64,
    scratch: &mut PlanScratch,
    out: &mut Vec<u64>,
) {
    assert_eq!(include.len(), problem.vcs.len(), "one flag per VC");
    let scratch = &mut scratch.alloc;
    if latency_aware {
        let mesh = *problem.params.mesh();
        let stale = scratch.dists.as_ref().is_none_or(|(m, _)| *m != mesh);
        if stale {
            let center = geometry::chip_center(&mesh);
            scratch.dists = Some((mesh, geometry::CompactDistances::new(&mesh, center)));
        }
    }
    scratch.segments.clear();
    let AllocScratch {
        grid,
        raw,
        curve,
        hull,
        dists,
        segments,
        ..
    } = scratch;
    for (d, &included) in include.iter().enumerate() {
        if !included {
            continue;
        }
        if latency_aware {
            let (_, dists) = dists.as_ref().expect("distance cache ensured above");
            total_latency_curve_into(problem, d as VcId, dists, grid_step_banks, grid, raw, curve);
            curve.convex_hull_into(hull);
        } else {
            problem.vcs[d].curve.convex_hull_into(hull);
        }
        push_hull_segments(d, hull, segments);
    }
    scratch.demanders.clear();
    if !latency_aware {
        scratch.demanders.extend(
            problem
                .vcs
                .iter()
                .enumerate()
                .filter(|&(d, v)| include[d] && v.curve.at_zero() > 0.0)
                .map(|(d, _)| d),
        );
    }
    peekahead_from_segments(
        problem.vcs.len(),
        AllocOptions {
            total_lines,
            granularity,
            use_all_capacity: !latency_aware,
            tie_tolerance: 0.25,
        },
        scratch,
        out,
    );
}
// lint: end-zero-alloc

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_mesh::Mesh;

    /// 16-bank chip, 1024-line banks; one intense thread with a gently
    /// improving curve and one streaming thread.
    fn problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(4, 4), 1024);
        let vcs = vec![
            VcInfo::new(
                0,
                VcKind::thread_private(0),
                MissCurve::new(vec![(0.0, 1000.0), (2048.0, 100.0), (8192.0, 60.0)]),
            ),
            VcInfo::new(1, VcKind::thread_private(1), MissCurve::flat(800.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 1000.0)]),
            ThreadInfo::new(1, vec![(1, 800.0)]),
        ];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn total_latency_curve_has_sweet_spot() {
        let p = problem();
        let tl = total_latency_curve(&p, 0);
        // Latency at the sweet-spot region (~2048 lines) must beat both the
        // zero allocation and the full-chip allocation.
        let at_0 = tl.misses_at(0.0);
        let at_2k = tl.misses_at(2048.0);
        assert!(
            at_2k < at_0,
            "allocation must reduce latency: {at_2k} vs {at_0}"
        );
        // NOTE: MissCurve enforces monotonicity, so the "rise" past the
        // sweet spot appears as a flat tail; the hull still stops growing
        // there, which is what allocation consumes. Check the raw function
        // instead: on-chip cost at full chip exceeds the miss savings.
        let params = &p.params;
        let center = cdcs_mesh::geometry::chip_center(params.mesh());
        let per_hop = f64::from(params.noc().round_trip_latency(1));
        let full = params.total_lines() as f64;
        let raw = |s: f64| {
            p.vcs[0].curve.misses_at(s) * params.mem_latency
                + 1000.0
                    * cdcs_mesh::geometry::compact_mean_distance(
                        params.mesh(),
                        center,
                        s / params.bank_lines as f64,
                    )
                    * per_hop
        };
        assert!(
            raw(full) > raw(2048.0),
            "full-chip latency must exceed sweet spot"
        );
    }

    #[test]
    fn latency_aware_leaves_capacity_unused_for_streaming() {
        let p = problem();
        let sizes = latency_aware_sizes(&p, 512);
        assert_eq!(sizes[1], 0, "streaming VC gets nothing");
        let total: u64 = sizes.iter().sum();
        assert!(
            total < p.params.total_lines(),
            "latency-aware allocation should leave capacity unused"
        );
        // The intense VC should get roughly its sweet spot, not the chip.
        assert!(sizes[0] >= 2048, "sizes: {sizes:?}");
        assert!(sizes[0] <= 10_240, "sizes: {sizes:?}");
    }

    #[test]
    fn miss_driven_uses_everything() {
        let p = problem();
        let sizes = miss_driven_sizes(&p, 512);
        assert_eq!(sizes.iter().sum::<u64>(), p.params.total_lines());
        assert!(
            sizes[1] > 0,
            "Jigsaw spreads leftover even to streaming apps"
        );
    }

    #[test]
    fn residual_sizes_cover_only_included_vcs() {
        let p = problem();
        let mut scratch = PlanScratch::new();
        let mut out = Vec::new();
        // Miss-driven over VC 0 only, against a 4096-line residual: the
        // excluded VC gets nothing and the budget is fully used.
        residual_sizes_into(
            &p,
            &[true, false],
            4096,
            false,
            512,
            1,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out[1], 0, "excluded VC must not be sized");
        assert_eq!(out.iter().sum::<u64>(), 4096);
    }

    #[test]
    fn residual_sizes_with_everything_included_match_full_allocation() {
        let p = problem();
        let mut scratch = PlanScratch::new();
        let mut out = Vec::new();
        for latency_aware in [false, true] {
            residual_sizes_into(
                &p,
                &[true, true],
                p.params.total_lines(),
                latency_aware,
                512,
                1,
                &mut scratch,
                &mut out,
            );
            let full = if latency_aware {
                latency_aware_sizes(&p, 512)
            } else {
                miss_driven_sizes(&p, 512)
            };
            assert_eq!(out, full, "latency_aware={latency_aware}");
        }
    }

    #[test]
    fn curves_cover_full_chip_grid() {
        let p = problem();
        let tl = total_latency_curve(&p, 0);
        assert!(tl.max_capacity() >= p.params.total_lines() as f64 - 1.0);
    }
}

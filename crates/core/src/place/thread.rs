//! Thread placement (§IV-E).
//!
//! Given the optimistic data placement, each thread wants to sit at the
//! center of mass of its accesses (weighting each VC's center by the
//! thread's access rate to it). Threads are placed in descending
//! *intensity-capacity product* (`Σ_d a_{t,d} · s_d`): threads that access
//! lots of data intensively are hardest to satisfy later, so they pick
//! cores first. This is what clusters shared-heavy processes around their
//! shared VC and spreads private-heavy ones (Fig. 16).

use super::optimistic::OptimisticPlacement;
use super::PlanScratch;
use crate::PlacementProblem;
use cdcs_mesh::geometry::{chip_center, Point};
use cdcs_mesh::{Mesh, TileId, Topology};

/// Places threads on cores given VC sizes and the optimistic data placement.
/// Returns one core per thread (all distinct).
///
/// One-shot wrapper over [`place_threads_with`] (allocates a fresh scratch).
///
/// `prev_cores` (with `stability_bias`, in hops) biases each thread toward
/// its current core: a thread only migrates when the new tile is more than
/// `stability_bias` hops closer to its data. The paper's epochs are ~50x
/// longer than ours with correspondingly quieter miss curves, so its
/// deterministic recomputation is naturally stable; at our time scale,
/// monitor sampling noise would otherwise flip near-tied placements every
/// epoch and churn the whole LLC (see `DESIGN.md` §6). Pass `None` (or a
/// zero bias) for the paper's literal behaviour.
///
/// # Panics
///
/// Panics if `sizes` or `optimistic.centers` length differs from the
/// problem's VC count, or if `prev_cores` is present with the wrong length.
pub fn place_threads(
    problem: &PlacementProblem,
    sizes: &[u64],
    optimistic: &OptimisticPlacement,
    prev_cores: Option<&[TileId]>,
    stability_bias: f64,
) -> Vec<TileId> {
    place_threads_with(
        problem,
        sizes,
        optimistic,
        prev_cores,
        stability_bias,
        &mut PlanScratch::new(),
    )
}

/// [`place_threads`] against caller-owned buffers: preferred points, sort
/// keys and the occupied-tile set live in `scratch`; the intensity-capacity
/// sort key is computed once per thread instead of inside the comparator
/// (`O(T log T)` redundant evaluations in the definitional version).
///
/// # Panics
///
/// As [`place_threads`].
pub fn place_threads_with(
    problem: &PlacementProblem,
    sizes: &[u64],
    optimistic: &OptimisticPlacement,
    prev_cores: Option<&[TileId]>,
    stability_bias: f64,
    scratch: &mut PlanScratch,
) -> Vec<TileId> {
    let mut out = Vec::new();
    place_threads_into(
        problem,
        sizes,
        optimistic,
        prev_cores,
        stability_bias,
        scratch,
        &mut out,
    );
    out
}

/// [`place_threads_with`] writing into a caller-pooled core buffer (the
/// planner keeps one in its scratch, so steady-state reconfigurations emit
/// thread placements without allocating).
///
/// # Panics
///
/// As [`place_threads`].
// lint: zero-alloc
pub fn place_threads_into(
    problem: &PlacementProblem,
    sizes: &[u64],
    optimistic: &OptimisticPlacement,
    prev_cores: Option<&[TileId]>,
    stability_bias: f64,
    scratch: &mut PlanScratch,
    out: &mut Vec<TileId>,
) {
    assert_eq!(sizes.len(), problem.vcs.len(), "one size per VC");
    assert_eq!(
        optimistic.centers.len(),
        problem.vcs.len(),
        "one center per VC"
    );
    if let Some(prev) = prev_cores {
        assert_eq!(
            prev.len(),
            problem.threads.len(),
            "one previous core per thread"
        );
    }
    let mesh = &problem.params.mesh();

    // Preferred point per thread: access-weighted mean of its VCs' centers
    // (VCs with no data pull toward nothing — their accesses go to memory).
    scratch.preferred.clear();
    scratch.preferred.extend(problem.threads.iter().map(|t| {
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for &(d, a) in &t.vc_accesses {
            if let Some(c) = optimistic.centers[d as usize] {
                wx += a * c.x;
                wy += a * c.y;
                wsum += a;
            }
        }
        if wsum > 0.0 {
            Point {
                x: wx / wsum,
                y: wy / wsum,
            }
        } else {
            chip_center(mesh)
        }
    }));

    // Descending intensity-capacity product breaks placement ties in favour
    // of threads for which "low on-chip latency is important, and for which
    // VCs are hard to move" (§IV-E). Keys precomputed once; the (key desc,
    // id asc) comparator is a total order, so the unstable sort matches the
    // definitional stable sort.
    scratch.keys.clear();
    scratch.keys.extend(problem.threads.iter().map(|t| {
        t.vc_accesses
            .iter()
            .map(|&(d, acc)| acc * sizes[d as usize] as f64)
            .sum::<f64>()
    }));
    scratch.order.clear();
    scratch.order.extend(0..problem.threads.len());
    let keys = &scratch.keys;
    scratch.order.sort_unstable_by(|&a, &b| {
        keys[b]
            .partial_cmp(&keys[a])
            .expect("finite keys")
            .then(a.cmp(&b))
    });

    scratch.taken.clear();
    scratch.taken.resize(mesh.num_tiles(), false);
    out.clear();
    out.resize(problem.threads.len(), TileId(0));
    for oi in 0..scratch.order.len() {
        let t = scratch.order[oi];
        let home = prev_cores.map(|prev| prev[t]);
        let tile = nearest_free_tile(
            mesh,
            scratch.preferred[t],
            &scratch.taken,
            home,
            stability_bias,
        );
        scratch.taken[tile.index()] = true;
        out[t] = tile;
    }
}
// lint: end-zero-alloc

/// The free tile nearest to `p` (ties by tile id). The thread's current
/// `home` tile gets a `stability_bias`-hop head start.
///
/// # Panics
///
/// Panics if every tile is taken.
fn nearest_free_tile(
    mesh: &Mesh,
    p: Point,
    taken: &[bool],
    home: Option<TileId>,
    stability_bias: f64,
) -> TileId {
    // Seed with the home tile so it also wins exact ties (strict `<` below).
    let mut best: Option<(f64, TileId)> = home
        .filter(|h| !taken[h.index()])
        .map(|h| (mesh.hops_to_point(h, p.x, p.y) - stability_bias, h));
    // Iterate tile ids directly (`Topology::tiles()` collects a fresh Vec;
    // this runs once per thread per epoch): same id order, no allocation.
    for t in (0..mesh.num_tiles() as u16).map(TileId) {
        if taken[t.index()] || Some(t) == home {
            continue;
        }
        let d = mesh.hops_to_point(t, p.x, p.y);
        if best.is_none_or(|(bd, _)| d < bd - 1e-12) {
            best = Some((d, t));
        }
    }
    best.expect("no free tile left").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::optimistic_place;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;

    /// Builds a problem where thread 0 accesses a big VC intensely and
    /// thread 1 accesses a small one lightly.
    fn two_thread_problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(4, 4), 1024);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(1000.0)),
            VcInfo::new(1, VcKind::thread_private(1), MissCurve::flat(10.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 1000.0)]),
            ThreadInfo::new(1, vec![(1, 10.0)]),
        ];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn threads_get_distinct_cores() {
        let p = two_thread_problem();
        let sizes = [4096, 1024];
        let opt = optimistic_place(&p, &sizes, None);
        let cores = place_threads(&p, &sizes, &opt, None, 0.0);
        assert_ne!(cores[0], cores[1]);
    }

    #[test]
    fn thread_lands_near_its_data() {
        let p = two_thread_problem();
        let sizes = [4096, 1024];
        let opt = optimistic_place(&p, &sizes, None);
        let cores = place_threads(&p, &sizes, &opt, None, 0.0);
        let c0 = opt.centers[0].unwrap();
        let d = p.params.mesh().hops_to_point(cores[0], c0.x, c0.y);
        assert!(d <= 1.5, "thread 0 is {d} hops from its data center");
    }

    #[test]
    fn intense_thread_picks_first() {
        // Two threads preferring the same tile: the intense one must win it.
        let params = SystemParams::default_for_mesh(Mesh::new(3, 3), 1024);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(1000.0)),
            VcInfo::new(1, VcKind::thread_private(1), MissCurve::flat(999.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 10.0)]),   // light
            ThreadInfo::new(1, vec![(1, 1000.0)]), // intense
        ];
        let p = PlacementProblem::new(params, vcs, threads).unwrap();
        // Force both VC centers to the same point by placing them with equal
        // sizes on an empty tally — then check ordering via the assignment.
        let opt = OptimisticPlacement {
            centers: vec![
                Some(Point { x: 1.0, y: 1.0 }),
                Some(Point { x: 1.0, y: 1.0 }),
            ],
            claimed: vec![0.0; 9],
        };
        let cores = place_threads(&p, &[1024, 1024], &opt, None, 0.0);
        // Tile (1,1) is tile 4 on a 3x3 mesh; the intense thread gets it.
        assert_eq!(cores[1], TileId(4));
        assert_ne!(cores[0], TileId(4));
    }

    #[test]
    fn dataless_threads_fall_back_to_center() {
        let params = SystemParams::default_for_mesh(Mesh::new(3, 3), 1024);
        let vcs = vec![VcInfo::new(
            0,
            VcKind::thread_private(0),
            MissCurve::flat(5.0),
        )];
        let threads = vec![ThreadInfo::new(0, vec![(0, 5.0)])];
        let p = PlacementProblem::new(params, vcs, threads).unwrap();
        let opt = OptimisticPlacement {
            centers: vec![None],
            claimed: vec![0.0; 9],
        };
        let cores = place_threads(&p, &[0], &opt, None, 0.0);
        // Falls back to the chip center tile.
        assert_eq!(cores[0], TileId(4));
    }

    #[test]
    fn shared_vc_clusters_its_threads() {
        // Four threads of one process all accessing one shared VC: they end
        // up packed around its center.
        let params = SystemParams::default_for_mesh(Mesh::new(4, 4), 1024);
        let vcs = vec![VcInfo::new(
            0,
            VcKind::process_shared(0),
            MissCurve::flat(100.0),
        )];
        let threads = (0..4)
            .map(|i| ThreadInfo::new(i, vec![(0, 100.0)]))
            .collect::<Vec<_>>();
        let p = PlacementProblem::new(params, vcs, threads).unwrap();
        let sizes = [2048];
        let opt = optimistic_place(&p, &sizes, None);
        let cores = place_threads(&p, &sizes, &opt, None, 0.0);
        let center = opt.centers[0].unwrap();
        for (i, &c) in cores.iter().enumerate() {
            let d = p.params.mesh().hops_to_point(c, center.x, center.y);
            assert!(d <= 2.5, "thread {i} is {d} hops from the shared center");
        }
    }

    #[test]
    #[should_panic(expected = "no free tile")]
    fn overfull_chip_panics() {
        let mesh = Mesh::new(1, 1);
        nearest_free_tile(&mesh, Point { x: 0.0, y: 0.0 }, &[true], None, 0.0);
    }

    #[test]
    fn stability_bias_prevents_near_tie_migration() {
        // A thread at tile 1 whose data center drifted to tile 0 by a
        // fraction of a hop: with bias it stays, without it migrates.
        let mesh = Mesh::new(2, 1);
        let taken = vec![false, false];
        let p = Point { x: 0.4, y: 0.0 };
        let stay = nearest_free_tile(&mesh, p, &taken, Some(TileId(1)), 1.0);
        assert_eq!(stay, TileId(1));
        let go = nearest_free_tile(&mesh, p, &taken, Some(TileId(1)), 0.0);
        assert_eq!(go, TileId(0));
    }

    #[test]
    fn stability_bias_does_not_block_big_wins() {
        // Data far away: even with the bias the thread migrates.
        let mesh = Mesh::new(4, 1);
        let taken = vec![false; 4];
        let p = Point { x: 3.0, y: 0.0 };
        let t = nearest_free_tile(&mesh, p, &taken, Some(TileId(0)), 1.0);
        assert_eq!(t, TileId(3));
    }
}

//! Refined data placement: greedy claims plus trades (§IV-F, Fig. 8).
//!
//! The greedy pass is Jigsaw's placer: VCs round-robin, each claiming
//! capacity in the cheapest (most access-local) bank with free space. It is
//! "a reasonable starting point, but produces sub-optimal placements" —
//! CDCS then lets VCs *trade* capacity: each VC spirals outward from its
//! data's center of mass and offers swaps that lower total latency (Eq. 2);
//! only net-beneficial trades execute, and each VC trades once.

use super::{vc_accessor_center, PlanScratch};
use crate::{Placement, PlacementProblem};
use cdcs_mesh::geometry::tiles_by_distance_from_point_into;
use cdcs_mesh::TileId;

/// Jigsaw-style greedy placement: given VC sizes and thread locations, VCs
/// take turns claiming `chunk`-line pieces of the cheapest bank that still
/// has free capacity. Returns a feasible [`Placement`].
///
/// One-shot wrapper over [`greedy_place_with`] (allocates a fresh scratch).
///
/// VCs take turns in id order. (The paper does not fix an order; chunked
/// round-robin makes the result insensitive to it, and id order — unlike
/// e.g. access-count order — is stable across epochs, avoiding gratuitous
/// placement churn from measurement noise.)
///
/// # Panics
///
/// Panics if `Σ sizes` exceeds total LLC capacity, if `chunk` is zero, or if
/// `sizes`/`thread_cores` lengths are inconsistent with the problem.
pub fn greedy_place(
    problem: &PlacementProblem,
    sizes: &[u64],
    thread_cores: &[TileId],
    chunk: u64,
) -> Placement {
    greedy_place_with(problem, sizes, thread_cores, chunk, &mut PlanScratch::new())
}

/// [`greedy_place`] against caller-owned buffers: recomputes the scratch's
/// cost matrix for `thread_cores`, sorts each VC's bank order on the
/// flattened rows, and runs the claim loop without allocating anything but
/// the returned [`Placement`].
///
/// # Panics
///
/// As [`greedy_place`].
pub fn greedy_place_with(
    problem: &PlacementProblem,
    sizes: &[u64],
    thread_cores: &[TileId],
    chunk: u64,
    scratch: &mut PlanScratch,
) -> Placement {
    let mut placement = Placement::default();
    greedy_place_into(problem, sizes, thread_cores, chunk, scratch, &mut placement);
    placement
}

/// [`greedy_place_with`] writing into a caller-pooled output buffer:
/// `out` is [`Placement::reset`] and refilled, so a long-lived buffer makes
/// the whole pass — including plan output — allocation-free once warm
/// (pinned by `crates/core/tests/alloc_free.rs`).
///
/// # Panics
///
/// As [`greedy_place`].
// lint: zero-alloc
pub fn greedy_place_into(
    problem: &PlacementProblem,
    sizes: &[u64],
    thread_cores: &[TileId],
    chunk: u64,
    scratch: &mut PlanScratch,
    out: &mut Placement,
) {
    assert!(chunk > 0, "chunk must be non-zero");
    assert_eq!(sizes.len(), problem.vcs.len(), "one size per VC");
    assert_eq!(
        thread_cores.len(),
        problem.threads.len(),
        "one core per thread"
    );
    let banks = problem.params.num_banks();
    let num_vcs = problem.vcs.len();
    let total: u64 = sizes.iter().sum();
    assert!(
        total <= problem.params.bank_lines * banks as u64,
        "sizes exceed LLC capacity"
    );

    scratch.compute_cost_matrix(problem, thread_cores);

    // Cheapest-first bank order per VC (static: costs depend only on thread
    // placement), sorted on the precomputed rows — the comparator is a
    // total order (cost, then bank id), so the in-place unstable sort gives
    // the same permutation the definitional stable sort over per-pair cost
    // evaluations would. Dataless VCs keep an unsorted row; the claim loop
    // never reads it.
    scratch.bank_order.clear();
    scratch.bank_order.resize(num_vcs * banks, 0);
    for (d, &size) in sizes.iter().enumerate() {
        let row = &mut scratch.bank_order[d * banks..(d + 1) * banks];
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = b as u32;
        }
        if size == 0 {
            continue;
        }
        let cost = &scratch.cost[d * banks..(d + 1) * banks];
        row.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (cost[a as usize], cost[b as usize]);
            ca.partial_cmp(&cb)
                .expect("costs are finite")
                .then(a.cmp(&b))
        });
    }

    scratch.need.clear();
    scratch.need.extend_from_slice(sizes);
    scratch.cursor.clear();
    scratch.cursor.resize(num_vcs, 0);
    scratch.free.clear();
    scratch.free.resize(banks, problem.params.bank_lines);

    out.reset(problem.threads.len(), num_vcs, banks);
    out.thread_cores.copy_from_slice(thread_cores);

    loop {
        let mut progressed = false;
        for d in 0..num_vcs {
            if scratch.need[d] == 0 {
                continue;
            }
            let order = &scratch.bank_order[d * banks..(d + 1) * banks];
            // Advance this VC's cursor past full banks (monotone: banks
            // never regain capacity during the greedy pass).
            while scratch.cursor[d] < banks && scratch.free[order[scratch.cursor[d]] as usize] == 0
            {
                scratch.cursor[d] += 1;
            }
            let b = order[scratch.cursor[d]] as usize;
            let take = chunk.min(scratch.need[d]).min(scratch.free[b]);
            out[(d, b)] += take;
            scratch.free[b] -= take;
            scratch.need[d] -= take;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}
// lint: end-zero-alloc

/// The trade search (§IV-F): every VC, once, spirals outward from its data's
/// center of mass, collecting "desirable" banks (where it has unclaimed
/// room) and trying to move its far data into closer desirable banks — into
/// free space if available, else by swapping capacity with the VC occupying
/// it. Only trades with negative net latency change (Eq. 2) execute.
///
/// One-shot wrapper over [`trade_refine_with`] (allocates a fresh scratch).
///
/// Returns the number of executed moves/trades.
pub fn trade_refine(problem: &PlacementProblem, placement: &mut Placement) -> usize {
    trade_refine_with(problem, placement, &mut PlanScratch::new())
}

/// [`trade_refine`] against caller-owned buffers: the per-`(vc, bank)` cost
/// matrix, free-space tally, VC totals, spiral order and desirable list all
/// live in `scratch`, so steady-state epochs run the search without heap
/// traffic.
// lint: zero-alloc
pub fn trade_refine_with(
    problem: &PlacementProblem,
    placement: &mut Placement,
    scratch: &mut PlanScratch,
) -> usize {
    let mesh = &problem.params.mesh();
    let banks = problem.params.num_banks();
    let bank_lines = problem.params.bank_lines;
    let num_vcs = problem.vcs.len();

    // Per-(vc, bank) placement cost per line; reused many times below.
    let cores = std::mem::take(&mut placement.thread_cores);
    scratch.compute_cost_matrix(problem, &cores);

    scratch.free.clear();
    scratch
        .free
        .extend((0..banks).map(|b| bank_lines - placement.bank_used(b)));
    // VC totals are invariant under trades (every move/swap conserves each
    // VC's line count), so one pass up front replaces the O(banks) sums the
    // inner loops would otherwise recompute per candidate.
    scratch.vc_totals.clear();
    scratch
        .vc_totals
        .extend((0..num_vcs).map(|d| placement.vc_total(d as u32)));

    let mut trades = 0usize;

    for d in 0..num_vcs {
        let s_d = scratch.vc_totals[d];
        if s_d == 0 {
            continue;
        }
        // Spiral center: the access-weighted center of the VC's accessor
        // threads — the point its data ideally sits at. (Spiraling from the
        // data's own center of mass would see the data as already central;
        // the accessor center is what "closer" means in Eq. 2.) Dataless or
        // accessor-less VCs fall back to their data's center of mass,
        // accumulated bank-ascending exactly like
        // `geometry::center_of_mass` over `vc_banks`.
        let com = match vc_accessor_center(problem, &cores, d as u32) {
            Some(c) => c,
            None => {
                let total = s_d as f64;
                let (mut x, mut y) = (0.0, 0.0);
                for (b, &lines) in placement.vc_row(d).iter().enumerate() {
                    if lines > 0 {
                        let c = mesh.coord(TileId(b as u16));
                        x += c.x as f64 * lines as f64;
                        y += c.y as f64 * lines as f64;
                    }
                }
                cdcs_mesh::geometry::Point {
                    x: x / total,
                    y: y / total,
                }
            }
        };

        let mut remaining_data: usize = placement.vc_row(d).iter().filter(|&&l| l > 0).count();
        tiles_by_distance_from_point_into(mesh, com, &mut scratch.spiral_tmp);
        scratch.desirable.clear();
        for i in 0..scratch.spiral_tmp.len() {
            let t = scratch.spiral_tmp[i];
            if remaining_data == 0 {
                break; // seen all of this VC's data
            }
            let b = t.index();
            let had_data_here = placement[(d, b)] > 0;
            // Try to move data at b into closer desirable banks.
            if had_data_here {
                remaining_data -= 1;
                let cost_d = &scratch.cost[d * banks..(d + 1) * banks];
                for di in 0..scratch.desirable.len() {
                    let b2 = scratch.desirable[di];
                    if placement[(d, b)] == 0 {
                        break;
                    }
                    if b2 == b {
                        continue;
                    }
                    let gain_per_line = (cost_d[b2] - cost_d[b]) / s_d as f64;
                    if gain_per_line >= -1e-12 {
                        continue; // not closer in access-weighted terms
                    }
                    // 1) Move into free space.
                    let k_free = placement[(d, b)].min(scratch.free[b2]);
                    if k_free > 0 {
                        placement[(d, b)] -= k_free;
                        placement[(d, b2)] += k_free;
                        scratch.free[b2] -= k_free;
                        scratch.free[b] += k_free;
                        trades += 1;
                    }
                    // 2) Trade with occupants of b2.
                    for d2 in 0..num_vcs {
                        if d2 == d || placement[(d, b)] == 0 {
                            continue;
                        }
                        let avail = placement[(d2, b2)];
                        if avail == 0 {
                            continue;
                        }
                        let s_d2 = scratch.vc_totals[d2];
                        if s_d2 == 0 {
                            continue;
                        }
                        let cost_d2 = &scratch.cost[d2 * banks..(d2 + 1) * banks];
                        let k = placement[(d, b)].min(avail);
                        let delta1 = k as f64 * (cost_d[b2] - cost_d[b]) / s_d as f64;
                        let delta2 = k as f64 * (cost_d2[b] - cost_d2[b2]) / s_d2 as f64;
                        if delta1 + delta2 < -1e-9 {
                            placement[(d, b)] -= k;
                            placement[(d, b2)] += k;
                            placement[(d2, b2)] -= k;
                            placement[(d2, b)] += k;
                            trades += 1;
                        }
                    }
                }
            }
            // Add b to the desirable list if this VC could hold more here.
            if placement[(d, b)] < bank_lines {
                scratch.desirable.push(b);
            }
        }
    }
    placement.thread_cores = cores;
    trades
}
// lint: end-zero-alloc

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::on_chip_latency;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;
    use cdcs_mesh::Mesh;

    fn problem(n_threads: usize, mesh: Mesh) -> PlacementProblem {
        let params = SystemParams::default_for_mesh(mesh, 1024);
        let vcs = (0..n_threads)
            .map(|i| {
                VcInfo::new(
                    i as u32,
                    VcKind::thread_private(i as u32),
                    MissCurve::flat(100.0),
                )
            })
            .collect();
        let threads = (0..n_threads)
            .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 100.0)]))
            .collect();
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn greedy_places_local_first() {
        let p = problem(2, Mesh::new(2, 2));
        let cores = vec![TileId(0), TileId(3)];
        let placement = greedy_place(&p, &[512, 512], &cores, 256);
        // Each VC fits in its accessor's local bank.
        assert_eq!(placement[(0, 0)], 512);
        assert_eq!(placement[(1, 3)], 512);
        placement.check_feasible(&p).unwrap();
    }

    #[test]
    fn greedy_respects_capacity_and_spills_nearby() {
        let p = problem(1, Mesh::new(2, 2));
        let cores = vec![TileId(0)];
        // Needs 2.5 banks.
        let placement = greedy_place(&p, &[2560], &cores, 256);
        placement.check_feasible(&p).unwrap();
        assert_eq!(placement.vc_total(0), 2560);
        assert_eq!(placement[(0, 0)], 1024, "local bank filled first");
        // Remainder in 1-hop banks (1 and 2), not the 2-hop bank 3.
        assert_eq!(placement[(0, 3)], 0);
    }

    #[test]
    fn greedy_contention_splits_between_threads() {
        // Two intense threads on adjacent tiles, each needing a full bank:
        // both get their local bank.
        let p = problem(2, Mesh::new(2, 1));
        let cores = vec![TileId(0), TileId(1)];
        let placement = greedy_place(&p, &[1024, 1024], &cores, 256);
        assert_eq!(placement[(0, 0)], 1024);
        assert_eq!(placement[(1, 1)], 1024);
    }

    #[test]
    fn trade_improves_crossed_placement() {
        // Hand-build a pathological placement: each VC's data in the
        // *other* thread's local bank. The trade pass must uncross it.
        let p = problem(2, Mesh::new(2, 1));
        let cores = vec![TileId(0), TileId(1)];
        let mut placement = Placement::empty(2, 2, 2);
        placement.thread_cores = cores;
        placement[(0, 1)] = 1024; // thread 0's data at bank 1
        placement[(1, 0)] = 1024; // thread 1's data at bank 0
        let before = on_chip_latency(&p, &placement);
        let trades = trade_refine(&p, &mut placement);
        let after = on_chip_latency(&p, &placement);
        assert!(trades > 0, "no trades executed");
        assert!(
            after < before,
            "latency did not improve: {before} -> {after}"
        );
        assert_eq!(placement[(0, 0)], 1024);
        assert_eq!(placement[(1, 1)], 1024);
        placement.check_feasible(&p).unwrap();
    }

    #[test]
    fn trade_uses_free_space_without_swapping() {
        let p = problem(1, Mesh::new(2, 1));
        let mut placement = Placement::empty(1, 1, 2);
        placement.thread_cores = vec![TileId(0)];
        placement[(0, 1)] = 512; // data 1 hop away, bank 0 free
        let trades = trade_refine(&p, &mut placement);
        assert!(trades > 0);
        assert_eq!(
            placement[(0, 0)],
            512,
            "data must move into free local bank"
        );
    }

    #[test]
    fn trade_never_worsens_latency() {
        // Property-style check over a few seeds: trades are monotone
        // improvements of Eq. 2.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4;
            let p = problem(n, Mesh::new(3, 3));
            let mut placement = Placement::empty(n, n, 9);
            // Random distinct cores.
            let mut tiles: Vec<u16> = (0..9).collect();
            for i in 0..n {
                let j = rng.gen_range(i..tiles.len());
                tiles.swap(i, j);
                placement.thread_cores[i] = TileId(tiles[i]);
            }
            // Random feasible allocation.
            let mut free = [1024u64; 9];
            for d in 0..n {
                let mut need = 1024u64;
                while need > 0 {
                    let b = rng.gen_range(0..9usize);
                    if free[b] == 0 {
                        continue;
                    }
                    let k = need.min(free[b]).min(256);
                    placement[(d, b)] += k;
                    free[b] -= k;
                    need -= k;
                }
            }
            let before = on_chip_latency(&p, &placement);
            trade_refine(&p, &mut placement);
            let after = on_chip_latency(&p, &placement);
            assert!(after <= before + 1e-6, "seed {seed}: {before} -> {after}");
            placement.check_feasible(&p).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "exceed LLC capacity")]
    fn oversized_request_panics() {
        let p = problem(1, Mesh::new(2, 1));
        greedy_place(&p, &[4096], &[TileId(0)], 256);
    }

    #[test]
    fn zero_size_vcs_are_skipped() {
        let p = problem(2, Mesh::new(2, 1));
        let placement = greedy_place(&p, &[0, 512], &[TileId(0), TileId(1)], 256);
        assert_eq!(placement.vc_total(0), 0);
        assert_eq!(placement.vc_total(1), 512);
    }
}

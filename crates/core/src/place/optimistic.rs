//! Optimistic contention-aware VC placement (§IV-D, Figs. 6–7).
//!
//! Before thread locations are known, CDCS sketches a data placement that
//! avoids putting large VCs close together. VCs are placed largest-first;
//! each is "compactly placed" around the candidate tile with the least
//! *claimed capacity* under its footprint. Capacity constraints are relaxed
//! (claims may exceed a bank) — the point is a rough contention map, not a
//! feasible allocation; feasibility comes later in refined placement.
//!
//! Two details the paper leaves open are pinned down for stability (see
//! `DESIGN.md` §6): the largest-first order quantizes sizes to half-bank
//! buckets (so monitor noise cannot permute near-equal VCs and reshuffle the
//! whole chip), and contention ties between candidate tiles break toward the
//! VC's current accessors rather than by tile id (given equal contention,
//! staying near the accessing threads is strictly better).

use super::{vc_accessor_center, PlanScratch};
use crate::PlacementProblem;
use cdcs_mesh::geometry::Point;
use cdcs_mesh::{TileId, Topology};

/// Result of optimistic placement: a rough center for every VC with data,
/// plus the per-bank claimed-capacity tally (in bank units).
///
/// `Default` is an empty placement — a pooled output buffer for
/// [`optimistic_place_into`], resized on use.
#[derive(Debug, Clone, Default)]
pub struct OptimisticPlacement {
    /// Per-VC center of mass of the sketched placement; `None` for VCs with
    /// no allocation.
    pub centers: Vec<Option<Point>>,
    /// Claimed capacity per bank, in banks (can exceed 1.0 — constraints are
    /// relaxed at this step).
    pub claimed: Vec<f64>,
}

/// Sums `claimed[b] * coverage(b)` over the compact placement of
/// `size_banks` of capacity along `spiral` — the contention of centering a
/// VC there. Same walk as the definitional "build the coverage list, then
/// dot it with `claimed`", without materializing the list.
#[inline]
fn compact_contention(spiral: &[TileId], claimed: &[f64], size_banks: f64) -> f64 {
    let mut remaining = size_banks;
    let mut contention = 0.0;
    for t in spiral {
        if remaining <= 0.0 {
            break;
        }
        let take = remaining.min(1.0);
        contention += claimed[t.index()] * take;
        remaining -= take;
    }
    contention
}

/// Runs optimistic contention-aware placement for the given VC sizes (in
/// lines). Larger VCs are placed first ("larger VCs can cause more
/// contention, while small VCs can fit in a fraction of a bank").
///
/// One-shot wrapper over [`optimistic_place_with`] (allocates a fresh
/// scratch).
///
/// `current_cores`, when given, anchors contention ties toward each VC's
/// current accessors (see the module docs); pass `None` for the id-order
/// tie-break.
///
/// # Panics
///
/// Panics if `sizes.len() != problem.vcs.len()`, or if `current_cores` is
/// present with the wrong length.
pub fn optimistic_place(
    problem: &PlacementProblem,
    sizes: &[u64],
    current_cores: Option<&[TileId]>,
) -> OptimisticPlacement {
    optimistic_place_with(problem, sizes, current_cores, &mut PlanScratch::new())
}

/// [`optimistic_place`] against caller-owned buffers. The contention sweep
/// evaluates a compact placement centered at every tile for every VC; the
/// tile-centered spiral orders it walks are cached in the scratch across
/// epochs (they depend only on the mesh), turning the sweep's inner loop
/// into pure table reads.
///
/// # Panics
///
/// As [`optimistic_place`].
pub fn optimistic_place_with(
    problem: &PlacementProblem,
    sizes: &[u64],
    current_cores: Option<&[TileId]>,
    scratch: &mut PlanScratch,
) -> OptimisticPlacement {
    let mut out = OptimisticPlacement::default();
    optimistic_place_into(problem, sizes, current_cores, scratch, &mut out);
    out
}

/// [`optimistic_place_with`] writing into a caller-pooled output (the
/// planner keeps one [`OptimisticPlacement`] buffer in its scratch, so
/// steady-state reconfigurations emit the sketch without allocating).
///
/// # Panics
///
/// As [`optimistic_place`].
// lint: zero-alloc
pub fn optimistic_place_into(
    problem: &PlacementProblem,
    sizes: &[u64],
    current_cores: Option<&[TileId]>,
    scratch: &mut PlanScratch,
    out: &mut OptimisticPlacement,
) {
    assert_eq!(sizes.len(), problem.vcs.len(), "one size per VC");
    if let Some(cores) = current_cores {
        assert_eq!(cores.len(), problem.threads.len(), "one core per thread");
    }
    let mesh = &problem.params.mesh();
    let n = mesh.num_tiles();
    let claimed = &mut out.claimed;
    claimed.clear();
    claimed.resize(n, 0.0f64);
    let centers = &mut out.centers;
    centers.clear();
    centers.resize(sizes.len(), None);
    scratch.spiral_table(mesh);

    // Largest-first, with sizes quantized to half-bank buckets so that
    // measurement noise between near-equal VCs cannot permute the order.
    // (Key is a total order — bucket desc, id asc — so the unstable sort is
    // deterministic.)
    let half_bank = (problem.params.bank_lines / 2).max(1);
    scratch.order.clear();
    scratch.order.extend(0..sizes.len());
    scratch
        .order
        .sort_unstable_by_key(|&d| (std::cmp::Reverse(sizes[d] / half_bank), d));
    let spiral = scratch.spiral.as_ref().expect("spiral table ensured above");

    for oi in 0..scratch.order.len() {
        let d = scratch.order[oi];
        if sizes[d] == 0 {
            continue;
        }
        let size_banks = sizes[d] as f64 / problem.params.bank_lines as f64;
        let anchor = current_cores.and_then(|cores| vc_accessor_center(problem, cores, d as u32));
        // Evaluate contention centering the VC at every tile; keep the least
        // contended, breaking near-ties (within 5% of a bank) toward the
        // anchor, then by tile id.
        let mut best_tile = TileId(0);
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        // Iterate tile ids directly: `Topology::tiles()` collects a fresh
        // Vec, which would put one allocation per VC in the hottest sweep.
        for t in (0..n as u16).map(TileId) {
            let contention = compact_contention(spiral.from_tile(t), claimed, size_banks);
            let quantized = (contention / 0.05).round() * 0.05;
            let anchor_dist = anchor.map_or(0.0, |a| {
                let c = mesh.coord(t);
                a.manhattan(Point {
                    x: f64::from(c.x),
                    y: f64::from(c.y),
                })
            });
            if (quantized, anchor_dist) < best_key {
                best_key = (quantized, anchor_dist);
                best_tile = t;
            }
        }
        let c = mesh.coord(best_tile);
        let center = Point {
            x: f64::from(c.x),
            y: f64::from(c.y),
        };
        let mut remaining = size_banks;
        for t in spiral.from_tile(best_tile) {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(1.0);
            claimed[t.index()] += take;
            remaining -= take;
        }
        centers[d] = Some(center);
    }
}
// lint: end-zero-alloc

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;
    use cdcs_mesh::Mesh;

    fn problem_with_sizes(mesh: Mesh, n_vcs: usize) -> PlacementProblem {
        let params = SystemParams::default_for_mesh(mesh, 1024);
        let vcs = (0..n_vcs)
            .map(|i| {
                VcInfo::new(
                    i as u32,
                    VcKind::thread_private(i as u32),
                    MissCurve::flat(100.0),
                )
            })
            .collect();
        let threads = (0..n_vcs)
            .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 100.0)]))
            .collect();
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn first_large_vc_gets_a_center() {
        let p = problem_with_sizes(Mesh::new(4, 4), 1);
        let out = optimistic_place(&p, &[4096], None);
        assert!(out.centers[0].is_some());
        let total_claimed: f64 = out.claimed.iter().sum();
        assert!((total_claimed - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_large_vcs_repel_each_other() {
        let p = problem_with_sizes(Mesh::new(4, 4), 2);
        let out = optimistic_place(&p, &[4096, 4096], None);
        let a = out.centers[0].unwrap();
        let b = out.centers[1].unwrap();
        assert!(a.manhattan(b) >= 2.0, "centers {a:?} and {b:?} too close");
    }

    #[test]
    fn many_vcs_spread_claims_evenly() {
        let p = problem_with_sizes(Mesh::new(4, 4), 16);
        let out = optimistic_place(&p, &[1024; 16], None);
        for (b, &c) in out.claimed.iter().enumerate() {
            assert!(c <= 2.0 + 1e-9, "bank {b} claimed {c}");
        }
        let total: f64 = out.claimed.iter().sum();
        assert!((total - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_size_vcs_have_no_center() {
        let p = problem_with_sizes(Mesh::new(2, 2), 2);
        let out = optimistic_place(&p, &[1024, 0], None);
        assert!(out.centers[0].is_some());
        assert!(out.centers[1].is_none());
    }

    #[test]
    fn larger_vcs_placed_first_claim_the_center() {
        let p = problem_with_sizes(Mesh::new(5, 5), 2);
        let out = optimistic_place(&p, &[9 * 1024, 1024], None);
        let small_center = out.centers[1].unwrap();
        let small_tile = cdcs_mesh::geometry::nearest_tile(p.params.mesh(), small_center);
        assert!(
            out.claimed[small_tile.index()] <= 1.0 + 1e-9,
            "small VC landed on a contended bank"
        );
    }

    #[test]
    fn anchored_ties_follow_accessors() {
        // An empty chip: contention is zero everywhere; with an anchor the
        // VC centers on its accessor's tile rather than tile 0.
        let p = problem_with_sizes(Mesh::new(4, 4), 1);
        let cores = vec![TileId(10)];
        let out = optimistic_place(&p, &[1024], Some(&cores));
        let c = out.centers[0].unwrap();
        assert_eq!(
            cdcs_mesh::geometry::nearest_tile(p.params.mesh(), c),
            TileId(10)
        );
    }

    #[test]
    fn near_equal_sizes_keep_id_order() {
        // Sizes within the same half-bank bucket must not permute the
        // placement order: the chosen centers stay identical when sizes
        // jitter by a few lines (monitor noise).
        let p = problem_with_sizes(Mesh::new(4, 4), 3);
        let a = optimistic_place(&p, &[4000, 3990, 3980], None);
        let b = optimistic_place(&p, &[3980, 4000, 3990], None);
        assert_eq!(a.centers, b.centers, "noise permuted the placement");
    }

    #[test]
    #[should_panic(expected = "one size per VC")]
    fn size_count_mismatch_panics() {
        let p = problem_with_sizes(Mesh::new(2, 2), 2);
        optimistic_place(&p, &[1024], None);
    }
}

//! Data and thread placement (paper §IV-D/E/F).
//!
//! The three CDCS placement steps disentangle the circular dependency
//! between thread and data placement (§IV-B):
//!
//! 1. [`optimistic_place`] sketches where VCs should live to avoid capacity
//!    contention, before thread locations are known (§IV-D, Figs. 6–7).
//! 2. [`place_threads`] puts each thread at the center of mass of the data
//!    it accesses, most-constrained threads first (§IV-E).
//! 3. [`greedy_place`] + [`trade_refine`] produce the final data placement:
//!    a Jigsaw-style greedy pass, then the bounded outward-spiral trade
//!    search (§IV-F, Fig. 8).
//!
//! [`alternatives`] holds the expensive comparators of §VI-C (exhaustive,
//! simulated annealing, recursive bisection).

pub mod alternatives;
mod optimistic;
mod refine;
mod thread;

pub use optimistic::{optimistic_place, OptimisticPlacement};
pub use refine::{greedy_place, trade_refine};
pub use thread::place_threads;

use crate::PlacementProblem;
use cdcs_mesh::geometry::{center_of_mass, Point};
use cdcs_mesh::TileId;

/// Access-weighted cost of placing one line of `vc`'s data in `bank`:
/// `Σ_t a_{t,d} · round_trip(c_t, bank)` — the paper's `D(VC, b)` scaled by
/// the VC's total accesses. Used by greedy placement and the trade search.
pub(crate) fn vc_bank_cost(
    problem: &PlacementProblem,
    thread_cores: &[TileId],
    vc: u32,
    bank: usize,
) -> f64 {
    problem
        .vc_accessors(vc)
        .into_iter()
        .map(|(t, rate)| {
            rate * problem.params.net_round_trip(thread_cores[t as usize], TileId(bank as u16))
        })
        .sum()
}

/// Center of mass of the threads accessing `vc`, weighted by access rate.
/// Returns `None` if nothing accesses the VC.
pub(crate) fn vc_accessor_center(
    problem: &PlacementProblem,
    thread_cores: &[TileId],
    vc: u32,
) -> Option<Point> {
    let weighted: Vec<(TileId, f64)> = problem
        .vc_accessors(vc)
        .into_iter()
        .map(|(t, rate)| (thread_cores[t as usize], rate))
        .collect();
    center_of_mass(&problem.params.mesh, &weighted)
}

//! Data and thread placement (paper §IV-D/E/F).
//!
//! The three CDCS placement steps disentangle the circular dependency
//! between thread and data placement (§IV-B):
//!
//! 1. [`optimistic_place`] sketches where VCs should live to avoid capacity
//!    contention, before thread locations are known (§IV-D, Figs. 6–7).
//! 2. [`place_threads`] puts each thread at the center of mass of the data
//!    it accesses, most-constrained threads first (§IV-E).
//! 3. [`greedy_place`] + [`trade_refine`] produce the final data placement:
//!    a Jigsaw-style greedy pass, then the bounded outward-spiral trade
//!    search (§IV-F, Fig. 8).
//!
//! # Hot-path structure
//!
//! The planners run every epoch (the paper's runtime reconfigures every
//! 25 ms), so the per-plan cost must not be dominated by allocator traffic.
//! All placement steps are therefore written against [`PlanScratch`]: a
//! bundle of reusable buffers holding the flattened `(vc × bank)` cost
//! matrix, greedy working state, cached per-tile spiral orders, and sort
//! keys. The public one-shot entry points (`greedy_place`, `trade_refine`,
//! …) build a fresh scratch internally; the `*_with` variants accept a
//! caller-owned scratch so a long-running simulation performs zero
//! steady-state allocations inside cost evaluation. Both paths produce
//! bit-identical placements (asserted by `tests/indexed_equivalence.rs`).
//!
//! [`alternatives`] holds the expensive comparators of §VI-C (exhaustive,
//! simulated annealing, recursive bisection).

pub mod alternatives;
mod optimistic;
mod refine;
mod thread;

pub use optimistic::{
    optimistic_place, optimistic_place_into, optimistic_place_with, OptimisticPlacement,
};
pub use refine::{
    greedy_place, greedy_place_into, greedy_place_with, trade_refine, trade_refine_with,
};
pub use thread::{place_threads, place_threads_into, place_threads_with};

use crate::PlacementProblem;
use cdcs_mesh::geometry::{Point, SpiralTable};
use cdcs_mesh::{Mesh, RegionGrid, RegionTables, TileId, Topology};

/// Access-weighted cost of placing one line of `vc`'s data in `bank`:
/// `Σ_t a_{t,d} · round_trip(c_t, bank)` — the paper's `D(VC, b)` scaled by
/// the VC's total accesses. Allocation-free: reads the problem's CSR
/// accessor index and the precomputed round-trip table.
///
/// [`PlanScratch::compute_cost_matrix`] evaluates the whole `(vc × bank)`
/// matrix in one pass; this scalar form serves one-off queries and the
/// equivalence tests.
#[inline]
pub fn vc_bank_cost(
    problem: &PlacementProblem,
    thread_cores: &[TileId],
    vc: u32,
    bank: usize,
) -> f64 {
    let bank = TileId(bank as u16);
    problem
        .vc_accessors(vc)
        .iter()
        .map(|&(t, rate)| {
            rate * problem
                .params
                .net_round_trip(thread_cores[t as usize], bank)
        })
        .sum()
}

/// Center of mass of the threads accessing `vc`, weighted by access rate.
/// Returns `None` if nothing accesses the VC.
///
/// Accumulates in the same order as
/// [`cdcs_mesh::geometry::center_of_mass`] over the accessor list (total
/// weight first, then coordinates), so results match the definitional
/// implementation bit-for-bit without materializing a weighted-tile vector.
pub(crate) fn vc_accessor_center(
    problem: &PlacementProblem,
    thread_cores: &[TileId],
    vc: u32,
) -> Option<Point> {
    let accessors = problem.vc_accessors(vc);
    let mesh = &problem.params.mesh();
    let total: f64 = accessors.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let (mut x, mut y) = (0.0, 0.0);
    for &(t, w) in accessors {
        let c = mesh.coord(thread_cores[t as usize]);
        x += c.x as f64 * w;
        y += c.y as f64 * w;
    }
    Some(Point {
        x: x / total,
        y: y / total,
    })
}

/// Reusable planner buffers: the flattened `(vc × bank)` cost matrix plus
/// every working vector the placement steps need.
///
/// One scratch serves any sequence of problems; buffers grow to the largest
/// problem seen and are reused thereafter (the per-tile spiral table is
/// rebuilt only when the mesh changes). Create once per simulation /
/// experiment and thread it through
/// [`crate::policy::CdcsPlanner::plan_with`] or the `*_with` placement
/// functions.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Flattened cost matrix: `cost[vc * banks + bank]`.
    cost: Vec<f64>,
    /// Bank count the matrix was last computed for.
    banks: usize,
    /// Cached spiral orders from every tile (rebuilt on mesh change).
    spiral: Option<SpiralTable>,
    /// Spiral order from an arbitrary point (trade search).
    pub(crate) spiral_tmp: Vec<TileId>,
    /// Greedy: remaining lines per VC.
    pub(crate) need: Vec<u64>,
    /// Greedy: per-VC position in its bank order.
    pub(crate) cursor: Vec<usize>,
    /// Free lines per bank (greedy and trade search).
    pub(crate) free: Vec<u64>,
    /// Greedy: flattened cheapest-first bank order per VC.
    pub(crate) bank_order: Vec<u32>,
    /// Trade search: total allocated lines per VC.
    pub(crate) vc_totals: Vec<u64>,
    /// Trade search: desirable-bank list for the current VC.
    pub(crate) desirable: Vec<usize>,
    /// Generic index ordering buffer (optimistic + thread placement).
    pub(crate) order: Vec<usize>,
    /// Sort keys paired with `order`.
    pub(crate) keys: Vec<f64>,
    /// Thread placement: preferred point per thread.
    pub(crate) preferred: Vec<Point>,
    /// Thread placement: occupied tiles.
    pub(crate) taken: Vec<bool>,
    /// Capacity-allocation scratch (total-latency curves, hulls, Peekahead
    /// working state, chip-center distance cache).
    pub(crate) alloc: crate::alloc::AllocScratch,
    /// Pooled per-VC size output (`CdcsPlanner::plan_into` step 1).
    pub(crate) sizes: Vec<u64>,
    /// Pooled per-thread core output (`CdcsPlanner::plan_into` step 3).
    pub(crate) cores: Vec<TileId>,
    /// Pooled optimistic-placement output (`CdcsPlanner::plan_into`
    /// step 2).
    pub(crate) optimistic: optimistic::OptimisticPlacement,
    /// Hierarchical-planner working state (region grid, region tables,
    /// share matrix, warm-start signatures). Untouched by the flat path.
    pub(crate) hier: HierScratch,
}

/// Working state of the hierarchical planner
/// ([`crate::policy::HierarchicalPlanner`]): the cached region partition and
/// its aggregated distance tables, the `vc × region` share matrix, and the
/// per-VC demand signatures that drive incremental warm starts.
///
/// Everything here is pooled: the grid/tables rebuild only when the mesh or
/// region side changes, and all vectors grow to the largest problem seen.
/// Crucially, every buffer is linear in `vcs`, `regions`, or `banks` — the
/// hierarchical path never materializes the flat planner's quadratic
/// `vc × bank` cost matrix or the `tiles²` spiral cache (pinned by
/// `crates/core/tests/scratch_growth.rs`).
#[derive(Debug, Default)]
pub(crate) struct HierScratch {
    /// The `(mesh, side)` the grid and tables were last built for.
    pub(crate) grid_key: Option<(Mesh, u16)>,
    /// Region partition of the mesh (valid iff `grid_key` matches).
    pub(crate) grid: Option<RegionGrid>,
    /// Region-aggregated distance tables for `grid`.
    pub(crate) tables: RegionTables,
    /// Share matrix: `share[vc * regions + r]` lines of `vc` assigned to
    /// region `r`.
    pub(crate) share: Vec<u64>,
    /// Free lines per region during assignment.
    pub(crate) region_free: Vec<u64>,
    /// Per-VC scratch: cost of each region.
    pub(crate) region_cost: Vec<f64>,
    /// Per-VC scratch: region ids sorted cheapest-first.
    pub(crate) region_order: Vec<u32>,
    /// Per-region scratch: cost of each region bank for the current VC.
    pub(crate) bank_cost: Vec<f64>,
    /// Per-region scratch: region-bank indices sorted cheapest-first.
    pub(crate) bank_rank: Vec<u32>,
    /// Per-region scratch: the VCs holding shares in the current region.
    pub(crate) region_vcs: Vec<u32>,
    /// VC processing order (descending size).
    pub(crate) vc_order: Vec<u32>,
    /// Per-VC demand signatures of the previous planned epoch
    /// (`SIG_COMPONENTS` floats per VC).
    pub(crate) sig: Vec<f64>,
    /// Signatures of the problem being planned (compared against `sig`).
    pub(crate) sig_next: Vec<f64>,
    /// Whether `sig` describes the previous epoch of the same problem shape.
    pub(crate) sig_valid: bool,
    /// Per-VC change flags of the current warm plan.
    pub(crate) changed: Vec<bool>,
}

impl HierScratch {
    /// Ensures the region grid and tables match `(mesh, side)`, rebuilding
    /// both in place only when the key changes.
    pub(crate) fn ensure_grid(&mut self, problem: &PlacementProblem, side: u16) {
        let mesh = *problem.params.mesh();
        if self.grid_key != Some((mesh, side)) {
            match &mut self.grid {
                Some(grid) => grid.rebuild(mesh, side),
                None => self.grid = Some(RegionGrid::new(mesh, side)),
            }
            let grid = self.grid.as_ref().expect("just ensured");
            self.tables.rebuild(grid, problem.params.noc());
            self.grid_key = Some((mesh, side));
            // A new partition invalidates warm-start history.
            self.sig_valid = false;
        }
    }
}

impl PlanScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        PlanScratch::default()
    }

    /// Recomputes the cost matrix for `thread_cores` in one pass.
    ///
    /// Iterates accessors in CSR order and walks each core's contiguous
    /// round-trip table row, so every `(vc, bank)` cell receives exactly the
    /// additions `vc_bank_cost` would perform, in the same order —
    /// bit-identical values, no per-call allocation once the buffer is warm.
    pub fn compute_cost_matrix(&mut self, problem: &PlacementProblem, thread_cores: &[TileId]) {
        let banks = problem.params.num_banks();
        let num_vcs = problem.vcs.len();
        self.banks = banks;
        self.cost.clear();
        self.cost.resize(num_vcs * banks, 0.0);
        for d in 0..num_vcs {
            let row = &mut self.cost[d * banks..(d + 1) * banks];
            for &(t, rate) in problem.vc_accessors(d as u32) {
                let core = thread_cores[t as usize];
                for (b, slot) in row.iter_mut().enumerate() {
                    *slot += rate * problem.params.net_round_trip(core, TileId(b as u16));
                }
            }
        }
    }

    /// The cost row of one VC (valid after
    /// [`Self::compute_cost_matrix`]).
    #[inline]
    pub fn cost_row(&self, vc: usize) -> &[f64] {
        &self.cost[vc * self.banks..(vc + 1) * self.banks]
    }

    /// Per-tile spiral orders for `mesh`, rebuilding the cache only when the
    /// mesh changed.
    pub(crate) fn spiral_table(&mut self, mesh: &Mesh) -> &SpiralTable {
        let stale = self.spiral.as_ref().is_none_or(|s| s.mesh() != mesh);
        if stale {
            self.spiral = Some(SpiralTable::new(mesh));
        }
        self.spiral.as_ref().expect("just ensured")
    }

    /// Heap bytes held by the buffers that scale as `vcs × banks` (the
    /// flattened cost matrix and the greedy bank orders). The flat planner
    /// sizes these to the full chip; the hierarchical planner leaves them
    /// empty — `crates/core/tests/scratch_growth.rs` asserts both.
    pub fn quadratic_matrix_bytes(&self) -> usize {
        self.cost.capacity() * std::mem::size_of::<f64>()
            + self.bank_order.capacity() * std::mem::size_of::<u32>()
    }

    /// Heap bytes held by the cached per-tile spiral orders (`tiles²`
    /// entries when present). Only the flat planner's optimistic and trade
    /// steps build this cache.
    pub fn spiral_cache_bytes(&self) -> usize {
        self.spiral.as_ref().map_or(0, |s| {
            s.mesh().num_tiles() * s.mesh().num_tiles() * std::mem::size_of::<TileId>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;

    fn problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(3, 3), 1024);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(100.0)),
            VcInfo::new(1, VcKind::process_shared(0), MissCurve::flat(50.0)),
            VcInfo::new(2, VcKind::Global, MissCurve::zero()),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 100.0), (1, 20.0)]),
            ThreadInfo::new(1, vec![(1, 30.0)]),
        ];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn cost_matrix_matches_scalar_costs() {
        let p = problem();
        let cores = vec![TileId(0), TileId(8)];
        let mut scratch = PlanScratch::new();
        scratch.compute_cost_matrix(&p, &cores);
        for d in 0..p.vcs.len() {
            let row = scratch.cost_row(d);
            for (b, &cell) in row.iter().enumerate() {
                assert_eq!(
                    cell,
                    vc_bank_cost(&p, &cores, d as u32, b),
                    "vc {d} bank {b}"
                );
            }
        }
    }

    #[test]
    fn cost_matrix_reuse_is_consistent() {
        let p = problem();
        let mut scratch = PlanScratch::new();
        scratch.compute_cost_matrix(&p, &[TileId(0), TileId(8)]);
        let first: Vec<f64> = scratch.cost_row(0).to_vec();
        // Different cores, then back: identical values again.
        scratch.compute_cost_matrix(&p, &[TileId(4), TileId(2)]);
        scratch.compute_cost_matrix(&p, &[TileId(0), TileId(8)]);
        assert_eq!(scratch.cost_row(0), first.as_slice());
    }

    #[test]
    fn accessor_center_matches_center_of_mass() {
        let p = problem();
        let cores = vec![TileId(1), TileId(7)];
        for d in 0..p.vcs.len() {
            let direct = vc_accessor_center(&p, &cores, d as u32);
            let weighted: Vec<(TileId, f64)> = p
                .vc_accessors(d as u32)
                .iter()
                .map(|&(t, rate)| (cores[t as usize], rate))
                .collect();
            let reference = cdcs_mesh::geometry::center_of_mass(p.params.mesh(), &weighted);
            assert_eq!(direct, reference, "vc {d}");
        }
    }

    #[test]
    fn spiral_table_cache_tracks_mesh_changes() {
        let mut scratch = PlanScratch::new();
        let small = Mesh::new(2, 2);
        let big = Mesh::new(4, 4);
        assert_eq!(scratch.spiral_table(&small).mesh(), &small);
        assert_eq!(scratch.spiral_table(&big).mesh(), &big);
        assert_eq!(scratch.spiral_table(&big).from_tile(TileId(0)).len(), 16);
    }
}

//! Expensive placement comparators (§VI-C).
//!
//! The paper validates CDCS against impractically expensive schemes: ILP
//! data placement (Gurobi), simulated-annealing thread placement (5000
//! rounds), and METIS graph partitioning. We substitute: exhaustive search
//! (exact, feasible only on tiny instances — our stand-in for ILP),
//! simulated annealing, and a recursive-bisection partitioner (stand-in for
//! METIS). See `DESIGN.md` §1.

use crate::cost::on_chip_latency;
use crate::{Placement, PlacementProblem};
use cdcs_mesh::{TileId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exhaustive thread placement: tries every assignment of threads to tiles
/// and returns the cores minimizing on-chip latency (Eq. 2) for the given
/// data placement. Exact but exponential — the ILP-quality reference for
/// tiny instances.
///
/// # Panics
///
/// Panics if the instance is too large (more than `9^threads / unreasonable`
/// work): callers must keep `tiles.pow(threads)` small; we hard-limit to
/// ~10M assignment evaluations.
pub fn exhaustive_thread_placement(
    problem: &PlacementProblem,
    placement: &Placement,
) -> Vec<TileId> {
    let n = problem.params.mesh().num_tiles();
    let t = problem.threads.len();
    let work = (0..t).fold(1u64, |acc, i| acc.saturating_mul((n - i) as u64));
    assert!(
        work <= 10_000_000,
        "instance too large for exhaustive search ({work})"
    );

    let mut best_cores: Vec<TileId> = (0..t as u16).map(TileId).collect();
    let mut best_cost = f64::INFINITY;
    let mut trial = placement.clone();
    let mut current: Vec<u16> = Vec::with_capacity(t);
    let mut used = vec![false; n];

    #[allow(clippy::too_many_arguments)] // explicit DFS state beats a one-off struct here
    fn recurse(
        depth: usize,
        t: usize,
        n: usize,
        used: &mut Vec<bool>,
        current: &mut Vec<u16>,
        problem: &PlacementProblem,
        trial: &mut Placement,
        best_cost: &mut f64,
        best_cores: &mut Vec<TileId>,
    ) {
        if depth == t {
            for (i, &tile) in current.iter().enumerate() {
                trial.thread_cores[i] = TileId(tile);
            }
            let cost = on_chip_latency(problem, trial);
            if cost < *best_cost {
                *best_cost = cost;
                *best_cores = trial.thread_cores.clone();
            }
            return;
        }
        for tile in 0..n as u16 {
            if used[tile as usize] {
                continue;
            }
            used[tile as usize] = true;
            current.push(tile);
            recurse(
                depth + 1,
                t,
                n,
                used,
                current,
                problem,
                trial,
                best_cost,
                best_cores,
            );
            current.pop();
            used[tile as usize] = false;
        }
    }
    recurse(
        0,
        t,
        n,
        &mut used,
        &mut current,
        problem,
        &mut trial,
        &mut best_cost,
        &mut best_cores,
    );
    best_cores
}

/// Simulated-annealing thread placement (the paper's 5000-round SA
/// comparator): random swaps/moves of threads, Metropolis acceptance over
/// Eq. 2. Deterministic for a given seed.
pub fn anneal_thread_placement(
    problem: &PlacementProblem,
    placement: &Placement,
    rounds: usize,
    seed: u64,
) -> Vec<TileId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = problem.params.mesh().num_tiles();
    let t = problem.threads.len();
    let mut trial = placement.clone();
    let mut cost = on_chip_latency(problem, &trial);
    let mut best = trial.thread_cores.clone();
    let mut best_cost = cost;
    let t0 = (cost / (t.max(1) as f64)).max(1.0); // initial temperature

    let mut occupied = vec![usize::MAX; n]; // tile -> thread
    for (i, &c) in trial.thread_cores.iter().enumerate() {
        occupied[c.index()] = i;
    }

    for round in 0..rounds {
        let temp = t0 * (1.0 - round as f64 / rounds as f64).max(1e-3);
        let a = rng.gen_range(0..t);
        let target_tile = rng.gen_range(0..n);
        let old_tile = trial.thread_cores[a];
        if old_tile.index() == target_tile {
            continue;
        }
        let displaced = occupied[target_tile];
        // Apply move (swap if occupied).
        trial.thread_cores[a] = TileId(target_tile as u16);
        if displaced != usize::MAX {
            trial.thread_cores[displaced] = old_tile;
        }
        let new_cost = on_chip_latency(problem, &trial);
        let accept = new_cost < cost || rng.gen::<f64>() < ((cost - new_cost) / temp).exp();
        if accept {
            occupied[old_tile.index()] = if displaced != usize::MAX {
                displaced
            } else {
                usize::MAX
            };
            occupied[target_tile] = a;
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best = trial.thread_cores.clone();
            }
        } else {
            // Revert.
            trial.thread_cores[a] = old_tile;
            if displaced != usize::MAX {
                trial.thread_cores[displaced] = TileId(target_tile as u16);
            }
        }
    }
    best
}

/// Recursive-bisection thread placement (the METIS stand-in): recursively
/// split threads into two halves balancing total access intensity, assigning
/// each half to one half of the mesh. Threads sharing VCs are kept together
/// greedily (heaviest-communication pairs first).
pub fn bisection_thread_placement(problem: &PlacementProblem) -> Vec<TileId> {
    let mesh = &problem.params.mesh();
    let tiles = mesh.tiles();
    let mut cores = vec![TileId(0); problem.threads.len()];
    let threads: Vec<u32> = (0..problem.threads.len() as u32).collect();
    bisect(problem, &threads, &tiles, &mut cores);
    cores
}

fn bisect(problem: &PlacementProblem, threads: &[u32], tiles: &[TileId], cores: &mut [TileId]) {
    if threads.is_empty() || tiles.is_empty() {
        return;
    }
    if threads.len() == 1 || tiles.len() == 1 {
        for (i, &t) in threads.iter().enumerate() {
            cores[t as usize] = tiles[i.min(tiles.len() - 1)];
        }
        return;
    }
    // Split tiles by geometry (left/right or top/bottom, whichever is
    // longer), like recursive coordinate bisection.
    let mesh = &problem.params.mesh();
    let mut sorted_tiles = tiles.to_vec();
    let span_x = tiles.iter().map(|&t| mesh.coord(t).x).max().unwrap()
        - tiles.iter().map(|&t| mesh.coord(t).x).min().unwrap();
    let span_y = tiles.iter().map(|&t| mesh.coord(t).y).max().unwrap()
        - tiles.iter().map(|&t| mesh.coord(t).y).min().unwrap();
    if span_x >= span_y {
        sorted_tiles.sort_by_key(|&t| (mesh.coord(t).x, mesh.coord(t).y));
    } else {
        sorted_tiles.sort_by_key(|&t| (mesh.coord(t).y, mesh.coord(t).x));
    }
    let tile_mid = sorted_tiles.len() / 2;
    let (tiles_a, tiles_b) = sorted_tiles.split_at(tile_mid);

    // Split threads: group threads of the same process (they communicate via
    // shared VCs), then fill halves balancing total intensity proportional
    // to tile split.
    let mut groups: Vec<Vec<u32>> = group_by_shared_vcs(problem, threads);
    groups.sort_by(|a, b| {
        let ia: f64 = a
            .iter()
            .map(|&t| problem.threads[t as usize].total_accesses())
            .sum();
        let ib: f64 = b
            .iter()
            .map(|&t| problem.threads[t as usize].total_accesses())
            .sum();
        ib.partial_cmp(&ia).unwrap()
    });
    let mut half_a: Vec<u32> = Vec::new();
    let mut half_b: Vec<u32> = Vec::new();
    for g in groups {
        // Prefer the half with more room (capacity = tile count minus
        // current threads).
        let room_a = tiles_a.len() as i64 - half_a.len() as i64;
        let room_b = tiles_b.len() as i64 - half_b.len() as i64;
        let target = if g.len() as i64 <= room_a && (room_a >= room_b || g.len() as i64 > room_b) {
            &mut half_a
        } else {
            &mut half_b
        };
        target.extend(g);
    }
    // Rebalance overflow (groups may not fit exactly).
    while half_a.len() > tiles_a.len() {
        let t = half_a.pop().expect("non-empty");
        half_b.push(t);
    }
    while half_b.len() > tiles_b.len() {
        let t = half_b.pop().expect("non-empty");
        half_a.push(t);
    }
    bisect(problem, &half_a, tiles_a, cores);
    bisect(problem, &half_b, tiles_b, cores);
}

/// Groups threads connected through shared VCs (threads of one process end
/// up together).
fn group_by_shared_vcs(problem: &PlacementProblem, threads: &[u32]) -> Vec<Vec<u32>> {
    let mut parent: std::collections::BTreeMap<u32, u32> =
        threads.iter().map(|&t| (t, t)).collect();
    fn find(parent: &mut std::collections::BTreeMap<u32, u32>, x: u32) -> u32 {
        let p = parent[&x];
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    let in_set: std::collections::BTreeSet<u32> = threads.iter().copied().collect();
    for d in 0..problem.vcs.len() as u32 {
        let accessors: Vec<u32> = problem
            .vc_accessors(d)
            .iter()
            .map(|&(t, _)| t)
            .filter(|t| in_set.contains(t))
            .collect();
        for w in accessors.windows(2) {
            let (ra, rb) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for &t in threads {
        let r = find(&mut parent, t);
        groups.entry(r).or_default().push(t);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Simulated-annealing *data* placement refinement (the ILP-data-placement
/// stand-in): random chunk swaps between banks accepted by Metropolis over
/// Eq. 2. Starts from (and never worsens) the given placement.
pub fn anneal_data_placement(
    problem: &PlacementProblem,
    placement: &Placement,
    rounds: usize,
    chunk: u64,
    seed: u64,
) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let banks = problem.params.num_banks();
    let num_vcs = problem.vcs.len();
    let mut trial = placement.clone();
    let mut cost = on_chip_latency(problem, &trial);
    let mut best = trial.clone();
    let mut best_cost = cost;
    if num_vcs == 0 {
        return best;
    }
    let t0 = (cost / banks as f64).max(1.0);
    for round in 0..rounds {
        let temp = t0 * (1.0 - round as f64 / rounds as f64).max(1e-3);
        let d1 = rng.gen_range(0..num_vcs);
        let d2 = rng.gen_range(0..num_vcs);
        let b1 = rng.gen_range(0..banks);
        let b2 = rng.gen_range(0..banks);
        if d1 == d2 || b1 == b2 {
            continue;
        }
        let k = chunk.min(trial[(d1, b1)]).min(trial[(d2, b2)]);
        if k == 0 {
            continue;
        }
        trial[(d1, b1)] -= k;
        trial[(d1, b2)] += k;
        trial[(d2, b2)] -= k;
        trial[(d2, b1)] += k;
        let new_cost = on_chip_latency(problem, &trial);
        if new_cost < cost || rng.gen::<f64>() < ((cost - new_cost) / temp).exp() {
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best = trial.clone();
            }
        } else {
            trial[(d1, b1)] += k;
            trial[(d1, b2)] -= k;
            trial[(d2, b2)] += k;
            trial[(d2, b1)] -= k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;
    use cdcs_mesh::Mesh;

    fn tiny_problem(n: usize, mesh: Mesh) -> PlacementProblem {
        let params = SystemParams::default_for_mesh(mesh, 1024);
        let vcs = (0..n)
            .map(|i| {
                VcInfo::new(
                    i as u32,
                    VcKind::thread_private(i as u32),
                    MissCurve::flat(100.0),
                )
            })
            .collect();
        let threads = (0..n)
            .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 100.0)]))
            .collect();
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    /// Data placement with each VC pinned to one distinct bank.
    fn pinned_placement(n: usize, banks: usize) -> Placement {
        let mut placement = Placement::empty(n, n, banks);
        for d in 0..n {
            placement[(d, banks - 1 - d)] = 1024;
        }
        placement
    }

    #[test]
    fn exhaustive_finds_the_obvious_optimum() {
        let p = tiny_problem(2, Mesh::new(2, 1));
        let mut placement = pinned_placement(2, 2);
        placement.thread_cores = vec![TileId(0), TileId(1)];
        // Data: vc0 at bank 1, vc1 at bank 0 -> optimal cores are crossed.
        let cores = exhaustive_thread_placement(&p, &placement);
        assert_eq!(cores, vec![TileId(1), TileId(0)]);
    }

    #[test]
    fn annealing_matches_exhaustive_on_small_instances() {
        let p = tiny_problem(3, Mesh::new(2, 2));
        let mut placement = pinned_placement(3, 4);
        placement.thread_cores = vec![TileId(0), TileId(1), TileId(2)];
        let exact = exhaustive_thread_placement(&p, &placement);
        let mut exact_placement = placement.clone();
        exact_placement.thread_cores = exact;
        let exact_cost = on_chip_latency(&p, &exact_placement);

        let sa = anneal_thread_placement(&p, &placement, 3000, 42);
        let mut sa_placement = placement.clone();
        sa_placement.thread_cores = sa;
        let sa_cost = on_chip_latency(&p, &sa_placement);
        assert!(
            sa_cost <= exact_cost * 1.01 + 1e-9,
            "SA {sa_cost} vs exact {exact_cost}"
        );
    }

    #[test]
    fn annealing_keeps_threads_on_distinct_cores() {
        let p = tiny_problem(4, Mesh::new(2, 2));
        let mut placement = pinned_placement(4, 4);
        placement.thread_cores = (0..4).map(TileId).collect();
        let cores = anneal_thread_placement(&p, &placement, 500, 7);
        let mut seen = std::collections::HashSet::new();
        for c in cores {
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn bisection_keeps_processes_together() {
        // Two 2-thread processes, each with a shared VC.
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 1024);
        let vcs = vec![
            VcInfo::new(0, VcKind::process_shared(0), MissCurve::flat(100.0)),
            VcInfo::new(1, VcKind::process_shared(1), MissCurve::flat(100.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 50.0)]),
            ThreadInfo::new(1, vec![(0, 50.0)]),
            ThreadInfo::new(2, vec![(1, 50.0)]),
            ThreadInfo::new(3, vec![(1, 50.0)]),
        ];
        let p = PlacementProblem::new(params, vcs, threads).unwrap();
        let cores = bisection_thread_placement(&p);
        // Threads 0,1 adjacent; threads 2,3 adjacent.
        let mesh = &p.params.mesh();
        assert!(mesh.hops(cores[0], cores[1]) <= 1);
        assert!(mesh.hops(cores[2], cores[3]) <= 1);
        // All distinct.
        let set: std::collections::HashSet<_> = cores.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn data_annealing_never_worsens() {
        let p = tiny_problem(3, Mesh::new(2, 2));
        let mut placement = pinned_placement(3, 4);
        placement.thread_cores = vec![TileId(0), TileId(1), TileId(2)];
        let before = on_chip_latency(&p, &placement);
        let refined = anneal_data_placement(&p, &placement, 2000, 256, 11);
        let after = on_chip_latency(&p, &refined);
        assert!(after <= before + 1e-9);
        refined.check_feasible(&p).unwrap();
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_rejects_big_instances() {
        let p = tiny_problem(16, Mesh::new(4, 4));
        let placement = pinned_placement(16, 16);
        exhaustive_thread_placement(&p, &placement);
    }
}

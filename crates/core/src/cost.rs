//! The paper's analytical cost model (§IV-A).
//!
//! Total memory access latency decomposes into off-chip latency (Eq. 1,
//! misses × memory latency) and on-chip latency (Eq. 2, accesses × network
//! distance). Every CDCS step minimizes some relaxation of this model, and
//! the tests/benches use it to compare placement policies without running
//! the full simulator.

use crate::{Placement, PlacementProblem, VcId};
use cdcs_mesh::{TileId, Topology};

/// Off-chip latency (Eq. 1): `Σ_t Σ_d a_{t,d} · M_d(s_d) · MemLatency`.
///
/// `Σ_t a_{t,d} · M_d(s_d)` is evaluated as `misses_at(s_d)` scaled by the
/// measured curve (the curve already aggregates all threads' accesses), so
/// this is exactly the paper's expression with miss *ratios* folded into the
/// curve.
pub fn off_chip_latency(problem: &PlacementProblem, placement: &Placement) -> f64 {
    problem
        .vcs
        .iter()
        .map(|vc| {
            let s = placement.vc_total(vc.id) as f64;
            vc.curve.misses_at(s) * problem.params.mem_latency
        })
        .sum()
}

/// Access rate `α_{t,b}` of thread `t` to bank `b` (§IV-A): the VTB spreads
/// accesses across a VC's banks in proportion to capacity, so
/// `α_{t,b} = Σ_d (s_{d,b} / s_d) · a_{t,d}`.
pub fn thread_bank_accesses(
    problem: &PlacementProblem,
    placement: &Placement,
    thread: u32,
    bank: usize,
) -> f64 {
    problem.threads[thread as usize]
        .vc_accesses
        .iter()
        .map(|&(d, a)| {
            let total = placement.vc_total(d);
            if total == 0 {
                0.0
            } else {
                (placement[(d as usize, bank)] as f64 / total as f64) * a
            }
        })
        .sum()
}

/// On-chip latency (Eq. 2): `Σ_t Σ_b α_{t,b} · D(c_t, b)`, in units of
/// round-trip network cycles.
///
/// Accesses to VCs with zero allocation travel to memory instead; their
/// network cost is part of the miss path and accounted separately by the
/// simulator, matching the paper's split.
pub fn on_chip_latency(problem: &PlacementProblem, placement: &Placement) -> f64 {
    on_chip_latency_with_cores(problem, placement, &placement.thread_cores)
}

/// [`on_chip_latency`] evaluated as if threads ran at `thread_cores` instead
/// of `placement.thread_cores`. Lets the engine's reconfiguration gate cost
/// the *current* placement under the current cores without cloning and
/// patching a whole `Placement` per epoch.
pub fn on_chip_latency_with_cores(
    problem: &PlacementProblem,
    placement: &Placement,
    thread_cores: &[TileId],
) -> f64 {
    let params = &problem.params;
    let mut total = 0.0;
    for t in &problem.threads {
        let core = thread_cores[t.id as usize];
        for &(d, a) in &t.vc_accesses {
            let s_d = placement.vc_total(d);
            if s_d == 0 || a == 0.0 {
                continue;
            }
            for (bank, &lines) in placement.vc_row(d as usize).iter().enumerate() {
                if lines == 0 {
                    continue;
                }
                let frac = lines as f64 / s_d as f64;
                total += a * frac * params.net_round_trip(core, TileId(bank as u16));
            }
        }
    }
    total
}

/// Total latency: Eq. 1 + Eq. 2 (plus the constant bank latency per access,
/// which no placement decision can change but keeps absolute values
/// comparable to AMAT measurements).
pub fn total_latency(problem: &PlacementProblem, placement: &Placement) -> f64 {
    total_latency_with_cores(problem, placement, &placement.thread_cores)
}

/// [`total_latency`] with the thread cores overridden (see
/// [`on_chip_latency_with_cores`]).
pub fn total_latency_with_cores(
    problem: &PlacementProblem,
    placement: &Placement,
    thread_cores: &[TileId],
) -> f64 {
    let accesses: f64 = problem.threads.iter().map(|t| t.total_accesses()).sum();
    off_chip_latency(problem, placement)
        + on_chip_latency_with_cores(problem, placement, thread_cores)
        + accesses * problem.params.bank_latency
}

/// Mean network distance (in hops) from a thread's core to the data of one
/// VC under a placement — the quantity Fig. 1's captions quote (e.g. "1.2
/// hops on average, instead of 3.2").
pub fn mean_hops_to_vc(
    problem: &PlacementProblem,
    placement: &Placement,
    thread: u32,
    vc: VcId,
) -> f64 {
    let core = placement.thread_cores[thread as usize];
    let total = placement.vc_total(vc);
    if total == 0 {
        return 0.0;
    }
    placement
        .vc_banks(vc)
        .into_iter()
        .map(|(b, lines)| {
            (lines as f64 / total as f64)
                * f64::from(problem.params.mesh().hops(core, TileId(b as u16)))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;
    use cdcs_mesh::Mesh;

    /// One thread at tile 0, one VC with a linear curve, 2x2 mesh.
    fn problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![VcInfo::new(
            0,
            VcKind::thread_private(0),
            MissCurve::new(vec![(0.0, 100.0), (200.0, 0.0)]),
        )];
        let threads = vec![ThreadInfo::new(0, vec![(0, 100.0)])];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn off_chip_latency_follows_curve() {
        let p = problem();
        let mut placement = Placement::empty(1, 1, 4);
        // No allocation: all 100 accesses miss.
        assert_eq!(
            off_chip_latency(&p, &placement),
            100.0 * p.params.mem_latency
        );
        // Half the curve: 50 misses.
        placement[(0, 0)] = 100;
        assert_eq!(
            off_chip_latency(&p, &placement),
            50.0 * p.params.mem_latency
        );
    }

    #[test]
    fn on_chip_latency_zero_for_local_bank() {
        let p = problem();
        let mut placement = Placement::empty(1, 1, 4);
        placement[(0, 0)] = 100; // same tile as the thread
        assert_eq!(on_chip_latency(&p, &placement), 0.0);
    }

    #[test]
    fn on_chip_latency_scales_with_distance_and_split() {
        let p = problem();
        let mut placement = Placement::empty(1, 1, 4);
        // Half the data 1 hop away, half 2 hops away.
        placement[(0, 1)] = 50; // tile 1: 1 hop from tile 0
        placement[(0, 3)] = 50; // tile 3: 2 hops
        let rt1 = p.params.net_round_trip(TileId(0), TileId(1));
        let rt3 = p.params.net_round_trip(TileId(0), TileId(3));
        let expected = 100.0 * 0.5 * rt1 + 100.0 * 0.5 * rt3;
        assert!((on_chip_latency(&p, &placement) - expected).abs() < 1e-9);
    }

    #[test]
    fn total_includes_bank_latency() {
        let p = problem();
        let placement = Placement::empty(1, 1, 4);
        let total = total_latency(&p, &placement);
        assert!(
            (total - (100.0 * p.params.mem_latency + 100.0 * p.params.bank_latency)).abs() < 1e-9
        );
    }

    #[test]
    fn alpha_t_b_proportional_to_capacity() {
        let p = problem();
        let mut placement = Placement::empty(1, 1, 4);
        placement[(0, 1)] = 75;
        placement[(0, 2)] = 25;
        assert!((thread_bank_accesses(&p, &placement, 0, 1) - 75.0).abs() < 1e-9);
        assert!((thread_bank_accesses(&p, &placement, 0, 2) - 25.0).abs() < 1e-9);
        assert_eq!(thread_bank_accesses(&p, &placement, 0, 0), 0.0);
    }

    #[test]
    fn mean_hops_weighted_by_capacity() {
        let p = problem();
        let mut placement = Placement::empty(1, 1, 4);
        placement[(0, 0)] = 50; // 0 hops
        placement[(0, 3)] = 50; // 2 hops
        assert!((mean_hops_to_vc(&p, &placement, 0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_allocation_vc_has_no_onchip_cost() {
        let p = problem();
        let placement = Placement::empty(1, 1, 4);
        assert_eq!(on_chip_latency(&p, &placement), 0.0);
        assert_eq!(mean_hops_to_vc(&p, &placement, 0, 0), 0.0);
    }
}

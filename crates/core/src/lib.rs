#![forbid(unsafe_code)]
//! CDCS core algorithms — the contribution of [Beckmann, Tsai, Sanchez,
//! HPCA 2015]: joint computation (thread) and data (virtual cache)
//! co-scheduling for distributed NUCA cache hierarchies.
//!
//! The crate is organized around one data structure and four algorithm
//! stages:
//!
//! * [`PlacementProblem`] describes an epoch's optimization input: the chip
//!   ([`cdcs_mesh::Mesh`]), per-virtual-cache miss curves (from GMONs), and
//!   per-thread access rates.
//! * [`alloc`] — capacity allocation. [`alloc::peekahead`] partitions LLC
//!   capacity over convex curve hulls; [`alloc::latency_aware_sizes`] builds
//!   the paper's total-latency curves (§IV-C, Fig. 5) so allocation trades
//!   off off-chip misses against on-chip distance, sometimes leaving
//!   capacity unused.
//! * [`place`] — data and thread placement: optimistic contention-aware VC
//!   placement (§IV-D), thread placement at access centers of mass (§IV-E),
//!   and refined placement with outward-spiral trades (§IV-F).
//! * [`policy`] — complete per-epoch planners: [`policy::CdcsPlanner`] (the
//!   full four-step pipeline of Fig. 4, with per-step toggles for the
//!   Fig. 12 factor analysis), [`policy::JigsawPlanner`] (miss-curve
//!   allocation + greedy placement, threads pinned), and
//!   [`policy::RNucaPolicy`] (classification-based placement). S-NUCA needs
//!   no planner: it hashes lines over all banks.
//! * [`cost`] — the §IV-A analytical model (Eqs. 1 and 2) used both inside
//!   the algorithms and to evaluate solutions in tests and benchmarks.
//!
//! # Example: planning one epoch
//!
//! ```
//! use cdcs_core::{PlacementProblem, SystemParams, VcInfo, VcKind, ThreadInfo};
//! use cdcs_core::policy::CdcsPlanner;
//! use cdcs_cache::MissCurve;
//! use cdcs_mesh::Mesh;
//!
//! // Two threads on a 4x4 chip, each with a private VC.
//! let params = SystemParams::default_for_mesh(Mesh::new(4, 4), 8192);
//! let vcs = vec![
//!     VcInfo::new(0, VcKind::thread_private(0),
//!                 MissCurve::new(vec![(0.0, 1000.0), (16384.0, 10.0)])),
//!     VcInfo::new(1, VcKind::thread_private(1),
//!                 MissCurve::new(vec![(0.0, 500.0), (4096.0, 100.0)])),
//! ];
//! let threads = vec![
//!     ThreadInfo::new(0, vec![(0, 1000.0)]),
//!     ThreadInfo::new(1, vec![(1, 500.0)]),
//! ];
//! let problem = PlacementProblem::new(params, vcs, threads).unwrap();
//! let placement = CdcsPlanner::default().plan(&problem);
//! assert_eq!(placement.thread_cores.len(), 2);
//! // Every VC's allocation fits in the banks it claims.
//! placement.check_feasible(&problem).unwrap();
//! ```
//!
//! [Beckmann, Tsai, Sanchez, HPCA 2015]:
//!     https://people.csail.mit.edu/sanchez/papers/2015.cdcs.hpca.pdf

pub mod alloc;
pub mod cost;
pub mod descriptor;
pub mod place;
pub mod policy;
mod types;

pub use descriptor::VcDescriptor;
pub use place::PlanScratch;
pub use types::{
    Placement, PlacementProblem, SystemParams, ThreadId, ThreadInfo, VcId, VcInfo, VcKind,
};

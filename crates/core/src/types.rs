//! Problem and solution types shared by all planners.

use cdcs_cache::MissCurve;
use cdcs_mesh::{Mesh, NocConfig, TileId, Topology};
use serde::{Deserialize, Serialize};

/// Identifier of a virtual cache (VC) within one epoch's problem.
pub type VcId = u32;

/// Identifier of a thread within one epoch's problem (dense, `0..T`).
pub type ThreadId = u32;

/// What a virtual cache holds, mirroring the paper's three VC classes (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcKind {
    /// Data accessed by a single thread.
    ThreadPrivate {
        /// The owning thread.
        thread: ThreadId,
    },
    /// Data shared by the threads of one process.
    ProcessShared {
        /// Dense process index within the mix.
        process: u32,
    },
    /// Data shared across processes.
    Global,
}

impl VcKind {
    /// Convenience constructor for a thread-private VC.
    pub fn thread_private(thread: ThreadId) -> Self {
        VcKind::ThreadPrivate { thread }
    }

    /// Convenience constructor for a per-process VC.
    pub fn process_shared(process: u32) -> Self {
        VcKind::ProcessShared { process }
    }
}

/// One virtual cache's epoch profile: its miss curve and who accesses it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcInfo {
    /// VC id; must equal its index in [`PlacementProblem::vcs`].
    pub id: VcId,
    /// VC class.
    pub kind: VcKind,
    /// Miss curve over capacity in lines, measured by this VC's GMON over
    /// the last epoch. `curve.at_zero()` is the VC's total accesses.
    pub curve: MissCurve,
}

impl VcInfo {
    /// Creates a `VcInfo`.
    pub fn new(id: VcId, kind: VcKind, curve: MissCurve) -> Self {
        VcInfo { id, kind, curve }
    }

    /// Total accesses to this VC in the epoch (`misses at zero capacity`).
    pub fn accesses(&self) -> f64 {
        self.curve.at_zero()
    }
}

/// One thread's epoch profile: the VCs it accesses and how often.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// Thread id; must equal its index in [`PlacementProblem::threads`].
    pub id: ThreadId,
    /// `(vc, accesses)` pairs — the paper's access rates `a_{t,d}` (§IV-A).
    pub vc_accesses: Vec<(VcId, f64)>,
}

impl ThreadInfo {
    /// Creates a `ThreadInfo`.
    pub fn new(id: ThreadId, vc_accesses: Vec<(VcId, f64)>) -> Self {
        ThreadInfo { id, vc_accesses }
    }

    /// Total LLC accesses issued by this thread in the epoch.
    pub fn total_accesses(&self) -> f64 {
        self.vc_accesses.iter().map(|&(_, a)| a).sum()
    }
}

/// Fixed system parameters the planners need (a subset of the paper's
/// Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemParams {
    /// The chip fabric; banks are co-located with tiles (bank `b` at tile
    /// `b`).
    pub mesh: Mesh,
    /// Capacity of each LLC bank, in lines (512 KB banks → 8192 lines).
    pub bank_lines: u64,
    /// NoC timing.
    pub noc: NocConfig,
    /// Average latency of an LLC miss (memory access), in cycles, including
    /// network to the memory controllers (§IV-A `MemLatency`).
    pub mem_latency: f64,
    /// LLC bank access latency in cycles (Table 2: 9 cycles).
    pub bank_latency: f64,
}

impl SystemParams {
    /// Paper-flavoured defaults for a given mesh and bank size: 3/1-cycle
    /// NoC, 9-cycle banks, and a 120-cycle zero-load memory latency plus the
    /// mesh-average network distance to the edge controllers.
    pub fn default_for_mesh(mesh: Mesh, bank_lines: u64) -> Self {
        let noc = NocConfig::default();
        // Average one-way distance to a memory controller, both directions.
        let mc = cdcs_mesh::MemCtrlPlacement::edges(&mesh, 8);
        let tiles = mesh.tiles();
        let avg_mc_hops: f64 = tiles
            .iter()
            .map(|&t| mc.mean_hops_from(&mesh, t))
            .sum::<f64>()
            / tiles.len() as f64;
        SystemParams {
            mesh,
            bank_lines,
            noc,
            mem_latency: 120.0 + f64::from(noc.round_trip_latency(avg_mc_hops.round() as u32)),
            bank_latency: 9.0,
        }
    }

    /// Number of banks (= tiles).
    pub fn num_banks(&self) -> usize {
        self.mesh.num_tiles()
    }

    /// Total LLC capacity in lines.
    pub fn total_lines(&self) -> u64 {
        self.bank_lines * self.num_banks() as u64
    }

    /// Round-trip network latency in cycles between a core tile and a bank.
    pub fn net_round_trip(&self, core: TileId, bank: TileId) -> f64 {
        f64::from(self.noc.round_trip_latency(self.mesh.hops(core, bank)))
    }
}

/// A complete epoch optimization input.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// System parameters.
    pub params: SystemParams,
    /// Virtual caches, indexed by [`VcId`].
    pub vcs: Vec<VcInfo>,
    /// Threads, indexed by [`ThreadId`].
    pub threads: Vec<ThreadInfo>,
}

impl PlacementProblem {
    /// Builds and validates a problem.
    ///
    /// # Errors
    ///
    /// Returns a message if ids are not dense, thread access lists reference
    /// unknown VCs, or there are more threads than cores.
    pub fn new(
        params: SystemParams,
        vcs: Vec<VcInfo>,
        threads: Vec<ThreadInfo>,
    ) -> Result<Self, String> {
        for (i, vc) in vcs.iter().enumerate() {
            if vc.id as usize != i {
                return Err(format!("vc id {} at index {i}", vc.id));
            }
        }
        for (i, t) in threads.iter().enumerate() {
            if t.id as usize != i {
                return Err(format!("thread id {} at index {i}", t.id));
            }
            for &(vc, a) in &t.vc_accesses {
                if vc as usize >= vcs.len() {
                    return Err(format!("thread {i} references unknown vc {vc}"));
                }
                if !a.is_finite() || a < 0.0 {
                    return Err(format!("thread {i} has invalid access rate {a}"));
                }
            }
        }
        if threads.len() > params.mesh.num_tiles() {
            return Err(format!(
                "{} threads exceed {} cores",
                threads.len(),
                params.mesh.num_tiles()
            ));
        }
        Ok(PlacementProblem { params, vcs, threads })
    }

    /// Total accesses to VC `d` across all threads (`Σ_t a_{t,d}`).
    pub fn vc_accesses(&self, vc: VcId) -> f64 {
        self.threads
            .iter()
            .flat_map(|t| t.vc_accesses.iter())
            .filter(|&&(d, _)| d == vc)
            .map(|&(_, a)| a)
            .sum()
    }

    /// The threads accessing VC `d`, with their rates.
    pub fn vc_accessors(&self, vc: VcId) -> Vec<(ThreadId, f64)> {
        self.threads
            .iter()
            .filter_map(|t| {
                let rate: f64 = t
                    .vc_accesses
                    .iter()
                    .filter(|&&(d, _)| d == vc)
                    .map(|&(_, a)| a)
                    .sum();
                (rate > 0.0).then_some((t.id, rate))
            })
            .collect()
    }
}

/// A complete epoch solution: where every thread runs and how every VC's
/// capacity is spread over banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Core tile of each thread (indexed by [`ThreadId`]).
    pub thread_cores: Vec<TileId>,
    /// `vc_alloc[vc][bank]` — lines of bank `bank` allocated to `vc`
    /// (the paper's `s_{d,b}`, §IV-A).
    pub vc_alloc: Vec<Vec<u64>>,
}

impl Placement {
    /// An empty placement for `num_vcs` VCs over `num_banks` banks with all
    /// threads on tile 0.
    pub fn empty(num_threads: usize, num_vcs: usize, num_banks: usize) -> Self {
        Placement {
            thread_cores: vec![TileId(0); num_threads],
            vc_alloc: vec![vec![0; num_banks]; num_vcs],
        }
    }

    /// Total allocation of a VC across banks, in lines.
    pub fn vc_total(&self, vc: VcId) -> u64 {
        self.vc_alloc[vc as usize].iter().sum()
    }

    /// Lines of `bank` claimed across all VCs.
    pub fn bank_used(&self, bank: usize) -> u64 {
        self.vc_alloc.iter().map(|per_bank| per_bank[bank]).sum()
    }

    /// Verifies the placement against a problem: per-bank capacity respected,
    /// every thread on a distinct core, vector shapes consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_feasible(&self, problem: &PlacementProblem) -> Result<(), String> {
        if self.thread_cores.len() != problem.threads.len() {
            return Err("thread count mismatch".into());
        }
        if self.vc_alloc.len() != problem.vcs.len() {
            return Err("vc count mismatch".into());
        }
        let banks = problem.params.num_banks();
        for (vc, per_bank) in self.vc_alloc.iter().enumerate() {
            if per_bank.len() != banks {
                return Err(format!("vc {vc} has {} bank entries", per_bank.len()));
            }
        }
        for b in 0..banks {
            let used = self.bank_used(b);
            if used > problem.params.bank_lines {
                return Err(format!(
                    "bank {b} over-subscribed: {used} > {}",
                    problem.params.bank_lines
                ));
            }
        }
        let mut seen = vec![false; problem.params.mesh.num_tiles()];
        for (t, &core) in self.thread_cores.iter().enumerate() {
            if core.index() >= seen.len() {
                return Err(format!("thread {t} on out-of-range tile {core}"));
            }
            if seen[core.index()] {
                return Err(format!("two threads on tile {core}"));
            }
            seen[core.index()] = true;
        }
        Ok(())
    }

    /// The banks holding data of `vc`, with allocated lines.
    pub fn vc_banks(&self, vc: VcId) -> Vec<(usize, u64)> {
        self.vc_alloc[vc as usize]
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(b, &l)| (b, l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(10.0)),
            VcInfo::new(1, VcKind::process_shared(0), MissCurve::flat(5.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 10.0), (1, 2.0)]),
            ThreadInfo::new(1, vec![(1, 3.0)]),
        ];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn vc_accesses_sums_across_threads() {
        let p = tiny_problem();
        assert_eq!(p.vc_accesses(0), 10.0);
        assert_eq!(p.vc_accesses(1), 5.0);
    }

    #[test]
    fn vc_accessors_filters_zero() {
        let p = tiny_problem();
        let acc = p.vc_accessors(1);
        assert_eq!(acc, vec![(0, 2.0), (1, 3.0)]);
        assert_eq!(p.vc_accessors(0), vec![(0, 10.0)]);
    }

    #[test]
    fn problem_rejects_bad_ids() {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![VcInfo::new(7, VcKind::Global, MissCurve::zero())];
        assert!(PlacementProblem::new(params, vcs, vec![]).is_err());
    }

    #[test]
    fn problem_rejects_unknown_vc_reference() {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let threads = vec![ThreadInfo::new(0, vec![(3, 1.0)])];
        assert!(PlacementProblem::new(params, vec![], threads).is_err());
    }

    #[test]
    fn problem_rejects_too_many_threads() {
        let params = SystemParams::default_for_mesh(Mesh::new(1, 2), 100);
        let threads = (0..3).map(|i| ThreadInfo::new(i, vec![])).collect();
        assert!(PlacementProblem::new(params, vec![], threads).is_err());
    }

    #[test]
    fn feasibility_checks_bank_capacity() {
        let p = tiny_problem();
        let mut placement = Placement::empty(2, 2, 4);
        placement.thread_cores = vec![TileId(0), TileId(1)];
        placement.vc_alloc[0][0] = 60;
        placement.vc_alloc[1][0] = 50; // 110 > 100
        assert!(placement.check_feasible(&p).is_err());
        placement.vc_alloc[1][0] = 40;
        assert!(placement.check_feasible(&p).is_ok());
    }

    #[test]
    fn feasibility_checks_distinct_cores() {
        let p = tiny_problem();
        let placement = Placement::empty(2, 2, 4); // both threads on tile 0
        assert!(placement.check_feasible(&p).is_err());
    }

    #[test]
    fn vc_banks_lists_nonzero() {
        let mut placement = Placement::empty(1, 1, 4);
        placement.vc_alloc[0][2] = 5;
        assert_eq!(placement.vc_banks(0), vec![(2, 5)]);
        assert_eq!(placement.vc_total(0), 5);
        assert_eq!(placement.bank_used(2), 5);
    }

    #[test]
    fn default_params_have_sane_memory_latency() {
        let params = SystemParams::default_for_mesh(Mesh::new(8, 8), 8192);
        assert!(params.mem_latency > 120.0 && params.mem_latency < 300.0);
        assert_eq!(params.total_lines(), 64 * 8192);
    }
}

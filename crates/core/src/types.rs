//! Problem and solution types shared by all planners.

use cdcs_cache::MissCurve;
use cdcs_mesh::{Mesh, NocConfig, TileId, Topology};
use serde::{Deserialize, Serialize};

/// Identifier of a virtual cache (VC) within one epoch's problem.
pub type VcId = u32;

/// Identifier of a thread within one epoch's problem (dense, `0..T`).
pub type ThreadId = u32;

/// What a virtual cache holds, mirroring the paper's three VC classes (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcKind {
    /// Data accessed by a single thread.
    ThreadPrivate {
        /// The owning thread.
        thread: ThreadId,
    },
    /// Data shared by the threads of one process.
    ProcessShared {
        /// Dense process index within the mix.
        process: u32,
    },
    /// Data shared across processes.
    Global,
}

impl VcKind {
    /// Convenience constructor for a thread-private VC.
    pub fn thread_private(thread: ThreadId) -> Self {
        VcKind::ThreadPrivate { thread }
    }

    /// Convenience constructor for a per-process VC.
    pub fn process_shared(process: u32) -> Self {
        VcKind::ProcessShared { process }
    }
}

/// One virtual cache's epoch profile: its miss curve and who accesses it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcInfo {
    /// VC id; must equal its index in [`PlacementProblem::vcs`].
    pub id: VcId,
    /// VC class.
    pub kind: VcKind,
    /// Miss curve over capacity in lines, measured by this VC's GMON over
    /// the last epoch. `curve.at_zero()` is the VC's total accesses.
    pub curve: MissCurve,
}

impl VcInfo {
    /// Creates a `VcInfo`.
    pub fn new(id: VcId, kind: VcKind, curve: MissCurve) -> Self {
        VcInfo { id, kind, curve }
    }

    /// Total accesses to this VC in the epoch (`misses at zero capacity`).
    pub fn accesses(&self) -> f64 {
        self.curve.at_zero()
    }
}

/// One thread's epoch profile: the VCs it accesses and how often.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// Thread id; must equal its index in [`PlacementProblem::threads`].
    pub id: ThreadId,
    /// `(vc, accesses)` pairs — the paper's access rates `a_{t,d}` (§IV-A).
    pub vc_accesses: Vec<(VcId, f64)>,
}

impl ThreadInfo {
    /// Creates a `ThreadInfo`.
    pub fn new(id: ThreadId, vc_accesses: Vec<(VcId, f64)>) -> Self {
        ThreadInfo { id, vc_accesses }
    }

    /// Total LLC accesses issued by this thread in the epoch.
    pub fn total_accesses(&self) -> f64 {
        self.vc_accesses.iter().map(|&(_, a)| a).sum()
    }
}

/// Fixed system parameters the planners need (a subset of the paper's
/// Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemParams {
    /// The chip fabric; private because [`Self::net_round_trip`]'s cached
    /// table is derived from it — mutating it post-construction would
    /// silently desync the table. Read via [`Self::mesh`].
    mesh: Mesh,
    /// Capacity of each LLC bank, in lines (512 KB banks → 8192 lines).
    pub bank_lines: u64,
    /// NoC timing; private for the same reason as `mesh`. Read via
    /// [`Self::noc`].
    noc: NocConfig,
    /// Average latency of an LLC miss (memory access), in cycles, including
    /// network to the memory controllers (§IV-A `MemLatency`). Mutable:
    /// nothing cached derives from it (the simulator patches it per epoch).
    pub mem_latency: f64,
    /// LLC bank access latency in cycles (Table 2: 9 cycles).
    pub bank_latency: f64,
    /// Precomputed `tile × tile` round-trip latency table
    /// (`rt_table[a * num_tiles + b]`). [`Self::net_round_trip`] sits inside
    /// every planner's innermost loop, so it must be a load, not a hop
    /// computation plus router/wire arithmetic. Skipped by serde: derived
    /// state must be rebuilt through [`Self::new`], never trusted from a
    /// serialized form (an empty table fails loudly in `net_round_trip`
    /// rather than returning stale latencies).
    #[serde(skip)]
    rt_table: Vec<f64>,
}

impl SystemParams {
    /// Builds parameters, precomputing the tile-pair round-trip table.
    pub fn new(
        mesh: Mesh,
        bank_lines: u64,
        noc: NocConfig,
        mem_latency: f64,
        bank_latency: f64,
    ) -> Self {
        let n = mesh.num_tiles();
        let mut rt_table = Vec::with_capacity(n * n);
        for a in mesh.tiles() {
            for b in mesh.tiles() {
                rt_table.push(f64::from(noc.round_trip_latency(mesh.hops(a, b))));
            }
        }
        SystemParams {
            mesh,
            bank_lines,
            noc,
            mem_latency,
            bank_latency,
            rt_table,
        }
    }

    /// Paper-flavoured defaults for a given mesh and bank size: 3/1-cycle
    /// NoC, 9-cycle banks, and a 120-cycle zero-load memory latency plus the
    /// mesh-average network distance to the edge controllers.
    pub fn default_for_mesh(mesh: Mesh, bank_lines: u64) -> Self {
        let noc = NocConfig::default();
        // Average one-way distance to a memory controller, both directions.
        let mc = cdcs_mesh::MemCtrlPlacement::edges(&mesh, 8);
        let tiles = mesh.tiles();
        let avg_mc_hops: f64 = tiles
            .iter()
            .map(|&t| mc.mean_hops_from(&mesh, t))
            .sum::<f64>()
            / tiles.len() as f64;
        SystemParams::new(
            mesh,
            bank_lines,
            noc,
            120.0 + f64::from(noc.round_trip_latency(avg_mc_hops.round() as u32)),
            9.0,
        )
    }

    /// The chip fabric; banks are co-located with tiles (bank `b` at tile
    /// `b`).
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// NoC timing.
    #[inline]
    pub fn noc(&self) -> NocConfig {
        self.noc
    }

    /// Number of banks (= tiles).
    pub fn num_banks(&self) -> usize {
        self.mesh.num_tiles()
    }

    /// Total LLC capacity in lines.
    pub fn total_lines(&self) -> u64 {
        self.bank_lines * self.num_banks() as u64
    }

    /// Round-trip network latency in cycles between a core tile and a bank
    /// (a table lookup; the table is built in [`Self::new`]).
    #[inline]
    pub fn net_round_trip(&self, core: TileId, bank: TileId) -> f64 {
        let n = self.mesh.num_tiles();
        debug_assert_eq!(
            self.rt_table.len(),
            n * n,
            "round-trip table desynced from mesh"
        );
        self.rt_table[core.index() * n + bank.index()]
    }
}

/// A complete epoch optimization input.
///
/// Construction builds a CSR-style accessor index (`vc → [(thread, rate)]`)
/// so the planners' innermost loops ([`Self::vc_accessors`],
/// [`Self::vc_accesses`]) are slice reads instead of full-thread scans with
/// per-call allocation.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// System parameters.
    pub params: SystemParams,
    /// Virtual caches, indexed by [`VcId`].
    pub vcs: Vec<VcInfo>,
    /// Threads, indexed by [`ThreadId`].
    pub threads: Vec<ThreadInfo>,
    /// CSR row offsets into `acc_entries`, one per VC plus a sentinel.
    acc_offsets: Vec<u32>,
    /// Accessor entries `(thread, summed rate)`, ascending thread id within
    /// each VC's row, zero-rate threads omitted.
    acc_entries: Vec<(ThreadId, f64)>,
    /// Per-VC total access rate (`Σ_t a_{t,d}`).
    acc_totals: Vec<f64>,
}

impl PlacementProblem {
    /// Builds and validates a problem.
    ///
    /// # Errors
    ///
    /// Returns a message if ids are not dense, thread access lists reference
    /// unknown VCs, or there are more threads than cores.
    pub fn new(
        params: SystemParams,
        vcs: Vec<VcInfo>,
        threads: Vec<ThreadInfo>,
    ) -> Result<Self, String> {
        for (i, vc) in vcs.iter().enumerate() {
            if vc.id as usize != i {
                return Err(format!("vc id {} at index {i}", vc.id));
            }
        }
        for (i, t) in threads.iter().enumerate() {
            if t.id as usize != i {
                return Err(format!("thread id {} at index {i}", t.id));
            }
            for &(vc, a) in &t.vc_accesses {
                if vc as usize >= vcs.len() {
                    return Err(format!("thread {i} references unknown vc {vc}"));
                }
                if !a.is_finite() || a < 0.0 {
                    return Err(format!("thread {i} has invalid access rate {a}"));
                }
            }
        }
        if threads.len() > params.mesh.num_tiles() {
            return Err(format!(
                "{} threads exceed {} cores",
                threads.len(),
                params.mesh.num_tiles()
            ));
        }

        // CSR accessor index: one pass over the threads in id order keeps
        // both per-row entries and per-VC totals in exactly the accumulation
        // order the definitional scans (`Σ_t a_{t,d}`) use, so lookups are
        // bit-identical to them.
        let mut rows: Vec<Vec<(ThreadId, f64)>> = vec![Vec::new(); vcs.len()];
        let mut acc_totals = vec![0.0f64; vcs.len()];
        for t in &threads {
            for &(d, a) in &t.vc_accesses {
                acc_totals[d as usize] += a;
                match rows[d as usize].last_mut() {
                    Some(entry) if entry.0 == t.id => entry.1 += a,
                    _ => rows[d as usize].push((t.id, a)),
                }
            }
        }
        let mut acc_offsets = Vec::with_capacity(vcs.len() + 1);
        let mut acc_entries = Vec::new();
        acc_offsets.push(0u32);
        for row in rows {
            acc_entries.extend(row.into_iter().filter(|&(_, rate)| rate > 0.0));
            acc_offsets.push(acc_entries.len() as u32);
        }

        Ok(PlacementProblem {
            params,
            vcs,
            threads,
            acc_offsets,
            acc_entries,
            acc_totals,
        })
    }

    /// Total accesses to VC `d` across all threads (`Σ_t a_{t,d}`);
    /// precomputed, O(1).
    #[inline]
    pub fn vc_accesses(&self, vc: VcId) -> f64 {
        self.acc_totals[vc as usize]
    }

    /// The threads accessing VC `d` with their rates, ascending thread id:
    /// a borrow of the CSR index built at construction (no allocation, no
    /// thread scan).
    #[inline]
    pub fn vc_accessors(&self, vc: VcId) -> &[(ThreadId, f64)] {
        let (lo, hi) = (
            self.acc_offsets[vc as usize] as usize,
            self.acc_offsets[vc as usize + 1] as usize,
        );
        &self.acc_entries[lo..hi]
    }
}

/// A complete epoch solution: where every thread runs and how every VC's
/// capacity is spread over banks.
///
/// The allocation matrix (the paper's `s_{d,b}`, §IV-A) is stored as one
/// flat row-major `vc × bank` buffer rather than a `Vec<Vec<u64>>`: the
/// planners emit a placement every epoch, and the flat layout lets a
/// long-lived output buffer be [`reset`](Self::reset) and refilled with zero
/// steady-state allocations (pinned by `crates/core/tests/alloc_free.rs`).
/// Read/write cells through [`Index`](std::ops::Index) with a `(vc, bank)`
/// pair or whole rows through [`vc_row`](Self::vc_row).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Core tile of each thread (indexed by [`ThreadId`]).
    pub thread_cores: Vec<TileId>,
    /// Flat row-major allocation matrix: `alloc[vc * banks + bank]` lines of
    /// bank `bank` allocated to `vc`.
    alloc: Vec<u64>,
    /// Row stride of `alloc` (= number of banks).
    banks: usize,
}

impl Placement {
    /// An empty placement for `num_vcs` VCs over `num_banks` banks with all
    /// threads on tile 0.
    pub fn empty(num_threads: usize, num_vcs: usize, num_banks: usize) -> Self {
        Placement {
            thread_cores: vec![TileId(0); num_threads],
            alloc: vec![0; num_vcs * num_banks],
            banks: num_banks,
        }
    }

    /// Builds a placement from per-VC bank rows (test/bootstrap convenience).
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(thread_cores: Vec<TileId>, rows: Vec<Vec<u64>>) -> Self {
        let banks = rows.first().map_or(0, Vec::len);
        let mut alloc = Vec::with_capacity(rows.len() * banks);
        for row in &rows {
            assert_eq!(row.len(), banks, "ragged allocation rows");
            alloc.extend_from_slice(row);
        }
        Placement {
            thread_cores,
            alloc,
            banks,
        }
    }

    /// Clears this placement in place and reshapes it for a new epoch:
    /// `num_threads` threads on tile 0, an all-zero `num_vcs × num_banks`
    /// matrix. Buffers are reused, so once warm this is allocation-free —
    /// the pooling primitive behind the planners' `*_into` entry points.
    pub fn reset(&mut self, num_threads: usize, num_vcs: usize, num_banks: usize) {
        self.thread_cores.clear();
        self.thread_cores.resize(num_threads, TileId(0));
        self.alloc.clear();
        self.alloc.resize(num_vcs * num_banks, 0);
        self.banks = num_banks;
    }

    /// Refills this placement as a copy of `other`, reusing buffers
    /// (allocation-free once capacities are warm). One bulk matrix copy —
    /// the warm-start primitive: cheaper than `reset` (a full zero-fill)
    /// followed by per-row copies.
    pub fn copy_from(&mut self, other: &Placement) {
        self.thread_cores.clear();
        self.thread_cores.extend_from_slice(&other.thread_cores);
        self.alloc.clear();
        self.alloc.extend_from_slice(&other.alloc);
        self.banks = other.banks;
    }

    /// Number of VCs in the matrix.
    pub fn num_vcs(&self) -> usize {
        self.alloc.len().checked_div(self.banks).unwrap_or(0)
    }

    /// Number of banks (the matrix row stride).
    pub fn num_banks(&self) -> usize {
        self.banks
    }

    /// One VC's per-bank allocation row.
    #[inline]
    pub fn vc_row(&self, vc: usize) -> &[u64] {
        &self.alloc[vc * self.banks..(vc + 1) * self.banks]
    }

    /// Mutable access to one VC's per-bank allocation row.
    #[inline]
    pub fn vc_row_mut(&mut self, vc: usize) -> &mut [u64] {
        &mut self.alloc[vc * self.banks..(vc + 1) * self.banks]
    }

    /// Total allocation of a VC across banks, in lines.
    pub fn vc_total(&self, vc: VcId) -> u64 {
        self.vc_row(vc as usize).iter().sum()
    }

    /// Lines of `bank` claimed across all VCs.
    pub fn bank_used(&self, bank: usize) -> u64 {
        if self.alloc.is_empty() {
            return 0;
        }
        self.alloc[bank..].iter().step_by(self.banks).sum()
    }

    /// Verifies the placement against a problem: per-bank capacity respected,
    /// every thread on a distinct core, matrix shape consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_feasible(&self, problem: &PlacementProblem) -> Result<(), String> {
        if self.thread_cores.len() != problem.threads.len() {
            return Err("thread count mismatch".into());
        }
        if self.num_vcs() != problem.vcs.len() {
            return Err("vc count mismatch".into());
        }
        let banks = problem.params.num_banks();
        if self.banks != banks && self.num_vcs() > 0 {
            return Err(format!("placement has {} bank columns", self.banks));
        }
        for b in 0..banks {
            let used = self.bank_used(b);
            if used > problem.params.bank_lines {
                return Err(format!(
                    "bank {b} over-subscribed: {used} > {}",
                    problem.params.bank_lines
                ));
            }
        }
        let mut seen = vec![false; problem.params.mesh().num_tiles()];
        for (t, &core) in self.thread_cores.iter().enumerate() {
            if core.index() >= seen.len() {
                return Err(format!("thread {t} on out-of-range tile {core}"));
            }
            if seen[core.index()] {
                return Err(format!("two threads on tile {core}"));
            }
            seen[core.index()] = true;
        }
        Ok(())
    }

    /// The banks holding data of `vc`, with allocated lines.
    pub fn vc_banks(&self, vc: VcId) -> Vec<(usize, u64)> {
        self.vc_row(vc as usize)
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(b, &l)| (b, l))
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Placement {
    type Output = u64;

    /// Lines of bank `bank` allocated to `vc` (`placement[(vc, bank)]`).
    #[inline]
    fn index(&self, (vc, bank): (usize, usize)) -> &u64 {
        debug_assert!(bank < self.banks);
        &self.alloc[vc * self.banks + bank]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Placement {
    #[inline]
    fn index_mut(&mut self, (vc, bank): (usize, usize)) -> &mut u64 {
        debug_assert!(bank < self.banks);
        &mut self.alloc[vc * self.banks + bank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(10.0)),
            VcInfo::new(1, VcKind::process_shared(0), MissCurve::flat(5.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 10.0), (1, 2.0)]),
            ThreadInfo::new(1, vec![(1, 3.0)]),
        ];
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn vc_accesses_sums_across_threads() {
        let p = tiny_problem();
        assert_eq!(p.vc_accesses(0), 10.0);
        assert_eq!(p.vc_accesses(1), 5.0);
    }

    #[test]
    fn vc_accessors_merges_non_adjacent_duplicates() {
        // A thread may list the same VC several times, interleaved with
        // other VCs; the CSR build must still produce one summed entry per
        // (vc, thread) — each row only ever appends while one thread is
        // being scanned, so its last entry is that thread's accumulator.
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![
            VcInfo::new(0, VcKind::thread_private(0), MissCurve::flat(10.0)),
            VcInfo::new(1, VcKind::process_shared(0), MissCurve::flat(5.0)),
        ];
        let threads = vec![
            ThreadInfo::new(0, vec![(0, 5.0), (1, 2.0), (0, 3.0)]),
            ThreadInfo::new(1, vec![(1, 1.0), (0, 0.0), (1, 4.0)]),
        ];
        let p = PlacementProblem::new(params, vcs, threads).unwrap();
        assert_eq!(
            p.vc_accessors(0),
            &[(0, 8.0)][..],
            "non-adjacent entries must merge"
        );
        assert_eq!(p.vc_accessors(1), &[(0, 2.0), (1, 5.0)][..]);
        assert_eq!(p.vc_accesses(0), 8.0);
        assert_eq!(p.vc_accesses(1), 7.0);
    }

    #[test]
    fn vc_accessors_filters_zero() {
        let p = tiny_problem();
        let acc = p.vc_accessors(1);
        assert_eq!(acc, vec![(0, 2.0), (1, 3.0)]);
        assert_eq!(p.vc_accessors(0), vec![(0, 10.0)]);
    }

    #[test]
    fn problem_rejects_bad_ids() {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let vcs = vec![VcInfo::new(7, VcKind::Global, MissCurve::zero())];
        assert!(PlacementProblem::new(params, vcs, vec![]).is_err());
    }

    #[test]
    fn problem_rejects_unknown_vc_reference() {
        let params = SystemParams::default_for_mesh(Mesh::new(2, 2), 100);
        let threads = vec![ThreadInfo::new(0, vec![(3, 1.0)])];
        assert!(PlacementProblem::new(params, vec![], threads).is_err());
    }

    #[test]
    fn problem_rejects_too_many_threads() {
        let params = SystemParams::default_for_mesh(Mesh::new(1, 2), 100);
        let threads = (0..3).map(|i| ThreadInfo::new(i, vec![])).collect();
        assert!(PlacementProblem::new(params, vec![], threads).is_err());
    }

    #[test]
    fn feasibility_checks_bank_capacity() {
        let p = tiny_problem();
        let mut placement = Placement::empty(2, 2, 4);
        placement.thread_cores = vec![TileId(0), TileId(1)];
        placement[(0, 0)] = 60;
        placement[(1, 0)] = 50; // 110 > 100
        assert!(placement.check_feasible(&p).is_err());
        placement[(1, 0)] = 40;
        assert!(placement.check_feasible(&p).is_ok());
    }

    #[test]
    fn feasibility_checks_distinct_cores() {
        let p = tiny_problem();
        let placement = Placement::empty(2, 2, 4); // both threads on tile 0
        assert!(placement.check_feasible(&p).is_err());
    }

    #[test]
    fn vc_banks_lists_nonzero() {
        let mut placement = Placement::empty(1, 1, 4);
        placement[(0, 2)] = 5;
        assert_eq!(placement.vc_banks(0), vec![(2, 5)]);
        assert_eq!(placement.vc_total(0), 5);
        assert_eq!(placement.bank_used(2), 5);
    }

    #[test]
    fn reset_reshapes_and_zeroes_in_place() {
        let mut placement = Placement::empty(2, 3, 4);
        placement[(2, 3)] = 7;
        placement.thread_cores[1] = TileId(5);
        placement.reset(1, 2, 6);
        assert_eq!(placement.thread_cores, vec![TileId(0)]);
        assert_eq!(placement.num_vcs(), 2);
        assert_eq!(placement.num_banks(), 6);
        for d in 0..2 {
            assert!(placement.vc_row(d).iter().all(|&l| l == 0));
        }
        assert_eq!(placement, Placement::empty(1, 2, 6));
    }

    #[test]
    fn from_rows_round_trips() {
        let p = Placement::from_rows(vec![TileId(1)], vec![vec![1, 2], vec![0, 4]]);
        assert_eq!(p.num_vcs(), 2);
        assert_eq!(p.num_banks(), 2);
        assert_eq!(p.vc_row(0), &[1, 2]);
        assert_eq!(p[(1, 1)], 4);
        assert_eq!(p.vc_total(1), 4);
        assert_eq!(p.bank_used(1), 6);
    }

    #[test]
    fn default_params_have_sane_memory_latency() {
        let params = SystemParams::default_for_mesh(Mesh::new(8, 8), 8192);
        assert!(params.mem_latency > 120.0 && params.mem_latency < 300.0);
        assert_eq!(params.total_lines(), 64 * 8192);
    }
}

//! Complete per-epoch planners and baseline policies.
//!
//! * [`CdcsPlanner`] — the paper's four-step reconfiguration (Fig. 4), with
//!   per-step toggles used by the Fig. 12 factor analysis (+L, +T, +D).
//! * [`JigsawPlanner`] — the Jigsaw baseline: miss-driven allocation and
//!   greedy placement, threads left where the external scheduler pinned
//!   them.
//! * [`clustered_cores`] / [`random_cores`] — the two fixed thread
//!   schedulers the paper pairs with Jigsaw (Jigsaw+C, Jigsaw+R).
//! * [`RNucaPolicy`] — R-NUCA's classification-based bank mapping (private →
//!   local bank, shared → chip-wide interleaving, instructions → rotational
//!   interleaving). S-NUCA needs no planner: lines hash over all banks.
//! * [`HierarchicalPlanner`] — region-decomposed CDCS planning with
//!   incremental warm-start reconfiguration for mega-meshes (256–1024
//!   tiles).

mod hierarchical;

pub use hierarchical::HierarchicalPlanner;

use crate::alloc::{latency_aware_sizes_into, miss_driven_sizes_into};
use crate::place::{
    greedy_place_into, optimistic_place_into, place_threads_into, trade_refine_with, PlanScratch,
};
use crate::{Placement, PlacementProblem};
use cdcs_mesh::{Coord, Mesh, TileId, Topology};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};

/// A per-epoch planner: given the epoch's measured problem and the current
/// thread placement, produce the next placement.
pub trait Planner {
    /// Plans the next epoch. `current_cores` is where threads run now;
    /// planners that do not move threads must return it unchanged.
    fn plan(&self, problem: &PlacementProblem, current_cores: &[TileId]) -> Placement;

    /// Short display name (used by the experiment harness).
    fn name(&self) -> &'static str;
}

/// The CDCS planner (§IV, Fig. 4), with per-step toggles for the Fig. 12
/// factor analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdcsPlanner {
    /// Step 1 toggle (+L): allocate from total-latency curves instead of
    /// miss curves.
    pub latency_aware: bool,
    /// Step 3 toggle (+T): place threads (otherwise keep `current_cores`).
    pub place_threads: bool,
    /// Step 4 toggle (+D): run the trade refinement after greedy placement.
    pub refine_trades: bool,
    /// Allocation granularity in lines (64 KB = 1024 lines in the paper).
    pub granularity: u64,
    /// Greedy placement chunk in lines.
    pub chunk: u64,
    /// Thread-migration hysteresis in hops (see
    /// [`crate::place::place_threads`]); 0 reproduces the paper's literal
    /// recomputation.
    pub stability_bias: f64,
}

impl Default for CdcsPlanner {
    /// Full CDCS: +L, +T and +D enabled, 64 KB granularity, 1-hop migration
    /// hysteresis.
    fn default() -> Self {
        CdcsPlanner {
            latency_aware: true,
            place_threads: true,
            refine_trades: true,
            granularity: 1024,
            chunk: 1024,
            stability_bias: 1.0,
        }
    }
}

impl CdcsPlanner {
    /// The Fig. 12 variants: Jigsaw+R plus individual CDCS techniques.
    /// `(latency_aware, place_threads, refine_trades)`.
    pub fn with_features(latency_aware: bool, place_threads: bool, refine_trades: bool) -> Self {
        CdcsPlanner {
            latency_aware,
            place_threads,
            refine_trades,
            ..Self::default()
        }
    }

    /// Convenience: plans with threads initially at tiles `0..T` (only
    /// sensible when `place_threads` is on or for tests).
    pub fn plan(&self, problem: &PlacementProblem) -> Placement {
        let cores: Vec<TileId> = (0..problem.threads.len() as u16).map(TileId).collect();
        Planner::plan(self, problem, &cores)
    }

    /// Plans one epoch against caller-owned buffers (the hot path: the
    /// simulator calls this every reconfiguration with one long-lived
    /// scratch, so the four steps run without steady-state allocation in
    /// their cost evaluations).
    pub fn plan_with(
        &self,
        problem: &PlacementProblem,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
    ) -> Placement {
        let mut placement = Placement::default();
        self.plan_into(problem, current_cores, scratch, &mut placement);
        placement
    }

    /// [`Self::plan_with`] writing into a caller-pooled output buffer. The
    /// simulator keeps one `Placement` buffer per scheme and swaps it with
    /// the previous epoch's plan, so steady-state reconfigurations emit
    /// their placement without allocating or cloning the `vc × bank` matrix
    /// (pinned by `crates/core/tests/alloc_free.rs`).
    // lint: zero-alloc
    pub fn plan_into(
        &self,
        problem: &PlacementProblem,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
        out: &mut Placement,
    ) {
        // The step outputs live in the scratch between epochs; they are
        // taken out for the duration of the plan (so the scratch can still
        // be threaded through each step) and returned warm at the end —
        // the whole reconfiguration allocates nothing in steady state
        // (pinned by `crates/core/tests/alloc_free.rs`).
        let mut sizes = std::mem::take(&mut scratch.sizes);
        let mut optimistic = std::mem::take(&mut scratch.optimistic);
        let mut cores = std::mem::take(&mut scratch.cores);
        // Step 1: capacity allocation (latency-aware or miss-driven).
        if self.latency_aware {
            latency_aware_sizes_into(problem, self.granularity, scratch, &mut sizes);
        } else {
            miss_driven_sizes_into(problem, self.granularity, scratch, &mut sizes);
        }
        // Step 2: optimistic contention-aware VC placement, anchored to the
        // current cores on contention ties.
        optimistic_place_into(
            problem,
            &sizes,
            Some(current_cores),
            scratch,
            &mut optimistic,
        );
        // Step 3: thread placement.
        if self.place_threads {
            place_threads_into(
                problem,
                &sizes,
                &optimistic,
                Some(current_cores),
                self.stability_bias,
                scratch,
                &mut cores,
            );
        } else {
            cores.clear();
            cores.extend_from_slice(current_cores);
        }
        // Step 4: refined VC placement (greedy start + trades).
        greedy_place_into(problem, &sizes, &cores, self.chunk, scratch, out);
        if self.refine_trades {
            trade_refine_with(problem, out, scratch);
        }
        scratch.sizes = sizes;
        scratch.optimistic = optimistic;
        scratch.cores = cores;
    }
    // lint: end-zero-alloc
}

impl Planner for CdcsPlanner {
    fn plan(&self, problem: &PlacementProblem, current_cores: &[TileId]) -> Placement {
        self.plan_with(problem, current_cores, &mut PlanScratch::new())
    }

    fn name(&self) -> &'static str {
        match (self.latency_aware, self.place_threads, self.refine_trades) {
            (true, true, true) => "CDCS",
            (true, false, false) => "Jigsaw+L",
            (false, true, false) => "Jigsaw+T",
            (false, false, true) => "Jigsaw+D",
            (false, false, false) => "Jigsaw-core",
            _ => "CDCS-variant",
        }
    }
}

/// The Jigsaw baseline (§III of the paper, [Beckmann & Sanchez, PACT'13]):
/// miss-driven Peekahead allocation plus greedy placement. Threads stay
/// where the external scheduler put them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JigsawPlanner {
    /// Allocation granularity in lines.
    pub granularity: u64,
    /// Greedy placement chunk in lines.
    pub chunk: u64,
}

impl Default for JigsawPlanner {
    fn default() -> Self {
        JigsawPlanner {
            granularity: 1024,
            chunk: 1024,
        }
    }
}

impl JigsawPlanner {
    /// Plans one epoch against caller-owned buffers (see
    /// [`CdcsPlanner::plan_with`]).
    pub fn plan_with(
        &self,
        problem: &PlacementProblem,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
    ) -> Placement {
        let mut placement = Placement::default();
        self.plan_into(problem, current_cores, scratch, &mut placement);
        placement
    }

    /// [`Self::plan_with`] writing into a caller-pooled output buffer (see
    /// [`CdcsPlanner::plan_into`]).
    // lint: zero-alloc
    pub fn plan_into(
        &self,
        problem: &PlacementProblem,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
        out: &mut Placement,
    ) {
        let mut sizes = std::mem::take(&mut scratch.sizes);
        miss_driven_sizes_into(problem, self.granularity, scratch, &mut sizes);
        greedy_place_into(problem, &sizes, current_cores, self.chunk, scratch, out);
        scratch.sizes = sizes;
    }
    // lint: end-zero-alloc
}

impl Planner for JigsawPlanner {
    fn plan(&self, problem: &PlacementProblem, current_cores: &[TileId]) -> Placement {
        self.plan_with(problem, current_cores, &mut PlanScratch::new())
    }

    fn name(&self) -> &'static str {
        "Jigsaw"
    }
}

/// Clustered thread scheduling: threads pinned to tiles in row-major order,
/// so consecutive threads (same process / same benchmark in our mixes) sit
/// in adjacent tiles — the §II-B "grouped by type" scheduler (Jigsaw+C).
pub fn clustered_cores(num_threads: usize, mesh: &Mesh) -> Vec<TileId> {
    assert!(num_threads <= mesh.num_tiles(), "more threads than tiles");
    (0..num_threads as u16).map(TileId).collect()
}

/// Random thread scheduling (Jigsaw+R): a seeded permutation of tiles,
/// pinned at initialization (§VI-A).
pub fn random_cores(num_threads: usize, mesh: &Mesh, seed: u64) -> Vec<TileId> {
    assert!(num_threads <= mesh.num_tiles(), "more threads than tiles");
    let mut tiles = mesh.tiles();
    let mut rng = StdRng::seed_from_u64(seed);
    tiles.shuffle(&mut rng);
    tiles.truncate(num_threads);
    tiles
}

/// R-NUCA's data classes (§II-A): the policy specializes placement per
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnucaClass {
    /// Thread-private data: mapped to the accessing core's local bank.
    Private,
    /// Data shared by several threads: interleaved across all banks.
    Shared,
    /// Instructions (code pages): rotationally interleaved over a small
    /// cluster of nearby banks.
    Instruction,
}

/// R-NUCA bank mapping [Hardavellas et al., ISCA'09], shared-baseline
/// variant: no partitioning, placement decided per access class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RNucaPolicy {
    /// Rotational-interleaving cluster width (paper uses 4-way).
    pub rotation_ways: u16,
}

impl Default for RNucaPolicy {
    fn default() -> Self {
        RNucaPolicy { rotation_ways: 4 }
    }
}

impl RNucaPolicy {
    /// The bank an access maps to.
    ///
    /// * `Private` → the accessing tile's own bank (minimal latency);
    /// * `Shared` → address-interleaved over the whole chip;
    /// * `Instruction` → rotational interleaving: the address picks one bank
    ///   out of a `rotation_ways`-size neighbourhood anchored at the
    ///   accessing tile, so nearby cores share code capacity without chip-
    ///   wide traffic.
    pub fn bank_for(
        &self,
        class: RnucaClass,
        line: cdcs_cache::Line,
        local: TileId,
        mesh: &Mesh,
    ) -> TileId {
        match class {
            RnucaClass::Private => local,
            RnucaClass::Shared => TileId(cdcs_cache::hash::bucket(line.0, mesh.num_tiles()) as u16),
            RnucaClass::Instruction => {
                // 2x2 cluster anchored at the local tile's even coordinates;
                // the hash rotates within the cluster.
                let c = mesh.coord(local);
                let base = Coord {
                    x: c.x & !1,
                    y: c.y & !1,
                };
                let pick = cdcs_cache::hash::bucket(line.0, self.rotation_ways as usize);
                let dx = (pick & 1) as u16;
                let dy = (pick >> 1) as u16;
                let x = (base.x + dx).min(mesh.cols() - 1);
                let y = (base.y + dy).min(mesh.rows() - 1);
                mesh.tile_at(Coord { x, y })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{on_chip_latency, total_latency};
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::{Line, MissCurve};

    /// A contention-heavy scenario: four omnet-like threads (big cliffy
    /// VCs) and four streaming threads on a 4x4 chip.
    fn contended_problem() -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::new(4, 4), 1024);
        let mut vcs = Vec::new();
        let mut threads = Vec::new();
        for i in 0..4u32 {
            vcs.push(VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::new(vec![(0.0, 1000.0), (3072.0, 50.0)]),
            ));
            threads.push(ThreadInfo::new(i, vec![(i, 1000.0)]));
        }
        for i in 4..8u32 {
            vcs.push(VcInfo::new(
                i,
                VcKind::thread_private(i),
                MissCurve::flat(500.0),
            ));
            threads.push(ThreadInfo::new(i, vec![(i, 500.0)]));
        }
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn cdcs_beats_jigsaw_clustered_on_contended_mix() {
        let p = contended_problem();
        let clustered = clustered_cores(8, p.params.mesh());
        let jigsaw = JigsawPlanner::default().plan(&p, &clustered);
        let cdcs = Planner::plan(&CdcsPlanner::default(), &p, &clustered);
        jigsaw.check_feasible(&p).unwrap();
        cdcs.check_feasible(&p).unwrap();
        let (tj, tc) = (total_latency(&p, &jigsaw), total_latency(&p, &cdcs));
        assert!(tc < tj, "CDCS {tc} must beat Jigsaw+C {tj}");
    }

    #[test]
    fn feature_toggles_compose() {
        let p = contended_problem();
        let pinned = clustered_cores(8, p.params.mesh());
        let base = Planner::plan(
            &CdcsPlanner::with_features(false, false, false),
            &p,
            &pinned,
        );
        let with_t = Planner::plan(&CdcsPlanner::with_features(false, true, false), &p, &pinned);
        // +T must not break feasibility and must not increase on-chip
        // latency on this contended mix.
        base.check_feasible(&p).unwrap();
        with_t.check_feasible(&p).unwrap();
        assert!(on_chip_latency(&p, &with_t) <= on_chip_latency(&p, &base) + 1e-6);
    }

    #[test]
    fn jigsaw_does_not_move_threads() {
        let p = contended_problem();
        let cores = random_cores(8, p.params.mesh(), 99);
        let placement = JigsawPlanner::default().plan(&p, &cores);
        assert_eq!(placement.thread_cores, cores);
    }

    #[test]
    fn cdcs_moves_threads() {
        let p = contended_problem();
        let cores = clustered_cores(8, p.params.mesh());
        let placement = Planner::plan(&CdcsPlanner::default(), &p, &cores);
        assert_ne!(
            placement.thread_cores, cores,
            "CDCS should re-place threads"
        );
    }

    #[test]
    fn schedulers_produce_distinct_tiles() {
        let mesh = Mesh::new(4, 4);
        for cores in [clustered_cores(10, &mesh), random_cores(10, &mesh, 3)] {
            let set: std::collections::HashSet<_> = cores.iter().collect();
            assert_eq!(set.len(), 10);
        }
    }

    #[test]
    fn random_cores_deterministic_per_seed() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(random_cores(8, &mesh, 5), random_cores(8, &mesh, 5));
        assert_ne!(random_cores(8, &mesh, 5), random_cores(8, &mesh, 6));
    }

    #[test]
    fn rnuca_private_is_local() {
        let mesh = Mesh::new(4, 4);
        let policy = RNucaPolicy::default();
        for t in mesh.tiles() {
            assert_eq!(policy.bank_for(RnucaClass::Private, Line(123), t, &mesh), t);
        }
    }

    #[test]
    fn rnuca_shared_spreads_over_chip() {
        let mesh = Mesh::new(4, 4);
        let policy = RNucaPolicy::default();
        let mut seen = std::collections::HashSet::new();
        for a in 0..1000u64 {
            seen.insert(policy.bank_for(RnucaClass::Shared, Line(a), TileId(0), &mesh));
        }
        assert_eq!(seen.len(), 16, "shared data must hit every bank");
    }

    #[test]
    fn rnuca_instructions_stay_in_cluster() {
        let mesh = Mesh::new(4, 4);
        let policy = RNucaPolicy::default();
        let local = TileId(5); // coord (1,1): cluster anchored at (0,0)
        for a in 0..100u64 {
            let b = policy.bank_for(RnucaClass::Instruction, Line(a), local, &mesh);
            let c = mesh.coord(b);
            assert!(c.x <= 1 && c.y <= 1, "instruction bank {b} outside cluster");
        }
    }

    #[test]
    fn planner_names_are_stable() {
        assert_eq!(Planner::name(&CdcsPlanner::default()), "CDCS");
        assert_eq!(Planner::name(&JigsawPlanner::default()), "Jigsaw");
    }
}

//! Hierarchical region planning with incremental warm starts.
//!
//! The flat CDCS planner solves one chip-wide placement problem whose cost
//! grows superlinearly with tile count — fine at the paper's 64 tiles, a
//! wall at 1024. [`HierarchicalPlanner`] decomposes it:
//!
//! 1. **Global sizing** — Peekahead capacity allocation over the whole chip,
//!    exactly as the flat planner (§IV-C; latency-aware or miss-driven per
//!    the inner planner's toggle).
//! 2. **Region assignment** — virtual caches claim capacity in rectangular
//!    regions ([`cdcs_mesh::RegionGrid`]) cheapest-first, priced by the
//!    region-aggregated round-trip tables ([`cdcs_mesh::RegionTables`]): a
//!    `vcs × regions` problem instead of `vcs × banks`.
//! 3. **Thread placement** — threads move toward the share-weighted centers
//!    of their VCs' regions (same most-constrained-first engine as the flat
//!    planner's §IV-E step).
//! 4. **Per-region solve** — each region's shares are placed onto its own
//!    banks independently, cheapest bank first. No step ever touches the
//!    flat planner's `vcs × banks` cost matrix or `tiles²` spiral cache, so
//!    scratch memory stays linear in the problem (pinned by
//!    `tests/scratch_growth.rs`).
//!
//! **Incremental reconfiguration** rides on top: each planned epoch records
//! a small demand signature per VC (miss-curve samples + access rate). When
//! the next epoch's signatures differ by at most `change_threshold`
//! (relative) for most VCs, the planner *warm-starts*: unchanged VCs keep
//! their previous placement rows verbatim — bit-stable — and only the
//! changed VCs are re-sized (against the residual capacity), re-assigned to
//! regions, and re-placed within the affected regions. A whole-mesh region
//! (`num_regions == 1`) delegates to the flat planner unchanged, which makes
//! the hierarchy a strict superset: one region + warm starts disabled is
//! bit-identical to flat planning (pinned by `tests/hier_equivalence.rs`).

use super::{CdcsPlanner, Planner};
use crate::alloc::{latency_aware_sizes_stepped_into, miss_driven_sizes_into, residual_sizes_into};
use crate::place::{place_threads_into, vc_bank_cost, HierScratch, PlanScratch};
use crate::{Placement, PlacementProblem};
use cdcs_mesh::geometry::Point;
use cdcs_mesh::TileId;
use serde::{Deserialize, Serialize};

/// Floats per VC in a demand signature: miss curve at zero, at a quarter
/// and at half of chip capacity, plus the VC's total access rate.
pub(crate) const SIG_COMPONENTS: usize = 4;

/// The hierarchical planner: an outer region-level solve wrapping the flat
/// [`CdcsPlanner`], plus signature-driven incremental warm starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalPlanner {
    /// The flat planner supplying sizing/threading toggles, granularity and
    /// chunk — and the whole algorithm when the partition is one region.
    pub inner: CdcsPlanner,
    /// Region side in tiles (a 32×32 mesh with side 4 plans over 64
    /// regions). Sides at or above the mesh dimensions collapse to one
    /// region, i.e. flat planning.
    pub region_side: u16,
    /// Relative per-VC demand-signature delta at or below which a VC counts
    /// as unchanged. `0.0` disables warm starts: every epoch replans from
    /// scratch (and one region + `0.0` is bit-identical to the flat
    /// planner).
    pub change_threshold: f64,
}

impl HierarchicalPlanner {
    /// Full-CDCS inner planner with the given region side and threshold.
    pub fn new(region_side: u16, change_threshold: f64) -> Self {
        HierarchicalPlanner {
            inner: CdcsPlanner::default(),
            region_side,
            change_threshold,
        }
    }

    /// Plans one epoch, optionally warm-starting from the previous epoch's
    /// applied placement.
    ///
    /// `prev` is the placement the chip currently runs (the engine's
    /// `last_placement`); pass `None` on the first epoch or after any
    /// discontinuity. The warm path engages only when warm starts are
    /// enabled (`change_threshold > 0`), the recorded signatures match the
    /// problem's shape, `prev` agrees with `current_cores`, and at most half
    /// the VCs changed — otherwise the epoch replans cold (hierarchically).
    ///
    /// # Panics
    ///
    /// Panics if `region_side` is zero or `current_cores` length differs
    /// from the problem's thread count.
    // lint: zero-alloc
    pub fn plan_into(
        &self,
        problem: &PlacementProblem,
        prev: Option<&Placement>,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
        out: &mut Placement,
    ) {
        assert!(self.region_side > 0, "region side must be non-zero");
        assert_eq!(
            current_cores.len(),
            problem.threads.len(),
            "one core per thread"
        );
        scratch.hier.ensure_grid(problem, self.region_side);
        let num_vcs = problem.vcs.len();
        let num_regions = scratch
            .hier
            .grid
            .as_ref()
            .expect("grid ensured")
            .num_regions();

        // Record this epoch's demand signatures up front; they become the
        // baseline for the next epoch whichever path plans this one.
        {
            let hier = &mut scratch.hier;
            hier.sig_next.clear();
            hier.sig_next.resize(num_vcs * SIG_COMPONENTS, 0.0);
            for d in 0..num_vcs {
                let lo = d * SIG_COMPONENTS;
                write_signature(problem, d, &mut hier.sig_next[lo..lo + SIG_COMPONENTS]);
            }
        }

        if num_regions == 1 {
            // The partition is the whole mesh: hierarchy adds nothing, so
            // run the flat planner verbatim (bit-identical by construction).
            self.inner.plan_into(problem, current_cores, scratch, out);
        } else {
            let warm = self.change_threshold > 0.0
                && scratch.hier.sig_valid
                && scratch.hier.sig.len() == num_vcs * SIG_COMPONENTS
                && prev.is_some_and(|p| {
                    p.num_vcs() == num_vcs
                        && p.num_banks() == problem.params.num_banks()
                        && p.thread_cores == current_cores
                });
            let mut planned = false;
            if warm {
                let hier = &mut scratch.hier;
                hier.changed.clear();
                let mut n_changed = 0usize;
                for d in 0..num_vcs {
                    let lo = d * SIG_COMPONENTS;
                    let hi = lo + SIG_COMPONENTS;
                    let c = signature_delta(&hier.sig[lo..hi], &hier.sig_next[lo..hi])
                        > self.change_threshold;
                    hier.changed.push(c);
                    n_changed += usize::from(c);
                }
                // A mostly-changed epoch replans cold: patching placements
                // around a majority of moving VCs costs nearly as much and
                // places worse.
                if n_changed * 2 <= num_vcs {
                    self.plan_warm(problem, prev.expect("warm implies prev"), scratch, out);
                    planned = true;
                }
            }
            if !planned {
                self.plan_cold(problem, current_cores, scratch, out);
            }
        }

        let hier = &mut scratch.hier;
        std::mem::swap(&mut hier.sig, &mut hier.sig_next);
        hier.sig_valid = true;
    }
    // lint: end-zero-alloc

    /// [`Self::plan_into`] returning a fresh placement.
    pub fn plan_with(
        &self,
        problem: &PlacementProblem,
        prev: Option<&Placement>,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
    ) -> Placement {
        let mut out = Placement::default();
        self.plan_into(problem, prev, current_cores, scratch, &mut out);
        out
    }

    /// The cold hierarchical plan: global sizing, region assignment, thread
    /// placement, independent per-region solves.
    // lint: zero-alloc
    fn plan_cold(
        &self,
        problem: &PlacementProblem,
        current_cores: &[TileId],
        scratch: &mut PlanScratch,
        out: &mut Placement,
    ) {
        let banks = problem.params.num_banks();
        let num_vcs = problem.vcs.len();

        // Step 1: global capacity allocation — the flat planner's sizing on
        // a coarsened capacity grid. The flat per-bank grid makes sizing
        // O(VCs × banks); at mega-mesh scale that quadratic term dwarfs the
        // actual placement work, so the hierarchical path samples the
        // total-latency curves every `grid_step` banks instead (≤128 grid
        // points at ≤128 banks, the step is 1: identical to flat sizing).
        let mut sizes = std::mem::take(&mut scratch.sizes);
        if self.inner.latency_aware {
            latency_aware_sizes_stepped_into(
                problem,
                self.inner.granularity,
                grid_step_banks(problem),
                scratch,
                &mut sizes,
            );
        } else {
            miss_driven_sizes_into(problem, self.inner.granularity, scratch, &mut sizes);
        }

        // Step 2: assign VC shares to regions over the aggregated tables.
        {
            let hier = &mut scratch.hier;
            let grid = hier.grid.as_ref().expect("grid ensured");
            let regions = grid.num_regions();
            hier.region_free.clear();
            for r in 0..regions {
                hier.region_free
                    .push(grid.tiles(r).len() as u64 * problem.params.bank_lines);
            }
            hier.share.clear();
            hier.share.resize(num_vcs * regions, 0);
            assign_regions(hier, problem, current_cores, &sizes, None);
        }

        // Step 3: thread placement toward share-weighted region centers,
        // reusing the flat planner's most-constrained-first engine with the
        // region centers standing in for the optimistic per-bank centers.
        let mut cores = std::mem::take(&mut scratch.cores);
        if self.inner.place_threads {
            let mut optimistic = std::mem::take(&mut scratch.optimistic);
            fill_region_centers(&scratch.hier, &sizes, &mut optimistic);
            place_threads_into(
                problem,
                &sizes,
                &optimistic,
                Some(current_cores),
                self.inner.stability_bias,
                scratch,
                &mut cores,
            );
            scratch.optimistic = optimistic;
        } else {
            cores.clear();
            cores.extend_from_slice(current_cores);
        }

        // Step 4: solve each region independently against the final cores.
        out.reset(problem.threads.len(), num_vcs, banks);
        out.thread_cores.copy_from_slice(&cores);
        {
            let PlanScratch { hier, free, .. } = &mut *scratch;
            free.clear();
            free.resize(banks, problem.params.bank_lines);
            place_regions(hier, problem, &cores, None, free, out);
        }

        scratch.sizes = sizes;
        scratch.cores = cores;
    }
    // lint: end-zero-alloc

    /// The incremental warm start: unchanged VCs keep their previous rows
    /// verbatim (and threads stay on their cores); changed VCs are re-sized
    /// against the residual capacity, re-assigned to regions, and re-placed
    /// within the affected regions only.
    // lint: zero-alloc
    fn plan_warm(
        &self,
        problem: &PlacementProblem,
        prev: &Placement,
        scratch: &mut PlanScratch,
        out: &mut Placement,
    ) {
        let banks = problem.params.num_banks();
        let num_vcs = problem.vcs.len();
        let bank_lines = problem.params.bank_lines;

        // Keep every unchanged VC verbatim: one bulk matrix copy, then zero
        // the (few) changed rows. A sequential column-sum sweep derives the
        // per-bank free capacity the changed VCs will be re-placed into —
        // two linear passes over the `vc × bank` matrix total, where reset
        // (a full zero-fill) + per-row copies + per-row free updates was
        // three; at 1024 tiles the matrix is 8 MiB, so passes dominate the
        // warm epoch.
        out.copy_from(prev);
        let residual: u64;
        {
            let PlanScratch { hier, free, .. } = &mut *scratch;
            for d in 0..num_vcs {
                if hier.changed[d] {
                    out.vc_row_mut(d).fill(0);
                }
            }
            free.clear();
            free.resize(banks, bank_lines);
            for d in 0..num_vcs {
                for (f, &lines) in free.iter_mut().zip(out.vc_row(d)) {
                    *f -= lines;
                }
            }
            // Total capacity minus what the unchanged VCs kept.
            residual = free.iter().sum();
            let grid = hier.grid.as_ref().expect("grid ensured");
            let regions = grid.num_regions();
            hier.region_free.clear();
            for r in 0..regions {
                hier.region_free
                    .push(grid.tiles(r).iter().map(|&t| free[t.index()]).sum());
            }
        }

        // Re-size only the changed VCs against the residual capacity.
        let changed = std::mem::take(&mut scratch.hier.changed);
        let mut sizes = std::mem::take(&mut scratch.sizes);
        residual_sizes_into(
            problem,
            &changed,
            residual,
            self.inner.latency_aware,
            self.inner.granularity,
            grid_step_banks(problem),
            scratch,
            &mut sizes,
        );

        // Re-assign and re-place the changed VCs; every other row of `out`
        // is already final.
        {
            let PlanScratch { hier, free, .. } = &mut *scratch;
            let regions = hier.grid.as_ref().expect("grid ensured").num_regions();
            hier.share.clear();
            hier.share.resize(num_vcs * regions, 0);
            assign_regions(hier, problem, &prev.thread_cores, &sizes, Some(&changed));
            place_regions(hier, problem, &prev.thread_cores, Some(&changed), free, out);
        }

        scratch.sizes = sizes;
        scratch.hier.changed = changed;
    }
    // lint: end-zero-alloc
}

impl Planner for HierarchicalPlanner {
    fn plan(&self, problem: &PlacementProblem, current_cores: &[TileId]) -> Placement {
        self.plan_with(problem, None, current_cores, &mut PlanScratch::new())
    }

    fn name(&self) -> &'static str {
        "CDCS-H"
    }
}

/// Writes one VC's demand signature: miss-curve samples at 0, L/4 and L/2
/// (L = chip lines) plus the VC's total access rate.
/// Capacity-grid coarsening for the sizing step: sample the total-latency
/// curves every `ceil(banks / 128)` banks, bounding the grid to ~128
/// capacity points at any scale. At ≤128 banks the step is 1, i.e. exactly
/// the flat planner's per-bank grid.
fn grid_step_banks(problem: &PlacementProblem) -> u64 {
    (problem.params.num_banks() as u64).div_ceil(128)
}

fn write_signature(problem: &PlacementProblem, d: usize, out: &mut [f64]) {
    let total = problem.params.total_lines() as f64;
    let curve = &problem.vcs[d].curve;
    out[0] = curve.at_zero();
    out[1] = curve.misses_at(0.25 * total);
    out[2] = curve.misses_at(0.5 * total);
    out[3] = problem.vc_accesses(d as u32);
}

/// Largest relative component delta between two signatures.
fn signature_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-9))
        .fold(0.0, f64::max)
}

/// Greedy region assignment: VCs in descending-size order each claim their
/// cheapest regions (mean round-trip from their accessors' cores, ties by
/// region id) until their size is covered. `filter` restricts the pass to a
/// subset of VCs (the warm path's changed set); `hier.region_free` must hold
/// the capacity available to this pass and `hier.share` must be zeroed for
/// every VC being assigned.
fn assign_regions(
    hier: &mut HierScratch,
    problem: &PlacementProblem,
    cores: &[TileId],
    sizes: &[u64],
    filter: Option<&[bool]>,
) {
    let regions = hier.grid.as_ref().expect("grid ensured").num_regions();
    let mut vc_order = std::mem::take(&mut hier.vc_order);
    vc_order.clear();
    vc_order.extend(
        (0..sizes.len() as u32)
            .filter(|&d| sizes[d as usize] > 0 && filter.is_none_or(|f| f[d as usize])),
    );
    vc_order.sort_unstable_by(|&a, &b| sizes[b as usize].cmp(&sizes[a as usize]).then(a.cmp(&b)));

    for &d in &vc_order {
        let d = d as usize;
        hier.region_cost.clear();
        hier.region_cost.resize(regions, 0.0);
        for &(t, rate) in problem.vc_accessors(d as u32) {
            let core = cores[t as usize];
            for (r, slot) in hier.region_cost.iter_mut().enumerate() {
                *slot += rate * hier.tables.tile_mean_round_trip(core, r);
            }
        }
        hier.region_order.clear();
        hier.region_order.extend(0..regions as u32);
        let cost = &hier.region_cost;
        hier.region_order.sort_unstable_by(|&a, &b| {
            cost[a as usize]
                .partial_cmp(&cost[b as usize])
                .expect("finite region costs")
                .then(a.cmp(&b))
        });
        let mut need = sizes[d];
        for i in 0..regions {
            if need == 0 {
                break;
            }
            let r = hier.region_order[i] as usize;
            let take = need.min(hier.region_free[r]);
            if take > 0 {
                hier.share[d * regions + r] += take;
                hier.region_free[r] -= take;
                need -= take;
            }
        }
        debug_assert_eq!(need, 0, "region capacities must cover vc {d}");
    }
    hier.vc_order = vc_order;
}

/// Places each region's shares onto its own banks, cheapest first (exact
/// accessor-weighted round trips, but only over the region's `side²` banks).
/// VCs within a region go largest share first, ties by id. `filter`
/// restricts placement to a subset of VCs; `free` holds per-bank free lines
/// and is decremented in place.
fn place_regions(
    hier: &mut HierScratch,
    problem: &PlacementProblem,
    cores: &[TileId],
    filter: Option<&[bool]>,
    free: &mut [u64],
    out: &mut Placement,
) {
    let grid = hier.grid.as_ref().expect("grid ensured");
    let regions = grid.num_regions();
    let num_vcs = problem.vcs.len();
    for r in 0..regions {
        hier.region_vcs.clear();
        for d in 0..num_vcs {
            if hier.share[d * regions + r] > 0 && filter.is_none_or(|f| f[d]) {
                hier.region_vcs.push(d as u32);
            }
        }
        let share = &hier.share;
        hier.region_vcs.sort_unstable_by(|&a, &b| {
            share[b as usize * regions + r]
                .cmp(&share[a as usize * regions + r])
                .then(a.cmp(&b))
        });
        let tiles = grid.tiles(r);
        for i in 0..hier.region_vcs.len() {
            let d = hier.region_vcs[i] as usize;
            hier.bank_cost.clear();
            hier.bank_cost.extend(
                tiles
                    .iter()
                    .map(|&b| vc_bank_cost(problem, cores, d as u32, b.index())),
            );
            hier.bank_rank.clear();
            hier.bank_rank.extend(0..tiles.len() as u32);
            let cost = &hier.bank_cost;
            hier.bank_rank.sort_unstable_by(|&a, &b| {
                cost[a as usize]
                    .partial_cmp(&cost[b as usize])
                    .expect("finite bank costs")
                    .then(a.cmp(&b))
            });
            let mut need = hier.share[d * regions + r];
            for j in 0..tiles.len() {
                if need == 0 {
                    break;
                }
                let b = tiles[hier.bank_rank[j] as usize].index();
                let take = need.min(free[b]);
                if take > 0 {
                    out[(d, b)] += take;
                    free[b] -= take;
                    need -= take;
                }
            }
            debug_assert_eq!(need, 0, "bank capacities must cover region {r} vc {d}");
        }
    }
}

/// Fills `optimistic.centers` with each VC's share-weighted region center
/// (the hierarchical stand-in for the optimistic placement's per-VC data
/// centers); dataless VCs get `None`, exactly as the flat step.
fn fill_region_centers(
    hier: &HierScratch,
    sizes: &[u64],
    optimistic: &mut crate::place::OptimisticPlacement,
) {
    let grid = hier.grid.as_ref().expect("grid ensured");
    let regions = grid.num_regions();
    optimistic.centers.clear();
    for (d, &size) in sizes.iter().enumerate() {
        if size == 0 {
            optimistic.centers.push(None);
            continue;
        }
        let (mut x, mut y) = (0.0, 0.0);
        for r in 0..regions {
            let s = hier.share[d * regions + r];
            if s > 0 {
                let c = grid.center(r);
                x += c.x * s as f64;
                y += c.y * s as f64;
            }
        }
        optimistic.centers.push(Some(Point {
            x: x / size as f64,
            y: y / size as f64,
        }));
    }
    optimistic.claimed.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::latency_aware_sizes_into;
    use crate::policy::clustered_cores;
    use crate::{SystemParams, ThreadInfo, VcInfo, VcKind};
    use cdcs_cache::MissCurve;
    use cdcs_mesh::Mesh;

    /// `n` thread-private VCs with distinct cliffy curves on a `side×side`
    /// chip.
    fn problem(n: usize, side: u16) -> PlacementProblem {
        problem_scaled(n, side, 1.0)
    }

    /// As [`problem`], with every access rate and miss level scaled — used
    /// to fabricate "changed demand" epochs.
    fn problem_scaled(n: usize, side: u16, scale: f64) -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
        let vcs = (0..n as u32)
            .map(|i| {
                VcInfo::new(
                    i,
                    VcKind::thread_private(i),
                    MissCurve::new(vec![
                        (0.0, scale * (1000.0 + i as f64)),
                        (2048.0 + 64.0 * i as f64, scale * 50.0),
                    ]),
                )
            })
            .collect();
        let threads = (0..n as u32)
            .map(|i| ThreadInfo::new(i, vec![(i, scale * (500.0 + i as f64))]))
            .collect();
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    /// A problem equal to [`problem`] except VCs `0..k` have their demand
    /// scaled by 3 and their working set (the miss-curve cliff) doubled, so
    /// a correct replan must change how much capacity they get.
    fn problem_with_changed_prefix(n: usize, side: u16, k: usize) -> PlacementProblem {
        let params = SystemParams::default_for_mesh(Mesh::square(side), 1024);
        let vcs = (0..n as u32)
            .map(|i| {
                let (scale, cliff) = if (i as usize) < k {
                    (3.0, 2.0)
                } else {
                    (1.0, 1.0)
                };
                VcInfo::new(
                    i,
                    VcKind::thread_private(i),
                    MissCurve::new(vec![
                        (0.0, scale * (1000.0 + i as f64)),
                        (cliff * (2048.0 + 64.0 * i as f64), scale * 50.0),
                    ]),
                )
            })
            .collect();
        let threads = (0..n as u32)
            .map(|i| ThreadInfo::new(i, vec![(i, 500.0 + i as f64)]))
            .collect();
        PlacementProblem::new(params, vcs, threads).unwrap()
    }

    #[test]
    fn cold_plan_is_feasible_and_deterministic() {
        let p = problem(16, 8);
        let cores = clustered_cores(16, p.params.mesh());
        let planner = HierarchicalPlanner::new(4, 0.0);
        let mut scratch = PlanScratch::new();
        let a = planner.plan_with(&p, None, &cores, &mut scratch);
        a.check_feasible(&p).unwrap();
        let b = planner.plan_with(&p, None, &cores, &mut scratch);
        assert_eq!(a, b, "same problem must replan identically");
    }

    #[test]
    fn cold_plan_places_all_allocated_capacity() {
        let p = problem(16, 8);
        let cores = clustered_cores(16, p.params.mesh());
        let planner = HierarchicalPlanner::new(4, 0.0);
        let placement = planner.plan_with(&p, None, &cores, &mut PlanScratch::new());
        // Miss-driven check is easier (uses all capacity); here latency-aware
        // totals must match the sizing step's output.
        let mut scratch = PlanScratch::new();
        let mut sizes = Vec::new();
        latency_aware_sizes_into(&p, planner.inner.granularity, &mut scratch, &mut sizes);
        for (d, &s) in sizes.iter().enumerate() {
            assert_eq!(placement.vc_total(d as u32), s, "vc {d}");
        }
    }

    #[test]
    fn threads_share_matrix_keeps_vcs_in_few_regions() {
        // Each VC's share should concentrate in few regions (contiguity is
        // the whole point of region planning): with 16 small VCs on 16
        // regions, no VC should be smeared over more than a handful.
        let p = problem(16, 8);
        let cores = clustered_cores(16, p.params.mesh());
        let planner = HierarchicalPlanner::new(2, 0.0);
        let mut scratch = PlanScratch::new();
        let placement = planner.plan_with(&p, None, &cores, &mut scratch);
        let grid = cdcs_mesh::RegionGrid::new(*p.params.mesh(), 2);
        for d in 0..16u32 {
            let mut regions_used = std::collections::HashSet::new();
            for (b, &lines) in placement.vc_row(d as usize).iter().enumerate() {
                if lines > 0 {
                    regions_used.insert(grid.region_of(TileId(b as u16)));
                }
            }
            assert!(
                regions_used.len() <= 4,
                "vc {d} smeared over {} regions",
                regions_used.len()
            );
        }
    }

    #[test]
    fn warm_start_keeps_unchanged_vcs_bit_stable() {
        let n = 16;
        let p0 = problem(n, 8);
        let cores = clustered_cores(n, p0.params.mesh());
        let planner = HierarchicalPlanner::new(4, 0.05);
        let mut scratch = PlanScratch::new();
        let first = planner.plan_with(&p0, None, &cores, &mut scratch);
        first.check_feasible(&p0).unwrap();

        // Epoch 2: VCs 0 and 1 triple their demand and double their working
        // set; everything else is identical. The warm path must keep rows
        // 2.. bit-identical.
        let p1 = problem_with_changed_prefix(n, 8, 2);
        let mut warm = Placement::default();
        planner.plan_into(
            &p1,
            Some(&first),
            &first.thread_cores,
            &mut scratch,
            &mut warm,
        );
        warm.check_feasible(&p1).unwrap();
        assert_eq!(warm.thread_cores, first.thread_cores, "threads must stay");
        for d in 2..n {
            assert_eq!(warm.vc_row(d), first.vc_row(d), "vc {d} must be bit-stable");
        }
        // The changed VCs were actually re-planned: their working set
        // doubled, so their allocation total must grow.
        for d in 0..2u32 {
            assert!(
                warm.vc_total(d) > first.vc_total(d),
                "changed vc {d} must be re-sized"
            );
        }
    }

    #[test]
    fn warm_start_with_identical_demand_is_fully_stable() {
        let n = 16;
        let p = problem(n, 8);
        let cores = clustered_cores(n, p.params.mesh());
        let planner = HierarchicalPlanner::new(4, 0.05);
        let mut scratch = PlanScratch::new();
        let first = planner.plan_with(&p, None, &cores, &mut scratch);
        let second = planner.plan_with(&p, Some(&first), &first.thread_cores, &mut scratch);
        assert_eq!(
            first, second,
            "identical demand must reproduce the placement"
        );
    }

    #[test]
    fn mostly_changed_epoch_replans_cold() {
        let n = 16;
        let p0 = problem(n, 8);
        let cores = clustered_cores(n, p0.params.mesh());
        let planner = HierarchicalPlanner::new(4, 0.05);
        let mut scratch = PlanScratch::new();
        let first = planner.plan_with(&p0, None, &cores, &mut scratch);

        // Every VC changes: the incremental path must fall back to a cold
        // plan, which equals planning the new problem from scratch.
        let p1 = problem_scaled(n, 8, 3.0);
        let warm = planner.plan_with(&p1, Some(&first), &first.thread_cores, &mut scratch);
        let mut cold_scratch = PlanScratch::new();
        let cold = planner.plan_with(&p1, None, &first.thread_cores, &mut cold_scratch);
        assert_eq!(warm, cold, "full-change epoch must equal a cold replan");
    }

    #[test]
    fn one_region_delegates_to_flat_planner() {
        let p = problem(8, 4);
        let cores = clustered_cores(8, p.params.mesh());
        // side >= mesh side -> one region.
        let planner = HierarchicalPlanner::new(4, 0.0);
        let hier = planner.plan_with(&p, None, &cores, &mut PlanScratch::new());
        let flat = planner.inner.plan_with(&p, &cores, &mut PlanScratch::new());
        assert_eq!(hier, flat);
    }

    #[test]
    fn planner_name_is_stable() {
        assert_eq!(Planner::name(&HierarchicalPlanner::new(4, 0.0)), "CDCS-H");
    }
}

//! VC descriptors: the bucket arrays the VTB hardware consumes.
//!
//! A VC descriptor is "an array of N bank and bank partition ids" (§III,
//! Fig. 3): an address hashes to one of N buckets and the bucket names the
//! bank (and bank partition) the line lives in. Spreading bucket counts in
//! proportion to per-bank capacity makes the ganged partitions "behave as a
//! cache of their aggregate size" — the paper's 1 MB + 3 MB example maps 16
//! and 48 of the 64 buckets.

use cdcs_cache::BankId;
use serde::{Deserialize, Serialize};

/// Number of buckets per descriptor (the paper's N = 64).
pub const DESCRIPTOR_BUCKETS: usize = 64;

/// A VC descriptor: for each bucket, which bank holds the lines hashing
/// there. (The bank-partition id is implicit in our simulator — each VC owns
/// exactly one partition per bank, indexed by VC id.)
///
/// # Example
///
/// ```
/// use cdcs_core::VcDescriptor;
/// use cdcs_cache::BankId;
///
/// // 1 MB in bank 0, 3 MB in bank 1 (the paper's §III example):
/// let desc = VcDescriptor::from_allocation(&[(0, 16384), (1, 49152)]).unwrap();
/// let histogram = desc.bucket_histogram();
/// assert_eq!(histogram[&BankId(0)], 16);
/// assert_eq!(histogram[&BankId(1)], 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcDescriptor {
    #[serde(with = "serde_buckets")]
    buckets: [BankId; DESCRIPTOR_BUCKETS],
}

/// Serde support for the fixed-size bucket array (serialized as a sequence),
/// in the vendored serde's push/pull `with`-module shape.
mod serde_buckets {
    use super::{BankId, DESCRIPTOR_BUCKETS};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(
        buckets: &[BankId; DESCRIPTOR_BUCKETS],
        s: &mut S,
    ) -> Result<(), S::Error> {
        buckets.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: &mut D,
    ) -> Result<[BankId; DESCRIPTOR_BUCKETS], D::Error> {
        let v: Vec<BankId> = Vec::deserialize(d)?;
        v.try_into()
            .map_err(|v: Vec<BankId>| serde::de::Error::invalid_length(v.len(), &"64 buckets"))
    }
}

impl VcDescriptor {
    /// Builds a descriptor from `(bank, lines)` pairs, assigning bucket
    /// counts proportional to capacity with largest-remainder rounding
    /// (every bank with non-zero capacity gets at least one bucket when
    /// possible).
    ///
    /// # Errors
    ///
    /// Returns an error if the allocation is empty or all-zero, or if more
    /// banks have capacity than there are buckets.
    pub fn from_allocation(alloc: &[(usize, u64)]) -> Result<Self, String> {
        Self::from_allocation_stable(alloc, None)
    }

    /// Like [`from_allocation`](Self::from_allocation), but keeps each
    /// bucket's previous bank assignment wherever the new counts allow.
    ///
    /// Reconfigurations only relocate lines whose *bucket* changes bank, so
    /// maximizing overlap with the previous descriptor minimizes data
    /// movement when allocations shift by small amounts (monitor noise).
    /// The paper's software runtime recomputes descriptors each epoch; this
    /// overlap-preserving assignment is the natural way to write that
    /// recomputation and needs no hardware change.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_allocation`](Self::from_allocation).
    pub fn from_allocation_stable(
        alloc: &[(usize, u64)],
        prev: Option<&VcDescriptor>,
    ) -> Result<Self, String> {
        let nonzero: Vec<(usize, u64)> = alloc.iter().copied().filter(|&(_, l)| l > 0).collect();
        if nonzero.is_empty() {
            return Err("descriptor needs at least one bank with capacity".into());
        }
        if nonzero.len() > DESCRIPTOR_BUCKETS {
            return Err(format!(
                "{} banks exceed {DESCRIPTOR_BUCKETS} buckets",
                nonzero.len()
            ));
        }
        let total: u64 = nonzero.iter().map(|&(_, l)| l).sum();
        // Ideal share per bank, floored; remainders sorted descending get the
        // leftover buckets. Every bank gets >= 1 bucket.
        let mut counts: Vec<(usize, usize, f64)> = nonzero
            .iter()
            .map(|&(b, l)| {
                let ideal = l as f64 * DESCRIPTOR_BUCKETS as f64 / total as f64;
                (b, (ideal.floor() as usize).max(1), ideal - ideal.floor())
            })
            .collect();
        let mut assigned: usize = counts.iter().map(|&(_, c, _)| c).sum();
        // Too many (floors + min-1 bumps can exceed N): shave from the
        // largest counts.
        while assigned > DESCRIPTOR_BUCKETS {
            let max = counts
                .iter_mut()
                .max_by_key(|&&mut (_, c, _)| c)
                .expect("non-empty");
            max.1 -= 1;
            assigned -= 1;
        }
        // Too few: hand buckets to the largest remainders.
        counts.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        let mut i = 0;
        let n_counts = counts.len();
        while assigned < DESCRIPTOR_BUCKETS {
            counts[i % n_counts].1 += 1;
            assigned += 1;
            i += 1;
        }
        // Assign bucket positions. First honour previous assignments where
        // the new counts allow (minimizing line movement), then fill the
        // remaining buckets with banks still under target.
        counts.sort_by_key(|&(b, _, _)| b);
        let mut target: std::collections::BTreeMap<usize, usize> =
            counts.iter().map(|&(b, c, _)| (b, c)).collect();
        let mut buckets = [BankId(u16::MAX); DESCRIPTOR_BUCKETS];
        if let Some(prev) = prev {
            for (i, slot) in buckets.iter_mut().enumerate() {
                let old = prev.buckets[i].index();
                if let Some(t) = target.get_mut(&old) {
                    if *t > 0 {
                        *t -= 1;
                        *slot = BankId(old as u16);
                    }
                }
            }
        }
        let mut fill = counts
            .iter()
            .flat_map(|&(b, _, _)| std::iter::repeat_n(b, target.get(&b).copied().unwrap_or(0)));
        for slot in buckets.iter_mut() {
            if *slot == BankId(u16::MAX) {
                let b = fill.next().expect("targets cover all unassigned buckets");
                *slot = BankId(b as u16);
            }
        }
        debug_assert!(fill.next().is_none(), "all target buckets consumed");
        Ok(VcDescriptor { buckets })
    }

    /// The bank a hashed address maps to. `bucket` must come from
    /// [`cdcs_cache::hash::bucket`] with `n = DESCRIPTOR_BUCKETS`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= DESCRIPTOR_BUCKETS`.
    #[inline]
    pub fn bank_for_bucket(&self, bucket: usize) -> BankId {
        self.buckets[bucket]
    }

    /// The bank for a line address (hashes internally).
    #[inline]
    pub fn bank_for_line(&self, line: cdcs_cache::Line) -> BankId {
        self.buckets[cdcs_cache::hash::bucket(line.0, DESCRIPTOR_BUCKETS)]
    }

    /// Bucket counts per bank, ordered by bank id.
    pub fn bucket_histogram(&self) -> std::collections::BTreeMap<BankId, usize> {
        let mut h = std::collections::BTreeMap::new();
        for &b in &self.buckets {
            *h.entry(b).or_insert(0) += 1;
        }
        h
    }

    /// The raw bucket array.
    pub fn buckets(&self) -> &[BankId; DESCRIPTOR_BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcs_cache::{hash, Line};

    #[test]
    fn paper_example_1mb_3mb() {
        let desc = VcDescriptor::from_allocation(&[(0, 16384), (1, 49152)]).unwrap();
        let h = desc.bucket_histogram();
        assert_eq!(h[&BankId(0)], 16);
        assert_eq!(h[&BankId(1)], 48);
    }

    #[test]
    fn single_bank_gets_all_buckets() {
        let desc = VcDescriptor::from_allocation(&[(5, 100)]).unwrap();
        assert_eq!(desc.bucket_histogram()[&BankId(5)], DESCRIPTOR_BUCKETS);
    }

    #[test]
    fn zero_banks_rejected() {
        assert!(VcDescriptor::from_allocation(&[]).is_err());
        assert!(VcDescriptor::from_allocation(&[(0, 0)]).is_err());
    }

    #[test]
    fn too_many_banks_rejected() {
        let alloc: Vec<(usize, u64)> = (0..65).map(|b| (b, 1)).collect();
        assert!(VcDescriptor::from_allocation(&alloc).is_err());
    }

    #[test]
    fn tiny_banks_still_get_a_bucket() {
        // One line in bank 1 vs 1M lines in bank 0: bank 1 still gets >= 1
        // bucket so its line is addressable.
        let desc = VcDescriptor::from_allocation(&[(0, 1_000_000), (1, 1)]).unwrap();
        let h = desc.bucket_histogram();
        assert!(h[&BankId(1)] >= 1);
        assert_eq!(h.values().sum::<usize>(), DESCRIPTOR_BUCKETS);
    }

    #[test]
    fn accesses_split_proportionally() {
        // 1:3 capacity split should route ~25%/75% of lines.
        let desc = VcDescriptor::from_allocation(&[(0, 1024), (1, 3072)]).unwrap();
        let mut to_zero = 0;
        let n = 100_000u64;
        for a in 0..n {
            if desc.bank_for_line(Line(a)) == BankId(0) {
                to_zero += 1;
            }
        }
        let frac = to_zero as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction to bank 0: {frac}");
    }

    #[test]
    fn bucket_mapping_is_stable() {
        let desc = VcDescriptor::from_allocation(&[(0, 512), (3, 512)]).unwrap();
        let line = Line(0xDEAD_BEEF);
        let b = hash::bucket(line.0, DESCRIPTOR_BUCKETS);
        assert_eq!(desc.bank_for_bucket(b), desc.bank_for_line(line));
    }

    #[test]
    fn stable_rebuild_minimizes_bucket_churn() {
        let a = VcDescriptor::from_allocation(&[(0, 8192), (1, 8192), (2, 4096)]).unwrap();
        // Slightly different sizes: most buckets must keep their banks.
        let b = VcDescriptor::from_allocation_stable(&[(0, 8192), (1, 7168), (2, 5120)], Some(&a))
            .unwrap();
        let changed = a
            .buckets()
            .iter()
            .zip(b.buckets().iter())
            .filter(|(x, y)| x != y)
            .count();
        assert!(changed <= 6, "{changed} of 64 buckets changed");
        // And the histogram still matches the new proportions.
        let h = b.bucket_histogram();
        assert_eq!(h.values().sum::<usize>(), DESCRIPTOR_BUCKETS);
        assert!(h[&BankId(1)] < h[&BankId(0)]);
    }

    #[test]
    fn stable_rebuild_identical_alloc_is_identity() {
        let a = VcDescriptor::from_allocation(&[(3, 1000), (7, 3000)]).unwrap();
        let b = VcDescriptor::from_allocation_stable(&[(3, 1000), (7, 3000)], Some(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn equal_split_is_even() {
        let desc =
            VcDescriptor::from_allocation(&[(0, 100), (1, 100), (2, 100), (3, 100)]).unwrap();
        let h = desc.bucket_histogram();
        for b in 0..4u16 {
            assert_eq!(h[&BankId(b)], 16);
        }
    }
}

//! Shared harness utilities for the per-figure/per-table experiment
//! binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md`
//! for recorded outputs). Binaries accept `--mixes N` (and where relevant
//! `--apps N`) to trade runtime for statistical weight; defaults are sized
//! for minutes-scale runs, the paper uses 50 mixes.

use cdcs_sim::runner::GridCell;
use cdcs_sim::{runner, Scheme, SimConfig, SimResult};
use cdcs_workload::{MixSpec, WorkloadMix};

/// Parses `--name value` from the command line, falling back to `default`.
pub fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's five schemes in figure order.
pub fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ]
}

/// One mix's results: weighted speedup over S-NUCA plus the raw results,
/// keyed by scheme name.
pub struct MixOutcome {
    /// `(scheme name, weighted speedup vs S-NUCA, result)`.
    pub runs: Vec<(String, f64, SimResult)>,
}

/// Runs one mix under every scheme in `schemes` and computes weighted
/// speedups over S-NUCA (running S-NUCA as the baseline even if not listed).
///
/// # Panics
///
/// Panics on simulation construction errors (fatal for a harness).
pub fn run_mix(config: &SimConfig, mix: &WorkloadMix, schemes: &[Scheme]) -> MixOutcome {
    run_mixes(config, std::slice::from_ref(mix), schemes)
        .pop()
        .expect("one outcome per mix")
}

/// Runs every `(mix × scheme)` cell of a sweep — plus each mix's S-NUCA
/// baseline and per-unique-app alone runs — as one parallel grid over all
/// cores, then assembles per-mix weighted speedups.
///
/// Every simulation is seeded from the config and cell alone, so the
/// outcome is byte-identical to calling [`run_mix`] per mix serially; only
/// the wall-clock changes (near-linear in cores for fig11-style sweeps).
///
/// # Panics
///
/// Panics on simulation construction errors (fatal for a harness).
pub fn run_mixes(config: &SimConfig, mixes: &[WorkloadMix], schemes: &[Scheme]) -> Vec<MixOutcome> {
    // One flat cell list: every unique app's alone run (always S-NUCA,
    // shared across mixes — apps are suite profiles, identical wherever
    // they appear), then per mix the S-NUCA baseline and every non-S-NUCA
    // scheme.
    let mut cells: Vec<GridCell> = Vec::new();
    let mut alone_names: Vec<String> = Vec::new();
    for mix in mixes {
        for app in mix.processes() {
            if !alone_names.contains(&app.name) {
                alone_names.push(app.name.clone());
                cells.push(GridCell::new(
                    Scheme::SNuca,
                    WorkloadMix::new(vec![app.clone()], config.seed),
                ));
            }
        }
    }
    // Per mix: (baseline index, per-scheme index).
    let mut layout = Vec::with_capacity(mixes.len());
    for mix in mixes {
        let baseline_idx = cells.len();
        cells.push(GridCell::new(Scheme::SNuca, mix.clone()));
        let scheme_idx: Vec<Option<usize>> = schemes
            .iter()
            .map(|&s| {
                if s == Scheme::SNuca {
                    None // reuse the baseline run
                } else {
                    cells.push(GridCell::new(s, mix.clone()));
                    Some(cells.len() - 1)
                }
            })
            .collect();
        layout.push((baseline_idx, scheme_idx));
    }

    let results = runner::run_grid(config, &cells).expect("grid run");

    mixes
        .iter()
        .zip(layout)
        .map(|(mix, (baseline_idx, scheme_idx))| {
            let alone: Vec<f64> = mix
                .processes()
                .iter()
                .map(|app| {
                    let i = alone_names
                        .iter()
                        .position(|n| *n == app.name)
                        .expect("unique app");
                    results[i].process_perf()[0]
                })
                .collect();
            let baseline = &results[baseline_idx];
            let runs = scheme_idx
                .iter()
                .map(|&idx| {
                    let r = match idx {
                        Some(i) => results[i].clone(),
                        None => baseline.clone(),
                    };
                    let ws = runner::weighted_speedup_vs(&r, baseline, &alone);
                    (r.scheme.clone(), ws, r)
                })
                .collect();
            MixOutcome { runs }
        })
        .collect()
}

/// Builds the `n`-th random single-threaded mix of `count` apps.
pub fn st_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
        count,
        mix_seed: n as u64,
    })
    .expect("mix")
}

/// Builds the `n`-th random multi-threaded mix of `count` 8-thread apps.
pub fn mt_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomMultiThreaded {
        count,
        mix_seed: n as u64,
    })
    .expect("mix")
}

/// Prints a sorted inverse-CDF line per scheme (the layout of Figs. 11a, 14,
/// 15a, 16a): mix index vs weighted speedup, sorted descending.
pub fn print_inverse_cdf(header: &str, per_scheme: &[(String, Vec<f64>)]) {
    println!("{header}");
    print!("{:<12}", "mix#");
    for (name, _) in per_scheme {
        print!(" {name:>10}");
    }
    println!();
    let n = per_scheme.first().map_or(0, |(_, v)| v.len());
    let mut sorted: Vec<Vec<f64>> = per_scheme
        .iter()
        .map(|(_, v)| {
            let mut s = v.clone();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            s
        })
        .collect();
    for i in 0..n {
        print!("{i:<12}");
        for s in &mut sorted {
            print!(" {:>10.3}", s[i]);
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for (_, v) in per_scheme {
        print!(" {:>10.3}", runner::gmean(v));
    }
    println!();
}

/// Geometric-mean helper re-exported for binaries.
pub fn gmean(xs: &[f64]) -> f64 {
    runner::gmean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_cover_the_paper_set() {
        let names: Vec<String> = all_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["S-NUCA", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]);
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = st_mix(4, 1);
        let b = st_mix(4, 1);
        let na: Vec<&str> = a.processes().iter().map(|p| p.name.as_str()).collect();
        let nb: Vec<&str> = b.processes().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn run_mix_small_smoke() {
        let config = SimConfig::small_test();
        let mix = st_mix(2, 0);
        let out = run_mix(&config, &mix, &[Scheme::SNuca, Scheme::cdcs()]);
        assert_eq!(out.runs.len(), 2);
        assert!((out.runs[0].1 - 1.0).abs() < 1e-9, "baseline WS is 1");
        assert!(out.runs[1].1 > 0.3, "CDCS WS sane");
    }
}

//! Shared harness utilities for the per-figure/per-table experiment
//! binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md`
//! for recorded outputs). Binaries accept `--mixes N` (and where relevant
//! `--apps N`) to trade runtime for statistical weight; defaults are sized
//! for minutes-scale runs, the paper uses 50 mixes.

use cdcs_sim::{runner, Scheme, SimConfig, SimResult};
use cdcs_workload::{MixSpec, WorkloadMix};

/// Parses `--name value` from the command line, falling back to `default`.
pub fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's five schemes in figure order.
pub fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ]
}

/// One mix's results: weighted speedup over S-NUCA plus the raw results,
/// keyed by scheme name.
pub struct MixOutcome {
    /// `(scheme name, weighted speedup vs S-NUCA, result)`.
    pub runs: Vec<(String, f64, SimResult)>,
}

/// Runs one mix under every scheme in `schemes` and computes weighted
/// speedups over S-NUCA (running S-NUCA as the baseline even if not listed).
///
/// # Panics
///
/// Panics on simulation construction errors (fatal for a harness).
pub fn run_mix(config: &SimConfig, mix: &WorkloadMix, schemes: &[Scheme]) -> MixOutcome {
    let alone = runner::alone_perf_for_mix(config, mix).expect("alone runs");
    let baseline = runner::run_scheme(config, mix, Scheme::SNuca).expect("snuca");
    let runs = schemes
        .iter()
        .map(|&s| {
            let r = if s == Scheme::SNuca {
                baseline.clone()
            } else {
                runner::run_scheme(config, mix, s).expect("scheme run")
            };
            let ws = runner::weighted_speedup_vs(&r, &baseline, &alone);
            (r.scheme.clone(), ws, r)
        })
        .collect();
    MixOutcome { runs }
}

/// Builds the `n`-th random single-threaded mix of `count` apps.
pub fn st_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded { count, mix_seed: n as u64 })
        .expect("mix")
}

/// Builds the `n`-th random multi-threaded mix of `count` 8-thread apps.
pub fn mt_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomMultiThreaded { count, mix_seed: n as u64 })
        .expect("mix")
}

/// Prints a sorted inverse-CDF line per scheme (the layout of Figs. 11a, 14,
/// 15a, 16a): mix index vs weighted speedup, sorted descending.
pub fn print_inverse_cdf(header: &str, per_scheme: &[(String, Vec<f64>)]) {
    println!("{header}");
    print!("{:<12}", "mix#");
    for (name, _) in per_scheme {
        print!(" {name:>10}");
    }
    println!();
    let n = per_scheme.first().map_or(0, |(_, v)| v.len());
    let mut sorted: Vec<Vec<f64>> = per_scheme
        .iter()
        .map(|(_, v)| {
            let mut s = v.clone();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            s
        })
        .collect();
    for i in 0..n {
        print!("{i:<12}");
        for s in &mut sorted {
            print!(" {:>10.3}", s[i]);
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for (_, v) in per_scheme {
        print!(" {:>10.3}", runner::gmean(v));
    }
    println!();
}

/// Geometric-mean helper re-exported for binaries.
pub fn gmean(xs: &[f64]) -> f64 {
    runner::gmean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_cover_the_paper_set() {
        let names: Vec<String> = all_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["S-NUCA", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]);
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = st_mix(4, 1);
        let b = st_mix(4, 1);
        let na: Vec<&str> = a.processes().iter().map(|p| p.name.as_str()).collect();
        let nb: Vec<&str> = b.processes().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn run_mix_small_smoke() {
        let config = SimConfig::small_test();
        let mix = st_mix(2, 0);
        let out = run_mix(&config, &mix, &[Scheme::SNuca, Scheme::cdcs()]);
        assert_eq!(out.runs.len(), 2);
        assert!((out.runs[0].1 - 1.0).abs() < 1e-9, "baseline WS is 1");
        assert!(out.runs[1].1 > 0.3, "CDCS WS sane");
    }
}

#![forbid(unsafe_code)]
//! Experiment harness for the per-figure/per-table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation through the declarative experiment API:
//!
//! 1. [`specs`] — one typed [`exp::ExperimentSpec`] constructor per figure,
//!    declaring axes (schemes × mixes × seeds × [`cdcs_sim::ConfigPatch`]es)
//!    over a named base config.
//! 2. [`exp`] — expands a spec into **one** flat cell list (deduplicated
//!    alone-perf runs included), executes it in a single parallel
//!    [`cdcs_sim::runner::run_grid`] wave, and derives weighted-speedup /
//!    latency / traffic / energy rollups into an
//!    [`exp::ExperimentReport`].
//! 3. [`artifact`] — persists each report as a verified JSON artifact under
//!    `out/` (deserialized back and compared exactly before the run ends).
//! 4. [`fmt`] — renders the stdout tables from the same report.
//!
//! Binaries accept `--mixes N` (and where relevant `--apps N`) to trade
//! runtime for statistical weight, `--small` to rebase onto the 4×4 test
//! chip, and `--out DIR` to redirect artifacts; defaults are sized for
//! minutes-scale runs, the paper uses 50 mixes.
//!
//! [`run_mixes`] (the pre-spec harness entry point) is retained as the
//! reference implementation: the golden tests in `tests/golden_port.rs`
//! pin the spec path numerically identical to it.

pub mod analysis;
pub mod artifact;
pub mod exp;
pub mod fmt;
pub mod specs;

use cdcs_sim::runner::GridCell;
use cdcs_sim::{runner, Scheme, SimConfig, SimResult};
use cdcs_workload::{MixSpec, WorkloadMix};
use exp::{BaseConfig, ExperimentReport, ExperimentSpec};

/// Parses `--name value` from `args`, falling back to `default` — loudly:
/// an unparsable or missing value prints a stderr warning instead of being
/// silently swallowed.
fn parse_arg_from(args: &[String], name: &str, default: usize) -> usize {
    let Some(flag) = args.iter().position(|a| a == &format!("--{name}")) else {
        return default;
    };
    match args.get(flag + 1) {
        None => {
            eprintln!("warning: --{name} given without a value; using default {default}");
            default
        }
        Some(value) => value.parse().unwrap_or_else(|_| {
            eprintln!(
                "warning: --{name} value {value:?} is not a valid integer; \
                 using default {default}"
            );
            default
        }),
    }
}

/// Parses `--name value` from the command line, falling back to `default`.
/// Unparsable values warn on stderr (they used to fall through silently).
pub fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    parse_arg_from(&args, name, default)
}

/// Whether `--flag` is present on the command line.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// The string value of `--name value` from the command line, warning
/// loudly when the flag is present without a value.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    arg_value_from(&args, name)
}

/// [`arg_value`] over an explicit argument list — the shared core, also
/// used by the `cdcs-serve` / `cdcs` binaries so the flag conventions
/// (and the missing-value warning) cannot drift between harness and
/// daemon.
pub fn arg_value_from(args: &[String], name: &str) -> Option<String> {
    let flag = args.iter().position(|a| a == &format!("--{name}"))?;
    match args.get(flag + 1) {
        Some(value) => Some(value.clone()),
        None => {
            eprintln!("warning: --{name} given without a value; ignoring it");
            None
        }
    }
}

/// Runs `spec` (after applying the shared CLI conventions: `--small`
/// rebases grid experiments onto [`SimConfig::small_test`] *and* renames
/// the artifact to `<name>_small.json`, so quick checks never clobber a
/// committed full-scale artifact) and persists its verified JSON artifact,
/// returning the report for formatting.
///
/// # Errors
///
/// Propagates spec execution and artifact I/O errors.
pub fn run_and_save(mut spec: ExperimentSpec) -> Result<ExperimentReport, String> {
    if flag("small") {
        spec.set_base(BaseConfig::SmallTest);
        spec.name = format!("{}_small", spec.name);
    }
    let report = spec.run()?;
    let path = artifact::write(&report, &artifact::out_dir())?;
    eprintln!("[artifact: {}]", path.display());
    Ok(report)
}

/// The paper's five schemes in figure order (re-exported from [`specs`]).
pub fn all_schemes() -> Vec<Scheme> {
    specs::all_schemes()
}

/// One mix's results: weighted speedup over S-NUCA plus the raw results,
/// keyed by scheme name.
pub struct MixOutcome {
    /// `(scheme name, weighted speedup vs S-NUCA, result)`.
    pub runs: Vec<(String, f64, SimResult)>,
}

/// Runs one mix under every scheme in `schemes` and computes weighted
/// speedups over S-NUCA (running S-NUCA as the baseline even if not listed).
///
/// # Panics
///
/// Panics on simulation construction errors (fatal for a harness).
pub fn run_mix(config: &SimConfig, mix: &WorkloadMix, schemes: &[Scheme]) -> MixOutcome {
    run_mixes(config, std::slice::from_ref(mix), schemes)
        .pop()
        .expect("one outcome per mix")
}

/// Runs every `(mix × scheme)` cell of a sweep — plus each mix's S-NUCA
/// baseline and per-unique-app alone runs — as one parallel grid over all
/// cores, then assembles per-mix weighted speedups.
///
/// This is the pre-redesign harness path, kept as the reference
/// implementation the spec API is pinned against (`tests/golden_port.rs`);
/// new callers should declare an [`exp::ExperimentSpec`] instead.
///
/// # Panics
///
/// Panics on simulation construction errors (fatal for a harness).
pub fn run_mixes(config: &SimConfig, mixes: &[WorkloadMix], schemes: &[Scheme]) -> Vec<MixOutcome> {
    // One flat cell list: every unique app's alone run (always S-NUCA,
    // shared across mixes — apps are suite profiles, identical wherever
    // they appear), then per mix the S-NUCA baseline and every non-S-NUCA
    // scheme.
    let mut cells: Vec<GridCell> = Vec::new();
    let mut alone_names: Vec<String> = Vec::new();
    for mix in mixes {
        for app in mix.processes() {
            if !alone_names.contains(&app.name) {
                alone_names.push(app.name.clone());
                cells.push(GridCell::new(
                    Scheme::SNuca,
                    WorkloadMix::new(vec![app.clone()], config.seed),
                ));
            }
        }
    }
    // Per mix: (baseline index, per-scheme index).
    let mut layout = Vec::with_capacity(mixes.len());
    for mix in mixes {
        let baseline_idx = cells.len();
        cells.push(GridCell::new(Scheme::SNuca, mix.clone()));
        let scheme_idx: Vec<Option<usize>> = schemes
            .iter()
            .map(|&s| {
                if s == Scheme::SNuca {
                    None // reuse the baseline run
                } else {
                    cells.push(GridCell::new(s, mix.clone()));
                    Some(cells.len() - 1)
                }
            })
            .collect();
        layout.push((baseline_idx, scheme_idx));
    }

    let results = runner::run_grid(config, &cells).expect("grid run");

    mixes
        .iter()
        .zip(layout)
        .map(|(mix, (baseline_idx, scheme_idx))| {
            let alone: Vec<f64> = mix
                .processes()
                .iter()
                .map(|app| {
                    let i = alone_names
                        .iter()
                        .position(|n| *n == app.name)
                        .expect("unique app");
                    results[i].process_perf()[0]
                })
                .collect();
            let baseline = &results[baseline_idx];
            let runs = scheme_idx
                .iter()
                .map(|&idx| {
                    let r = match idx {
                        Some(i) => results[i].clone(),
                        None => baseline.clone(),
                    };
                    let ws = runner::weighted_speedup_vs(&r, baseline, &alone);
                    (r.scheme.clone(), ws, r)
                })
                .collect();
            MixOutcome { runs }
        })
        .collect()
}

/// Builds the `n`-th random single-threaded mix of `count` apps.
pub fn st_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
        count,
        mix_seed: n as u64,
    })
    .expect("mix")
}

/// Builds the `n`-th random multi-threaded mix of `count` 8-thread apps.
pub fn mt_mix(count: usize, n: usize) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::RandomMultiThreaded {
        count,
        mix_seed: n as u64,
    })
    .expect("mix")
}

/// Prints a sorted inverse-CDF line per scheme (the layout of Figs. 11a, 14,
/// 15a, 16a): mix index vs weighted speedup, sorted descending.
pub fn print_inverse_cdf(header: &str, per_scheme: &[(String, Vec<f64>)]) {
    println!("{header}");
    print!("{:<12}", "mix#");
    for (name, _) in per_scheme {
        print!(" {name:>10}");
    }
    println!();
    let n = per_scheme.first().map_or(0, |(_, v)| v.len());
    let mut sorted: Vec<Vec<f64>> = per_scheme
        .iter()
        .map(|(_, v)| {
            let mut s = v.clone();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            s
        })
        .collect();
    for i in 0..n {
        print!("{i:<12}");
        for s in &mut sorted {
            print!(" {:>10.3}", s[i]);
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for (_, v) in per_scheme {
        print!(" {:>10.3}", runner::gmean(v));
    }
    println!();
}

/// Geometric-mean helper re-exported for binaries.
pub fn gmean(xs: &[f64]) -> f64 {
    runner::gmean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_cover_the_paper_set() {
        let names: Vec<String> = all_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["S-NUCA", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]);
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = st_mix(4, 1);
        let b = st_mix(4, 1);
        let na: Vec<&str> = a.processes().iter().map(|p| p.name.as_str()).collect();
        let nb: Vec<&str> = b.processes().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn run_mix_small_smoke() {
        let config = SimConfig::small_test();
        let mix = st_mix(2, 0);
        let out = run_mix(&config, &mix, &[Scheme::SNuca, Scheme::cdcs()]);
        assert_eq!(out.runs.len(), 2);
        assert!((out.runs[0].1 - 1.0).abs() < 1e-9, "baseline WS is 1");
        assert!(out.runs[1].1 > 0.3, "CDCS WS sane");
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parses_and_falls_back_loudly() {
        let a = args(&["bin", "--mixes", "12", "--apps", "64"]);
        assert_eq!(parse_arg_from(&a, "mixes", 3), 12);
        assert_eq!(parse_arg_from(&a, "apps", 3), 64);
        // Absent flag: silent default.
        assert_eq!(parse_arg_from(&a, "seeds", 7), 7);
        // Unparsable value: default (with a stderr warning).
        let a = args(&["bin", "--mixes", "twelve"]);
        assert_eq!(parse_arg_from(&a, "mixes", 3), 3);
        // Negative numbers don't parse as usize: default, not a panic.
        let a = args(&["bin", "--mixes", "-2"]);
        assert_eq!(parse_arg_from(&a, "mixes", 3), 3);
        // Flag at the end of the line: default.
        let a = args(&["bin", "--mixes"]);
        assert_eq!(parse_arg_from(&a, "mixes", 3), 3);
    }
}

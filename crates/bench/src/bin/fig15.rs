//! Fig. 15: multi-threaded mixes — eight 8-thread OMP-like apps (64 threads)
//! per mix: weighted speedups and traffic breakdown.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 5);
    let apps = arg("apps", 8);
    let report = run_and_save(specs::fig15(mixes, apps))?;
    fmt::fig15(&report, mixes, apps);
    Ok(())
}

//! Fig. 15: multi-threaded mixes — eight 8-thread OMP-like apps (64 threads)
//! per mix: weighted speedups and traffic breakdown.

use cdcs_bench::{all_schemes, mt_mix, print_inverse_cdf, run_mixes};
use cdcs_mesh::TrafficClass;
use cdcs_sim::SimConfig;

fn main() {
    let mixes = cdcs_bench::arg("mixes", 5);
    let config = SimConfig::default();
    let schemes = all_schemes();
    let mut ws: Vec<(String, Vec<f64>)> = schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    let mut traffic = vec![[0.0f64; 3]; schemes.len()];
    let mut instr = vec![0.0; schemes.len()];
    let all_mixes: Vec<_> = (0..mixes).map(|m| mt_mix(8, m)).collect();
    for out in run_mixes(&config, &all_mixes, &schemes).iter() {
        for (i, (_, w, r)) in out.runs.iter().enumerate() {
            ws[i].1.push(*w);
            for (k, class) in TrafficClass::ALL.iter().enumerate() {
                traffic[i][k] += r.system.traffic.flit_hops(*class) as f64;
            }
            instr[i] += r.system.instructions;
        }
    }
    print_inverse_cdf(
        &format!("Fig. 15a: WS vs S-NUCA, {mixes} mixes of 8x 8-thread apps"),
        &ws,
    );
    println!("\nFig. 15b: traffic per instruction (flit-hops) by class");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "scheme", "L2-LLC", "LLC-Mem", "Other"
    );
    for (i, (name, _)) in ws.iter().enumerate() {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            name,
            traffic[i][0] / instr[i],
            traffic[i][1] / instr[i],
            traffic[i][2] / instr[i]
        );
    }
    println!("\npaper: CDCS 21% gmean; Jigsaw+C 19% beats Jigsaw+R 14% on multi-threaded (trends reversed); R-NUCA 9%");
}

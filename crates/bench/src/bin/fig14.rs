//! Fig. 14: 4-app mixes — weighted-speedup distribution and traffic
//! breakdown (capacity is plentiful; latency-aware allocation matters).

use cdcs_bench::{all_schemes, print_inverse_cdf, run_mixes, st_mix};
use cdcs_mesh::TrafficClass;
use cdcs_sim::SimConfig;

fn main() {
    let mixes = cdcs_bench::arg("mixes", 8);
    let config = SimConfig::default();
    let schemes = all_schemes();
    let mut ws: Vec<(String, Vec<f64>)> = schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    let mut traffic = vec![[0.0f64; 3]; schemes.len()];
    let mut instr = vec![0.0; schemes.len()];
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(4, m)).collect();
    for out in run_mixes(&config, &all_mixes, &schemes).iter() {
        for (i, (_, w, r)) in out.runs.iter().enumerate() {
            ws[i].1.push(*w);
            for (k, class) in TrafficClass::ALL.iter().enumerate() {
                traffic[i][k] += r.system.traffic.flit_hops(*class) as f64;
            }
            instr[i] += r.system.instructions;
        }
    }
    print_inverse_cdf(
        &format!("Fig. 14: WS vs S-NUCA, {mixes} mixes of 4 apps"),
        &ws,
    );
    println!("\ntraffic per instruction (flit-hops) by class");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "scheme", "L2-LLC", "LLC-Mem", "Other"
    );
    for (i, (name, _)) in ws.iter().enumerate() {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            name,
            traffic[i][0] / instr[i],
            traffic[i][1] / instr[i],
            traffic[i][2] / instr[i]
        );
    }
    println!(
        "\npaper: CDCS 28% gmean, Jigsaw+R 17%, Jigsaw+C 6%; Jigsaw's L2-LLC traffic dominates"
    );
}

//! Fig. 14: 4-app mixes — weighted-speedup distribution and traffic
//! breakdown (capacity is plentiful; latency-aware allocation matters).

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 8);
    let report = run_and_save(specs::fig14(mixes))?;
    fmt::fig14(&report, mixes);
    Ok(())
}

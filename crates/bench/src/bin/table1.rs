//! Table 1 + Fig. 1: the §II-B case study.
//!
//! 36-tile CMP running 6×omnet + 14×milc + 2×ilbdc(8T) under R-NUCA,
//! Jigsaw+C, Jigsaw+R and CDCS. Prints per-app and weighted speedups over
//! S-NUCA, mirroring Table 1's rows.

use cdcs_bench::run_mix;
use cdcs_sim::{runner, Scheme, SimConfig};
use cdcs_workload::{MixSpec, WorkloadMix};
use std::collections::BTreeMap;

fn main() {
    let t0 = std::time::Instant::now();
    let config = SimConfig::case_study();
    let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy).expect("case study mix");
    // One parallel grid: alone runs, the S-NUCA baseline and all four
    // schemes fan out together.
    let out = run_mix(
        &config,
        &mix,
        &[
            Scheme::SNuca,
            Scheme::rnuca(),
            Scheme::jigsaw_clustered(),
            Scheme::jigsaw_random(),
            Scheme::cdcs(),
        ],
    );
    let snuca = &out.runs[0].2;

    println!("Table 1: per-app and weighted speedups over S-NUCA (paper values in parens)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "omnet", "ilbdc", "milc", "WSpdp"
    );
    let paper: BTreeMap<&str, [f64; 4]> = BTreeMap::from([
        ("R-NUCA", [1.09, 0.99, 1.15, 1.08]),
        ("Jigsaw+C", [2.88, 1.40, 1.21, 1.48]),
        ("Jigsaw+R", [3.99, 1.20, 1.21, 1.47]),
        ("CDCS", [4.00, 1.40, 1.20, 1.56]),
    ]);
    for (name, ws, r) in &out.runs[1..] {
        // Per-app speedups: gmean over instances of each benchmark of
        // perf(scheme)/perf(snuca).
        let perf = r.process_perf();
        let base = snuca.process_perf();
        let mut per_app: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (p, app) in mix.processes().iter().enumerate() {
            per_app
                .entry(app.name.clone())
                .or_default()
                .push(perf[p] / base[p]);
        }
        let g = |bench: &str| runner::gmean(&per_app[bench]);
        let p = paper.get(name.as_str());
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   (paper: {} )",
            name,
            g("omnet"),
            g("ilbdc"),
            g("milc"),
            ws,
            p.map_or("n/a".to_string(), |v| format!(
                "{:.2} {:.2} {:.2} {:.2}",
                v[0], v[1], v[2], v[3]
            )),
        );
    }
    eprintln!("[table1 took {:.1?}]", t0.elapsed());
}

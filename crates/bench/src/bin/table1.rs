//! Table 1 + Fig. 1: the §II-B case study.
//!
//! 36-tile CMP running 6×omnet + 14×milc + 2×ilbdc(8T) under R-NUCA,
//! Jigsaw+C, Jigsaw+R and CDCS. Prints per-app and weighted speedups over
//! S-NUCA, mirroring Table 1's rows.

use cdcs_bench::{fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let report = run_and_save(specs::table1())?;
    fmt::table1(&report);
    eprintln!("[table1 took {:.1?}]", t0.elapsed());
    Ok(())
}

//! §VI-C monitor ablation: GMONs vs UMONs of several resolutions.
//!
//! The paper: 64-way GMONs match 256-way UMONs; 64-way UMONs lose ~3% from
//! poor resolution; 1K-way UMONs gain only ~1.1% over GMONs.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 3);
    let apps = arg("apps", 64);
    let report = run_and_save(specs::gmon_ablation(mixes, apps))?;
    fmt::gmon_ablation(&report, mixes, apps);
    Ok(())
}

//! §VI-C monitor ablation: GMONs vs UMONs of several resolutions.
//!
//! The paper: 64-way GMONs match 256-way UMONs; 64-way UMONs lose ~3% from
//! poor resolution; 1K-way UMONs gain only ~1.1% over GMONs.

use cdcs_bench::{gmean, run_mixes, st_mix};
use cdcs_sim::{MonitorKind, Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!("GMON/UMON ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    let kinds = [
        ("GMON-64w", MonitorKind::Gmon { ways: 64 }),
        ("UMON-64w", MonitorKind::Umon { ways: 64 }),
        ("UMON-256w", MonitorKind::Umon { ways: 256 }),
        ("UMON-1024w", MonitorKind::Umon { ways: 1024 }),
    ];
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
    for (name, kind) in kinds {
        let config = SimConfig {
            monitor_kind: kind,
            ..SimConfig::default()
        };
        let ws: Vec<f64> = run_mixes(&config, &all_mixes, &[Scheme::cdcs()])
            .iter()
            .map(|out| out.runs[0].1)
            .collect();
        println!("{:<12} {:>8.3}", name, gmean(&ws));
        eprintln!("[{name} done]");
    }
    println!("\npaper: GMON-64w ~= UMON-256w; UMON-64w ~3% worse; UMON-1Kw only ~1.1% better");
}

//! §VI-C monitor ablation: GMONs vs UMONs of several resolutions.
//!
//! The paper: 64-way GMONs match 256-way UMONs; 64-way UMONs lose ~3% from
//! poor resolution; 1K-way UMONs gain only ~1.1% over GMONs.

use cdcs_bench::{gmean, st_mix};
use cdcs_sim::{runner, MonitorKind, Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!("GMON/UMON ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    let kinds = [
        ("GMON-64w", MonitorKind::Gmon { ways: 64 }),
        ("UMON-64w", MonitorKind::Umon { ways: 64 }),
        ("UMON-256w", MonitorKind::Umon { ways: 256 }),
        ("UMON-1024w", MonitorKind::Umon { ways: 1024 }),
    ];
    for (name, kind) in kinds {
        let mut ws = Vec::new();
        for m in 0..mixes {
            let mut config = SimConfig::default();
            config.scheme = Scheme::cdcs();
            config.monitor_kind = kind;
            let mix = st_mix(apps, m);
            let alone = runner::alone_perf_for_mix(&config, &mix).expect("alone");
            let base = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
            let r = runner::run_scheme(&config, &mix, config.scheme).expect("run");
            ws.push(runner::weighted_speedup_vs(&r, &base, &alone));
        }
        println!("{:<12} {:>8.3}", name, gmean(&ws));
        eprintln!("[{name} done]");
    }
    println!("\npaper: GMON-64w ~= UMON-256w; UMON-64w ~3% worse; UMON-1Kw only ~1.1% better");
}

//! Dynamic-workload scenario: the event-driven engine running a scripted
//! mix — a third app arrives mid-run, one process bursts, another idles,
//! and the burster departs — under S-NUCA and CDCS.
//!
//! The spec's epochs and event times are pinned (see
//! [`cdcs_bench::specs::dynamic_mix`]), so `--small` only renames the
//! artifact; the scenario itself is identical everywhere it runs, which is
//! what lets CI byte-compare the artifact against a committed golden.

use cdcs_bench::{fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let report = run_and_save(specs::dynamic_mix())?;
    fmt::dynamic_mix(&report);
    Ok(())
}

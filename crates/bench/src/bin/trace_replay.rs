//! Trace replay: runs the committed `specs/traces/calculix_milc` recording
//! through S-NUCA and CDCS on the batched engine (see
//! [`cdcs_bench::specs::trace_replay`] for how the fixture is produced and
//! why the S-NUCA cell reproduces the recording run bit-exactly).

use cdcs_bench::{fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let report = run_and_save(specs::trace_replay())?;
    fmt::trace_replay(&report);
    Ok(())
}

//! Fig. 12: factor analysis — Jigsaw+R plus latency-aware allocation (+L),
//! thread placement (+T) and refined data placement (+D); +LTD is CDCS.

use cdcs_bench::{gmean, run_mixes, st_mix};
use cdcs_core::policy::CdcsPlanner;
use cdcs_sim::{Scheme, SimConfig, ThreadSched};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 4);
    for apps in [cdcs_bench::arg("apps", 64), 4] {
        let config = SimConfig::default();
        let variants: Vec<Scheme> = vec![
            Scheme::jigsaw_random(),
            Scheme::Cdcs {
                planner: CdcsPlanner::with_features(true, false, false),
                sched: ThreadSched::Random,
            },
            Scheme::Cdcs {
                planner: CdcsPlanner::with_features(false, true, false),
                sched: ThreadSched::Random,
            },
            Scheme::Cdcs {
                planner: CdcsPlanner::with_features(false, false, true),
                sched: ThreadSched::Random,
            },
            Scheme::cdcs(),
        ];
        let mut ws: Vec<(String, Vec<f64>)> =
            variants.iter().map(|s| (s.name(), Vec::new())).collect();
        let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
        for out in run_mixes(&config, &all_mixes, &variants).iter() {
            for (i, (_, w, _)) in out.runs.iter().enumerate() {
                ws[i].1.push(*w);
            }
        }
        println!("Fig. 12 ({apps} apps, {mixes} mixes): gmean weighted speedup vs S-NUCA");
        for (name, v) in &ws {
            println!("{:<14} {:>8.3}", name, gmean(v));
        }
        println!();
    }
    println!("paper: at 64 apps thread+data placement dominate; at 4 apps latency-aware allocation dominates");
}

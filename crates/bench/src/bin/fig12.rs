//! Fig. 12: factor analysis — Jigsaw+R plus latency-aware allocation (+L),
//! thread placement (+T) and refined data placement (+D); +LTD is CDCS.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 4);
    let apps_points = [arg("apps", 64), 4];
    let report = run_and_save(specs::fig12(mixes, &apps_points))?;
    fmt::fig12(&report, mixes, &apps_points);
    Ok(())
}

//! Fig. 2: miss curves of omnet, milc, and ilbdc (MPKI vs LLC size in MB).
//!
//! Prints both the exact (stack-distance) curve the synthetic profile
//! produces and the GMON-measured curve, in MPKI over 0–4 MB like the paper.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let accesses = arg("accesses", 600_000);
    let report = run_and_save(specs::fig2(accesses))?;
    fmt::fig2(&report);
    Ok(())
}

//! Fig. 2: miss curves of omnet, milc, and ilbdc (MPKI vs LLC size in MB).
//!
//! Prints both the exact (stack-distance) curve the synthetic profile
//! produces and the GMON-measured curve, in MPKI over 0–4 MB like the paper.

use cdcs_cache::monitor::{Gmon, GmonConfig, Monitor};
use cdcs_cache::{Line, StackProfiler};
use cdcs_workload::{spec, AccessStream, StreamTarget};

fn main() {
    let accesses = cdcs_bench::arg("accesses", 600_000);
    println!("Fig. 2: miss curves (MPKI vs LLC size in MB); exact / GMON-measured");
    print!("{:<8}", "MB");
    for name in ["omnet", "milc", "ilbdc"] {
        print!(" {:>9}ex {:>8}gm", name, name);
    }
    println!();
    let mut curves = Vec::new();
    for name in ["omnet", "milc", "ilbdc"] {
        let app = spec::by_name(name).expect("profile");
        let mut stream = AccessStream::for_thread(app, 0, 42);
        let mut prof = StackProfiler::new();
        let mut gmon = Gmon::new(GmonConfig::covering(256, 64, 4, 524_288));
        let mut count = 0usize;
        // For ilbdc, measure the shared stream (its defining footprint).
        let want_shared = app.is_multi_threaded();
        while count < accesses {
            let (target, off) = stream.next_access();
            let keep = if want_shared {
                target == StreamTarget::ProcessShared
            } else {
                target == StreamTarget::ThreadPrivate
            };
            if keep {
                prof.record(Line(off));
                gmon.record(Line(off));
                count += 1;
            }
        }
        // Accesses-per-kilo-instruction scaling: MPKI = apki * miss_ratio.
        curves.push((app.apki, prof.miss_curve(), gmon.miss_curve()));
    }
    for step in 0..=16 {
        let mb = step as f64 * 0.25;
        let lines = mb * 16384.0;
        print!("{mb:<8.2}");
        for (apki, exact, gmon) in &curves {
            let ex = apki * exact.misses_at(lines) / exact.at_zero().max(1.0);
            let gm = apki * gmon.misses_at(lines) / gmon.at_zero().max(1.0);
            print!(" {ex:>11.1} {gm:>10.1}");
        }
        println!();
    }
    println!("\npaper: omnet ~85 MPKI cliff vanishing at 2.5 MB; milc flat ~25; ilbdc small footprint (512 KB)");
}

//! Fig. 16: under-committed multi-threaded mixes — four 8-thread apps (32
//! threads on 64 cores): CDCS has freedom to cluster shared-heavy and
//! spread private-heavy processes.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 5);
    let apps = arg("apps", 4);
    let report = run_and_save(specs::fig16(mixes, apps))?;
    fmt::fig16(&report, mixes, apps);
    Ok(())
}

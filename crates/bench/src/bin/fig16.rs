//! Fig. 16: under-committed multi-threaded mixes — four 8-thread apps (32
//! threads on 64 cores): CDCS has freedom to cluster shared-heavy and
//! spread private-heavy processes.

use cdcs_bench::{all_schemes, mt_mix, print_inverse_cdf, run_mixes};
use cdcs_sim::SimConfig;

fn main() {
    let mixes = cdcs_bench::arg("mixes", 5);
    let config = SimConfig::default();
    let schemes = all_schemes();
    let mut ws: Vec<(String, Vec<f64>)> = schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    let all_mixes: Vec<_> = (0..mixes).map(|m| mt_mix(4, m)).collect();
    for out in run_mixes(&config, &all_mixes, &schemes).iter() {
        for (i, (_, w, _)) in out.runs.iter().enumerate() {
            ws[i].1.push(*w);
        }
    }
    print_inverse_cdf(
        &format!("Fig. 16a: WS vs S-NUCA, {mixes} mixes of 4x 8-thread apps (32/64 cores)"),
        &ws,
    );
    println!(
        "\npaper: CDCS increases its advantage over Jigsaw+C with more freedom to place threads"
    );
}

//! Mega-mesh scaling scenario (ISSUE 7): S-NUCA and CDCS on a 256-tile
//! chip — 1024 tiles with `--tiles 1024` — comparing flat chip-wide
//! planning against the hierarchical region planner with incremental
//! warm-start reconfiguration (`hier_region_side` / `hier_change_threshold`).
//!
//! Flags follow the shared conventions: `--mixes N`, `--apps N`,
//! `--tiles 256|1024`, `--small` (rebase onto the 4×4 test chip, where the
//! hierarchical patch still runs multi-region).

use cdcs_bench::exp::BaseConfig;
use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 2);
    let apps = arg("apps", 32);
    let tiles = arg("tiles", 256);
    let mut spec = specs::mega_mesh(mixes, apps);
    match tiles {
        256 => {}
        1024 => {
            spec.set_base(BaseConfig::Mega1024);
            spec.name = "mega_mesh_1024".into();
        }
        other => return Err(format!("--tiles must be 256 or 1024, got {other}")),
    }
    let report = run_and_save(spec)?;
    fmt::mega_mesh(&report, tiles);
    Ok(())
}

//! Fig. 18: weighted speedup vs reconfiguration period for the three
//! movement schemes (periods scaled 50x down with the rest of the clock).

use cdcs_bench::{gmean, run_mixes, st_mix};
use cdcs_sim::{MoveScheme, Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!(
        "Fig. 18: gmean WS vs S-NUCA across reconfiguration periods ({mixes} mixes of {apps} apps)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "period", "Bulk invs", "Background", "Instant"
    );
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
    for period in [500_000u64, 1_000_000, 2_000_000, 4_000_000] {
        let mut row = Vec::new();
        for mv in [
            MoveScheme::BulkInvalidate,
            MoveScheme::DemandMove,
            MoveScheme::Instant,
        ] {
            let config = SimConfig {
                move_scheme: mv,
                epoch_cycles: period,
                ..SimConfig::default()
            };
            let ws: Vec<f64> = run_mixes(&config, &all_mixes, &[Scheme::cdcs()])
                .iter()
                .map(|out| out.runs[0].1)
                .collect();
            row.push(gmean(&ws));
        }
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            period, row[0], row[1], row[2]
        );
        eprintln!("[period {period} done]");
    }
    println!(
        "\npaper: demand moves beat bulk invalidations; differences shrink as the period grows"
    );
}

//! Fig. 18: weighted speedup vs reconfiguration period for the three
//! movement schemes (periods scaled 50x down with the rest of the clock).

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 3);
    let apps = arg("apps", 64);
    let periods = [500_000u64, 1_000_000, 2_000_000, 4_000_000];
    let report = run_and_save(specs::fig18(mixes, apps, &periods))?;
    fmt::fig18(&report, mixes, apps, &periods);
    Ok(())
}

//! Fig. 18: weighted speedup vs reconfiguration period for the three
//! movement schemes (periods scaled 50x down with the rest of the clock).

use cdcs_bench::{gmean, st_mix};
use cdcs_sim::{runner, MoveScheme, Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!("Fig. 18: gmean WS vs S-NUCA across reconfiguration periods ({mixes} mixes of {apps} apps)");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "period", "Bulk invs", "Background", "Instant"
    );
    for period in [500_000u64, 1_000_000, 2_000_000, 4_000_000] {
        let mut row = Vec::new();
        for mv in [MoveScheme::BulkInvalidate, MoveScheme::DemandMove, MoveScheme::Instant] {
            let mut ws = Vec::new();
            for m in 0..mixes {
                let mut config = SimConfig::default();
                config.scheme = Scheme::cdcs();
                config.move_scheme = mv;
                config.epoch_cycles = period;
                let mix = st_mix(apps, m);
                let alone = runner::alone_perf_for_mix(&config, &mix).expect("alone");
                let base = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
                let r = runner::run_scheme(&config, &mix, config.scheme).expect("run");
                ws.push(runner::weighted_speedup_vs(&r, &base, &alone));
            }
            row.push(gmean(&ws));
        }
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            period, row[0], row[1], row[2]
        );
        eprintln!("[period {period} done]");
    }
    println!("\npaper: demand moves beat bulk invalidations; differences shrink as the period grows");
}

//! Fig. 13: under-committed systems — gmean weighted speedup for mixes of
//! 1–64 single-threaded apps on the 64-core CMP.

use cdcs_bench::{all_schemes, gmean, run_mixes, st_mix};
use cdcs_sim::SimConfig;

fn main() {
    let mixes = cdcs_bench::arg("mixes", 4);
    let config = SimConfig::default();
    let schemes = all_schemes();
    println!("Fig. 13: gmean weighted speedup vs S-NUCA ({mixes} mixes per point)");
    print!("{:<8}", "apps");
    for s in &schemes {
        print!(" {:>10}", s.name());
    }
    println!();
    for &apps in &[1usize, 2, 4, 8, 16, 32, 64] {
        let mut ws = vec![Vec::new(); schemes.len()];
        let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
        for out in run_mixes(&config, &all_mixes, &schemes) {
            for (i, (_, w, _)) in out.runs.iter().enumerate() {
                ws[i].push(*w);
            }
        }
        print!("{apps:<8}");
        for v in &ws {
            print!(" {:>10.3}", gmean(v));
        }
        println!();
        eprintln!("[{apps}-app column done]");
    }
    println!("\npaper: CDCS highest throughout; Jigsaw variants weak at 1-8 apps (latency-oblivious allocations)");
}

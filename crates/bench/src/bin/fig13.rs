//! Fig. 13: under-committed systems — gmean weighted speedup for mixes of
//! 1–64 single-threaded apps on the 64-core CMP.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 4);
    let apps_points = [1usize, 2, 4, 8, 16, 32, 64];
    let report = run_and_save(specs::fig13(mixes, &apps_points))?;
    fmt::fig13(&report, mixes, &apps_points);
    Ok(())
}

//! §VI-C bank-granularity ablation: CDCS without fine-grained partitioning.
//!
//! The paper models 4x128 KB banks per tile with whole-bank allocation; we
//! emulate whole-bank allocation by raising the allocation granularity from
//! 64 KB chunks to full 512 KB banks (see DESIGN.md §6): coarse allocations
//! over- and under-provision small VCs and cost weighted speedup.

use cdcs_bench::{gmean, run_mixes, st_mix};
use cdcs_sim::{Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!("bank-granularity ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
    for (name, granularity) in [("fine (64KB)", 1024u64), ("coarse (full banks)", 8192)] {
        let config = SimConfig {
            alloc_granularity: granularity,
            ..SimConfig::default()
        };
        let ws: Vec<f64> = run_mixes(&config, &all_mixes, &[Scheme::cdcs()])
            .iter()
            .map(|out| out.runs[0].1)
            .collect();
        println!("{:<22} {:>8.3}", name, gmean(&ws));
    }
    println!("\npaper: 36% gmean at bank granularity vs 46% with fine-grained partitioning");
}

//! §VI-C bank-granularity ablation: CDCS without fine-grained partitioning.
//!
//! The paper models 4x128 KB banks per tile with whole-bank allocation; we
//! emulate whole-bank allocation by raising the allocation granularity from
//! 64 KB chunks to full 512 KB banks (see DESIGN.md §6): coarse allocations
//! over- and under-provision small VCs and cost weighted speedup.

use cdcs_bench::{gmean, st_mix};
use cdcs_sim::{runner, Scheme, SimConfig};

fn main() {
    let mixes = cdcs_bench::arg("mixes", 3);
    let apps = cdcs_bench::arg("apps", 64);
    println!("bank-granularity ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    for (name, granularity) in [("fine (64KB)", 1024u64), ("coarse (full banks)", 8192)] {
        let mut ws = Vec::new();
        for m in 0..mixes {
            let mut config = SimConfig::default();
            config.scheme = Scheme::cdcs();
            config.alloc_granularity = granularity;
            let mix = st_mix(apps, m);
            let alone = runner::alone_perf_for_mix(&config, &mix).expect("alone");
            let base = runner::run_scheme(&config, &mix, Scheme::SNuca).expect("snuca");
            let r = runner::run_scheme(&config, &mix, config.scheme).expect("run");
            ws.push(runner::weighted_speedup_vs(&r, &base, &alone));
        }
        println!("{:<22} {:>8.3}", name, gmean(&ws));
    }
    println!("\npaper: 36% gmean at bank granularity vs 46% with fine-grained partitioning");
}

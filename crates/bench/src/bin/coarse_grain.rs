//! §VI-C bank-granularity ablation: CDCS without fine-grained partitioning.
//!
//! The paper models 4x128 KB banks per tile with whole-bank allocation; we
//! emulate whole-bank allocation by raising the allocation granularity from
//! 64 KB chunks to full 512 KB banks (see DESIGN.md §6): coarse allocations
//! over- and under-provision small VCs and cost weighted speedup.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 3);
    let apps = arg("apps", 64);
    let report = run_and_save(specs::coarse_grain(mixes, apps))?;
    fmt::coarse_grain(&report, mixes, apps);
    Ok(())
}

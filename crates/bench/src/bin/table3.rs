//! Table 3: CDCS reconfiguration runtime analysis — cycles per invocation of
//! each step (capacity allocation, thread placement, data placement) at
//! 16 threads / 16 cores, 16 / 64, and 64 / 64.
//!
//! The paper reports Mcycles on its simulated cores; we measure wall-clock
//! of the same algorithm steps on the host and convert at a nominal 2 GHz
//! (1 ns = 2 cycles). Absolute values depend on the host; the scaling across
//! core counts is the reproduced shape.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let repeats = arg("repeats", 5);
    let report = run_and_save(specs::table3(repeats))?;
    fmt::table3(&report);
    Ok(())
}

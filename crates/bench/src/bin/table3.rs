//! Table 3: CDCS reconfiguration runtime analysis — cycles per invocation of
//! each step (capacity allocation, thread placement, data placement) at
//! 16 threads / 16 cores, 16 / 64, and 64 / 64.
//!
//! The paper reports Mcycles on its simulated cores; we measure wall-clock
//! of the same algorithm steps on the host and convert at a nominal 2 GHz
//! (1 ns = 2 cycles). Absolute values depend on the host; the scaling across
//! core counts is the reproduced shape.

use cdcs_cache::MissCurve;
use cdcs_core::alloc::latency_aware_sizes;
use cdcs_core::place::{
    greedy_place_with, optimistic_place_with, place_threads_with, trade_refine_with,
};
use cdcs_core::{PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{Mesh, TileId};
use std::time::Instant;

/// Builds a representative problem: each thread has a private VC with a
/// cliff-shaped curve; a quarter of the threads share process VCs.
fn problem(threads: usize, side: u16) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let mut vcs: Vec<VcInfo> = (0..threads)
        .map(|i| {
            let cliff = 4096.0 + (i as f64 * 977.0) % 20_000.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![
                    (0.0, 30_000.0),
                    (cliff, 2_000.0),
                    (2.0 * cliff, 500.0),
                ]),
            )
        })
        .collect();
    let shared = VcInfo::new(
        threads as u32,
        VcKind::process_shared(0),
        MissCurve::new(vec![(0.0, 50_000.0), (8192.0, 1_000.0)]),
    );
    vcs.push(shared);
    let thread_infos = (0..threads)
        .map(|i| {
            ThreadInfo::new(
                i as u32,
                vec![(i as u32, 25_000.0), (threads as u32, 5_000.0)],
            )
        })
        .collect();
    PlacementProblem::new(params, vcs, thread_infos).expect("problem")
}

fn time_mcycles(mut f: impl FnMut()) -> f64 {
    // Warm once, then take the best of 5 (matching a hot reconfiguration).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 2e9 / 1e6 // seconds -> Mcycles at 2 GHz
}

fn main() {
    println!("Table 3: reconfiguration runtime (Mcycles at a nominal 2 GHz host clock)");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "step", "16/16", "16/64", "64/64"
    );
    let configs = [(16usize, 4u16), (16, 8), (64, 8)];
    let mut rows: Vec<[f64; 3]> = vec![[0.0; 3]; 4];
    for (col, &(threads, side)) in configs.iter().enumerate() {
        let p = problem(threads, side);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let sizes = latency_aware_sizes(&p, 1024);
        // One long-lived scratch, as in the simulator's epoch loop: the
        // timings reflect the steady-state (allocation-free) hot path.
        let mut scratch = PlanScratch::new();
        rows[0][col] = time_mcycles(|| {
            let _ = latency_aware_sizes(&p, 1024);
        });
        let opt = optimistic_place_with(&p, &sizes, Some(&cores), &mut scratch);
        rows[1][col] = time_mcycles(|| {
            let o = optimistic_place_with(&p, &sizes, Some(&cores), &mut scratch);
            let _ = place_threads_with(&p, &sizes, &o, Some(&cores), 1.0, &mut scratch);
        });
        let placed = place_threads_with(&p, &sizes, &opt, Some(&cores), 1.0, &mut scratch);
        rows[2][col] = time_mcycles(|| {
            let mut pl = greedy_place_with(&p, &sizes, &placed, 1024, &mut scratch);
            trade_refine_with(&p, &mut pl, &mut scratch);
        });
        rows[3][col] = rows[0][col] + rows[1][col] + rows[2][col];
    }
    let labels = [
        "Capacity allocation",
        "Thread placement",
        "Data placement",
        "Total runtime",
    ];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>10.3}",
            label, rows[i][0], rows[i][1], rows[i][2]
        );
    }
    let period = 50.0; // paper: 25 ms at 2 GHz = 50 Mcycles
    println!(
        "{:<28} {:>9.3}% {:>9.3}% {:>9.3}%",
        "Overhead @ 25ms",
        rows[3][0] / (period * 16.0) * 100.0,
        rows[3][1] / (period * 64.0) * 100.0,
        rows[3][2] / (period * 64.0) * 100.0
    );
    println!("\npaper: 0.72 / 1.46 / 6.49 Mcycles total; 0.09 / 0.05 / 0.20 % overhead");
}

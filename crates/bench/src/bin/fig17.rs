//! Fig. 17: aggregate IPC across one reconfiguration under the three
//! line-movement schemes: instant moves, demand moves + background
//! invalidations (CDCS), and bulk invalidations (Jigsaw).

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let apps = arg("apps", 64);
    // 100 pre-intervals warm the chip; the trace spans 40 intervals with
    // the reconfiguration in the middle.
    let report = run_and_save(specs::fig17(apps, 100, 40))?;
    fmt::fig17(&report);
    Ok(())
}

//! Fig. 17: aggregate IPC across one reconfiguration under the three
//! line-movement schemes: instant moves, demand moves + background
//! invalidations (CDCS), and bulk invalidations (Jigsaw).

use cdcs_sim::{MoveScheme, Scheme, SimConfig, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};

fn main() {
    let apps = cdcs_bench::arg("apps", 64);
    let mix = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
        count: apps,
        mix_seed: 0,
    })
    .expect("mix");
    println!("Fig. 17: aggregate IPC trace around a reconfiguration (interval = 10 Kcycles)");
    for mv in [
        MoveScheme::Instant,
        MoveScheme::DemandMove,
        MoveScheme::BulkInvalidate,
    ] {
        let config = SimConfig {
            scheme: Scheme::cdcs(),
            move_scheme: mv,
            interval_cycles: 10_000,
            reconfig_benefit_factor: 0.0, // force the mid-trace apply
            // One big cell per move scheme: bank-sharded intra-cell
            // parallelism is the only way this binary uses >1 core
            // (results are bit-identical to the single-core engine).
            intra_cell_threads: SimConfig::auto_intra_cell_threads(),
            ..SimConfig::default()
        };
        let sim = Simulation::new(config, mix.clone()).expect("sim");
        // 100 pre-intervals warm the chip; the trace spans 40 intervals with
        // the reconfiguration in the middle.
        let r = sim.run_trace(100, 40);
        println!("\n{}:", mv.name());
        println!("{:<12} {:>8}", "cycle", "IPC");
        for (cycle, ipc) in &r.ipc_trace {
            println!("{cycle:<12} {ipc:>8.2}");
        }
    }
    println!("\npaper: bulk invalidations pause the whole chip ~100 Kcycles; demand moves reconfigure smoothly near the instant-move ideal");
}

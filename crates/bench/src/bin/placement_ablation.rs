//! §VI-C placement-alternative ablation: CDCS's heuristics vs expensive
//! comparators — exhaustive search (ILP stand-in, tiny instances),
//! simulated annealing, and recursive bisection (METIS stand-in) —
//! evaluated on the Eq. 2 cost model.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let small_seeds = arg("small-seeds", 5);
    let large_seeds = arg("large-seeds", 3);
    let sa_rounds = arg("sa-rounds", 5000);
    let report = run_and_save(specs::placement_ablation(
        small_seeds,
        large_seeds,
        sa_rounds,
    ))?;
    fmt::placement_ablation(&report);
    Ok(())
}

//! §VI-C placement-alternative ablation: CDCS's heuristics vs expensive
//! comparators — exhaustive search (ILP stand-in, tiny instances),
//! simulated annealing (5000 rounds), and recursive bisection (METIS
//! stand-in) — evaluated on the Eq. 2 cost model.

use cdcs_cache::MissCurve;
use cdcs_core::cost::on_chip_latency;
use cdcs_core::place::alternatives::{
    anneal_data_placement, anneal_thread_placement, bisection_thread_placement,
    exhaustive_thread_placement,
};
use cdcs_core::policy::{CdcsPlanner, Planner};
use cdcs_core::{PlacementProblem, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{Mesh, TileId};
use std::time::Instant;

fn problem(threads: usize, side: u16, seed: u64) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let vcs = (0..threads)
        .map(|i| {
            let cliff = 2048.0 + next() * 30_000.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 10_000.0 + next() * 40_000.0), (cliff, 500.0)]),
            )
        })
        .collect();
    let thread_infos = (0..threads)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 10_000.0 + next() * 40_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, thread_infos).expect("problem")
}

fn main() {
    // Small instances: compare against the exact optimum.
    println!("placement ablation, small instances (4 threads, 3x3 chip), Eq. 2 cost:");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "seed", "CDCS", "exhaustive", "SA-5000", "bisection"
    );
    for seed in 0..5u64 {
        let p = problem(4, 3, seed);
        let cores: Vec<TileId> = (0..4u16).map(TileId).collect();
        let cdcs = Planner::plan(&CdcsPlanner::default(), &p, &cores);
        let mut ex = cdcs.clone();
        ex.thread_cores = exhaustive_thread_placement(&p, &cdcs);
        let ex_refined = anneal_data_placement(&p, &ex, 3000, 1024, seed);
        let mut sa = cdcs.clone();
        sa.thread_cores = anneal_thread_placement(&p, &cdcs, 5000, seed);
        let mut bis = cdcs.clone();
        bis.thread_cores = bisection_thread_placement(&p);
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            seed,
            on_chip_latency(&p, &cdcs),
            on_chip_latency(&p, &ex_refined),
            on_chip_latency(&p, &sa),
            on_chip_latency(&p, &bis)
        );
    }
    // Large instances: SA and bisection only (exhaustive is infeasible —
    // the paper's point).
    println!("\nlarge instances (36 threads, 6x6 chip):");
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>14}",
        "seed", "CDCS", "SA-5000", "bisection", "SA time"
    );
    for seed in 0..3u64 {
        let p = problem(36, 6, seed);
        let cores: Vec<TileId> = (0..36u16).map(TileId).collect();
        let cdcs = Planner::plan(&CdcsPlanner::default(), &p, &cores);
        let t = Instant::now();
        let mut sa = cdcs.clone();
        sa.thread_cores = anneal_thread_placement(&p, &cdcs, 5000, seed);
        let sa_time = t.elapsed();
        let mut bis = cdcs.clone();
        bis.thread_cores = bisection_thread_placement(&p);
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>12.0} {:>12.1?}",
            seed,
            on_chip_latency(&p, &cdcs),
            on_chip_latency(&p, &sa),
            on_chip_latency(&p, &bis),
            sa_time
        );
    }
    println!("\npaper: SA only 0.6% better than CDCS and far too slow; graph partitioning 2.5% worse network latency; ILP data placement +0.5%");
}

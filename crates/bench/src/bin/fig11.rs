//! Fig. 11: 64-app SPEC-like mixes on the 64-core CMP under all five
//! schemes: (a) weighted-speedup inverse CDF, (b) on-chip LLC latency,
//! (c) off-chip latency, (d) traffic breakdown, (e) energy per instruction.

use cdcs_bench::{all_schemes, print_inverse_cdf, run_mixes, st_mix};
use cdcs_mesh::TrafficClass;
use cdcs_sim::SimConfig;

fn main() {
    let mixes = cdcs_bench::arg("mixes", 6);
    let apps = cdcs_bench::arg("apps", 64);
    let config = SimConfig::default();
    let schemes = all_schemes();
    let mut ws: Vec<(String, Vec<f64>)> = schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    let mut onchip = vec![0.0; schemes.len()];
    let mut offchip = vec![0.0; schemes.len()];
    let mut traffic = vec![[0.0f64; 3]; schemes.len()];
    let mut energy = vec![[0.0f64; 5]; schemes.len()];
    let mut instr = vec![0.0; schemes.len()];
    // One parallel grid over every (mix × scheme) cell plus alone runs.
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
    for out in run_mixes(&config, &all_mixes, &schemes).iter() {
        for (i, (_, w, r)) in out.runs.iter().enumerate() {
            ws[i].1.push(*w);
            onchip[i] += r.mean_on_chip_latency();
            offchip[i] += r.mean_off_chip_latency();
            for (k, class) in TrafficClass::ALL.iter().enumerate() {
                traffic[i][k] += r.system.traffic.flit_hops(*class) as f64;
            }
            let e = &r.energy;
            for (k, v) in [e.static_nj, e.core_nj, e.net_nj, e.llc_nj, e.mem_nj]
                .iter()
                .enumerate()
            {
                energy[i][k] += v;
            }
            instr[i] += r.system.instructions;
        }
    }
    print_inverse_cdf(
        &format!("Fig. 11a: weighted speedup vs S-NUCA, {mixes} mixes of {apps} apps"),
        &ws,
    );
    println!(
        "\nFig. 11b/c: average LLC latencies per access, cycles (normalized to CDCS in paper)"
    );
    println!("{:<10} {:>10} {:>10}", "scheme", "on-chip", "off-chip");
    for (i, (name, _)) in ws.iter().enumerate() {
        println!(
            "{:<10} {:>10.2} {:>10.2}",
            name,
            onchip[i] / mixes as f64,
            offchip[i] / mixes as f64
        );
    }
    println!("\nFig. 11d: NoC traffic per instruction (flit-hops), by class");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "L2-LLC", "LLC-Mem", "Other", "total"
    );
    for (i, (name, _)) in ws.iter().enumerate() {
        let t = traffic[i];
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            t[0] / instr[i],
            t[1] / instr[i],
            t[2] / instr[i],
            (t[0] + t[1] + t[2]) / instr[i]
        );
    }
    println!("\nFig. 11e: energy per instruction (nJ), by component");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "static", "core", "net", "llc", "mem", "total"
    );
    for (i, (name, _)) in ws.iter().enumerate() {
        let e = energy[i];
        let total: f64 = e.iter().sum();
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            e[0] / instr[i],
            e[1] / instr[i],
            e[2] / instr[i],
            e[3] / instr[i],
            e[4] / instr[i],
            total / instr[i]
        );
    }
    println!("\npaper: CDCS 46% gmean WS (up to 76%); Jigsaw+R 38%, Jigsaw+C 34%, R-NUCA 18%; S-NUCA 11x CDCS's on-chip latency, 3x traffic; CDCS saves 36% energy");
}

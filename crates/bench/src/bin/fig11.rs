//! Fig. 11: 64-app SPEC-like mixes on the 64-core CMP under all five
//! schemes: (a) weighted-speedup inverse CDF, (b) on-chip LLC latency,
//! (c) off-chip latency, (d) traffic breakdown, (e) energy per instruction.

use cdcs_bench::{arg, fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let mixes = arg("mixes", 6);
    let apps = arg("apps", 64);
    let report = run_and_save(specs::fig11(mixes, apps))?;
    fmt::fig11(&report, mixes, apps);
    Ok(())
}

//! Fig. 5: access latency vs capacity allocation for one VC, split into
//! off-chip, on-chip and total — the "sweet spot" motivating latency-aware
//! allocation (§IV-C).

use cdcs_cache::MissCurve;
use cdcs_mesh::{geometry, Mesh, NocConfig};

fn main() {
    let mesh = Mesh::new(8, 8);
    let noc = NocConfig::default();
    let mem_latency = 150.0;
    // An omnet-flavoured miss curve: cliff at 2.5 MB (40960 lines).
    let curve = MissCurve::new(vec![
        (0.0, 100.0),
        (38_000.0, 85.0),
        (41_000.0, 5.0),
        (60_000.0, 3.0),
    ]);
    let accesses = 100.0;
    let center = geometry::chip_center(&mesh);
    let per_hop = f64::from(noc.round_trip_latency(1));
    println!("Fig. 5: latency vs capacity (per-access cycles)");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "lines", "off-chip", "on-chip", "total"
    );
    for step in 0..=32 {
        let s = step as f64 * 2048.0;
        let off = curve.misses_at(s) / accesses * mem_latency;
        let on = geometry::compact_mean_distance(&mesh, center, s / 8192.0) * per_hop;
        println!("{:<10.0} {:>10.2} {:>10.2} {:>10.2}", s, off, on, off + on);
    }
    println!("\npaper: off-chip falls, on-chip rises; total has a sweet spot");
}

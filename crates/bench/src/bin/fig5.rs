//! Fig. 5: access latency vs capacity allocation for one VC, split into
//! off-chip, on-chip and total — the "sweet spot" motivating latency-aware
//! allocation (§IV-C).

use cdcs_bench::{fmt, run_and_save, specs};

fn main() -> Result<(), String> {
    let report = run_and_save(specs::fig5())?;
    fmt::fig5(&report);
    Ok(())
}

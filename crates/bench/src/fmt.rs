//! Stdout formatters: one per figure/table, rendering an
//! [`ExperimentReport`] into the tables the binaries print. All numbers
//! come from the report (which is what gets persisted), so the stdout view
//! and the JSON artifact can never disagree.

use crate::exp::{ExperimentReport, GridReport, GroupReport, ReportData, SpecKind};
use crate::print_inverse_cdf;
use cdcs_sim::runner::gmean;
use cdcs_workload::WorkloadMix;

/// Geometric mean of each scheme's weighted speedups over the groups
/// selected by `keep`.
fn gmean_ws(grid: &GridReport, keep: impl Fn(&GroupReport) -> bool) -> Vec<(String, f64)> {
    grid.ws_series(keep)
        .into_iter()
        .map(|(name, ws)| {
            let g = if ws.is_empty() { f64::NAN } else { gmean(&ws) };
            (name, g)
        })
        .collect()
}

/// Mean-of-means latency table plus traffic and energy breakdowns (the
/// Fig. 11b–e layout), aggregated over **every** group — callers with a
/// patch axis must pre-filter, or sweep points blend into one table.
fn latency_traffic_energy(grid: &GridReport) {
    let schemes = grid.scheme_names();
    let n_groups = grid.groups.len() as f64;
    let mut onchip = vec![0.0; schemes.len()];
    let mut offchip = vec![0.0; schemes.len()];
    let mut traffic = vec![[0.0f64; 3]; schemes.len()];
    let mut energy = vec![[0.0f64; 5]; schemes.len()];
    let mut instr = vec![0.0; schemes.len()];
    for group in &grid.groups {
        for (i, row) in group.rows.iter().enumerate() {
            onchip[i] += row.on_chip_latency;
            offchip[i] += row.off_chip_latency;
            for (slot, v) in traffic[i].iter_mut().zip(row.flit_hops) {
                *slot += v;
            }
            for (slot, v) in energy[i].iter_mut().zip(row.energy_nj) {
                *slot += v;
            }
            instr[i] += row.instructions;
        }
    }
    println!("\naverage LLC latencies per access, cycles");
    println!("{:<10} {:>10} {:>10}", "scheme", "on-chip", "off-chip");
    for (i, name) in schemes.iter().enumerate() {
        println!(
            "{:<10} {:>10.2} {:>10.2}",
            name,
            onchip[i] / n_groups,
            offchip[i] / n_groups
        );
    }
    println!("\nNoC traffic per instruction (flit-hops), by class");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "L2-LLC", "LLC-Mem", "Other", "total"
    );
    for (i, name) in schemes.iter().enumerate() {
        let t = traffic[i];
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            t[0] / instr[i],
            t[1] / instr[i],
            t[2] / instr[i],
            (t[0] + t[1] + t[2]) / instr[i]
        );
    }
    println!("\nenergy per instruction (nJ), by component");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "static", "core", "net", "llc", "mem", "total"
    );
    for (i, name) in schemes.iter().enumerate() {
        let e = energy[i];
        let total: f64 = e.iter().sum();
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            e[0] / instr[i],
            e[1] / instr[i],
            e[2] / instr[i],
            e[3] / instr[i],
            e[4] / instr[i],
            total / instr[i]
        );
    }
}

/// Fig. 11: inverse-CDF + latency/traffic/energy breakdowns.
pub fn fig11(report: &ExperimentReport, mixes: usize, apps: usize) {
    let grid = report.grid();
    print_inverse_cdf(
        &format!("Fig. 11a: weighted speedup vs S-NUCA, {mixes} mixes of {apps} apps"),
        &grid.ws_series(|_| true),
    );
    latency_traffic_energy(grid);
    println!("\npaper: CDCS 46% gmean WS (up to 76%); Jigsaw+R 38%, Jigsaw+C 34%, R-NUCA 18%; S-NUCA 11x CDCS's on-chip latency, 3x traffic; CDCS saves 36% energy");
}

/// Fig. 12: per-apps-count gmean factor table.
pub fn fig12(report: &ExperimentReport, mixes: usize, apps_points: &[usize]) {
    let grid = report.grid();
    for &apps in apps_points {
        let prefix = format!("st{apps}#");
        println!("Fig. 12 ({apps} apps, {mixes} mixes): gmean weighted speedup vs S-NUCA");
        for (name, g) in gmean_ws(grid, |group| group.mix.starts_with(&prefix)) {
            println!("{name:<14} {g:>8.3}");
        }
        println!();
    }
    println!("paper: at 64 apps thread+data placement dominate; at 4 apps latency-aware allocation dominates");
}

/// Fig. 13: apps-count × scheme gmean table.
pub fn fig13(report: &ExperimentReport, mixes: usize, apps_points: &[usize]) {
    let grid = report.grid();
    println!("Fig. 13: gmean weighted speedup vs S-NUCA ({mixes} mixes per point)");
    print!("{:<8}", "apps");
    for name in grid.scheme_names() {
        print!(" {name:>10}");
    }
    println!();
    for &apps in apps_points {
        let prefix = format!("st{apps}#");
        print!("{apps:<8}");
        for (_, g) in gmean_ws(grid, |group| group.mix.starts_with(&prefix)) {
            print!(" {g:>10.3}");
        }
        println!();
    }
    println!("\npaper: CDCS highest throughout; Jigsaw variants weak at 1-8 apps (latency-oblivious allocations)");
}

/// Fig. 14: inverse-CDF + traffic (4-app mixes).
pub fn fig14(report: &ExperimentReport, mixes: usize) {
    let grid = report.grid();
    print_inverse_cdf(
        &format!("Fig. 14: WS vs S-NUCA, {mixes} mixes of 4 apps"),
        &grid.ws_series(|_| true),
    );
    traffic_by_class(grid);
    println!(
        "\npaper: CDCS 28% gmean, Jigsaw+R 17%, Jigsaw+C 6%; Jigsaw's L2-LLC traffic dominates"
    );
}

/// The shared Fig. 14/15 traffic-per-instruction table.
fn traffic_by_class(grid: &GridReport) {
    let schemes = grid.scheme_names();
    let mut traffic = vec![[0.0f64; 3]; schemes.len()];
    let mut instr = vec![0.0; schemes.len()];
    for group in &grid.groups {
        for (i, row) in group.rows.iter().enumerate() {
            for (slot, v) in traffic[i].iter_mut().zip(row.flit_hops) {
                *slot += v;
            }
            instr[i] += row.instructions;
        }
    }
    println!("\ntraffic per instruction (flit-hops) by class");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "scheme", "L2-LLC", "LLC-Mem", "Other"
    );
    for (i, name) in schemes.iter().enumerate() {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            name,
            traffic[i][0] / instr[i],
            traffic[i][1] / instr[i],
            traffic[i][2] / instr[i]
        );
    }
}

/// Fig. 15: multi-threaded inverse-CDF + traffic.
pub fn fig15(report: &ExperimentReport, mixes: usize, apps: usize) {
    let grid = report.grid();
    print_inverse_cdf(
        &format!("Fig. 15a: WS vs S-NUCA, {mixes} mixes of {apps}x 8-thread apps"),
        &grid.ws_series(|_| true),
    );
    traffic_by_class(grid);
    println!("\npaper: CDCS 21% gmean; Jigsaw+C 19% beats Jigsaw+R 14% on multi-threaded (trends reversed); R-NUCA 9%");
}

/// Fig. 16: under-committed multi-threaded inverse-CDF.
pub fn fig16(report: &ExperimentReport, mixes: usize, apps: usize) {
    let grid = report.grid();
    print_inverse_cdf(
        &format!(
            "Fig. 16a: WS vs S-NUCA, {mixes} mixes of {apps}x 8-thread apps ({}/64 cores)",
            apps * 8
        ),
        &grid.ws_series(|_| true),
    );
    println!(
        "\npaper: CDCS increases its advantage over Jigsaw+C with more freedom to place threads"
    );
}

/// Fig. 17: the per-move-scheme IPC traces.
pub fn fig17(report: &ExperimentReport) {
    let grid = report.grid();
    println!("Fig. 17: aggregate IPC trace around a reconfiguration (interval = 10 Kcycles)");
    for group in &grid.groups {
        let row = &group.rows[0];
        println!("\n{}:", group.patch);
        println!("{:<12} {:>8}", "cycle", "IPC");
        for (cycle, ipc) in &grid.result(row).ipc_trace {
            println!("{cycle:<12} {ipc:>8.2}");
        }
    }
    println!("\npaper: bulk invalidations pause the whole chip ~100 Kcycles; demand moves reconfigure smoothly near the instant-move ideal");
}

/// Fig. 18: period × move-scheme gmean table (reads the typed patch axis
/// from the spec instead of parsing labels).
pub fn fig18(report: &ExperimentReport, mixes: usize, apps: usize, periods: &[u64]) {
    let grid = report.grid();
    println!(
        "Fig. 18: gmean WS vs S-NUCA across reconfiguration periods ({mixes} mixes of {apps} apps)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "period", "Bulk invs", "Background", "Instant"
    );
    let SpecKind::Grid(spec) = &report.spec.kind else {
        panic!("fig18 is a grid experiment");
    };
    for &period in periods {
        let mut row = Vec::new();
        for patch in &spec.patches {
            if patch.epoch_cycles != Some(period) {
                continue;
            }
            let label = patch.display_label().to_string();
            let per_scheme = gmean_ws(grid, |group| group.patch == label);
            row.push(per_scheme[0].1);
        }
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            period, row[0], row[1], row[2]
        );
    }
    println!(
        "\npaper: demand moves beat bulk invalidations; differences shrink as the period grows"
    );
}

/// Table 1: per-app and weighted speedups over S-NUCA on the case study.
pub fn table1(report: &ExperimentReport) {
    use std::collections::BTreeMap;
    let grid = report.grid();
    let SpecKind::Grid(spec) = &report.spec.kind else {
        panic!("table1 is a grid experiment");
    };
    let mix = WorkloadMix::from_spec(&spec.mixes[0].spec).expect("case-study mix");
    let group = &grid.groups[0];
    println!("Table 1: per-app and weighted speedups over S-NUCA (paper values in parens)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "omnet", "ilbdc", "milc", "WSpdp"
    );
    let paper: BTreeMap<&str, [f64; 4]> = BTreeMap::from([
        ("R-NUCA", [1.09, 0.99, 1.15, 1.08]),
        ("Jigsaw+C", [2.88, 1.40, 1.21, 1.48]),
        ("Jigsaw+R", [3.99, 1.20, 1.21, 1.47]),
        ("CDCS", [4.00, 1.40, 1.20, 1.56]),
    ]);
    for row in &group.rows {
        if row.scheme == "S-NUCA" {
            continue;
        }
        let per_app = grid.per_app_speedups(group, row, &mix);
        let g = |bench: &str| {
            per_app
                .iter()
                .find(|(name, _)| name == bench)
                .map_or(f64::NAN, |&(_, v)| v)
        };
        let p = paper.get(row.scheme.as_str());
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   (paper: {} )",
            row.scheme,
            g("omnet"),
            g("ilbdc"),
            g("milc"),
            row.weighted_speedup.unwrap_or(f64::NAN),
            p.map_or("n/a".to_string(), |v| format!(
                "{:.2} {:.2} {:.2} {:.2}",
                v[0], v[1], v[2], v[3]
            )),
        );
    }
}

/// Bank-granularity ablation: gmean WS per granularity patch.
pub fn coarse_grain(report: &ExperimentReport, mixes: usize, apps: usize) {
    let grid = report.grid();
    println!("bank-granularity ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    for patch in patch_labels(grid) {
        let per_scheme = gmean_ws(grid, |group| group.patch == patch);
        println!("{:<22} {:>8.3}", patch, per_scheme[0].1);
    }
    println!("\npaper: 36% gmean at bank granularity vs 46% with fine-grained partitioning");
}

/// Monitor ablation: gmean WS per monitor patch.
pub fn gmon_ablation(report: &ExperimentReport, mixes: usize, apps: usize) {
    let grid = report.grid();
    println!("GMON/UMON ablation: CDCS gmean WS vs S-NUCA ({mixes} mixes of {apps} apps)");
    for patch in patch_labels(grid) {
        let per_scheme = gmean_ws(grid, |group| group.patch == patch);
        println!("{:<12} {:>8.3}", patch, per_scheme[0].1);
    }
    println!("\npaper: GMON-64w ~= UMON-256w; UMON-64w ~3% worse; UMON-1Kw only ~1.1% better");
}

/// Mega-mesh scaling scenario: per-planner-patch gmean WS across schemes.
pub fn mega_mesh(report: &ExperimentReport, tiles: usize) {
    let grid = report.grid();
    println!("mega-mesh scaling ({tiles} tiles): gmean weighted speedup vs S-NUCA");
    for patch in patch_labels(grid) {
        print!("{patch:<10}");
        for (name, g) in gmean_ws(grid, |group| group.patch == patch) {
            print!(" {name}={g:.3}");
        }
        println!();
    }
    println!(
        "\nflat and hier-r2 should land close in WS; the hierarchical planner is what \
         keeps reconfiguration affordable as the mesh grows (see BENCH_planner.json)"
    );
}

/// Dynamic-mix scenario: chip totals per scheme, then each scheme's
/// per-process instruction shares — arrivals show up mid-run, departures
/// stop accruing, so the shares are the scenario's signature.
pub fn dynamic_mix(report: &ExperimentReport) {
    let grid = report.grid();
    println!("dynamic mix (event engine): chip totals per scheme");
    println!(
        "{:<10} {:>14} {:>10} {:>10}",
        "scheme", "instructions", "on-chip", "off-chip"
    );
    for group in &grid.groups {
        for row in &group.rows {
            println!(
                "{:<10} {:>14.0} {:>10.2} {:>10.2}",
                row.scheme, row.instructions, row.on_chip_latency, row.off_chip_latency
            );
        }
    }
    println!("\nper-process instructions (process:app=instructions)");
    for group in &grid.groups {
        for row in &group.rows {
            let result = &grid.cells[row.cell].result;
            print!("{:<10}", row.scheme);
            let procs = result.threads.iter().map(|t| t.process).max().unwrap_or(0) + 1;
            for p in 0..procs {
                let threads: Vec<_> = result.threads.iter().filter(|t| t.process == p).collect();
                let instr: f64 = threads.iter().map(|t| t.instructions).sum();
                let app = threads.first().map(|t| t.app.as_str()).unwrap_or("?");
                print!(" {p}:{app}={instr:.0}");
            }
            println!();
        }
    }
}

/// Trace replay: per-scheme totals from replaying the recorded logs.
pub fn trace_replay(report: &ExperimentReport) {
    let grid = report.grid();
    println!("trace replay (recorded access logs through the batched engine)");
    println!(
        "{:<10} {:>14} {:>10} {:>10}",
        "scheme", "instructions", "on-chip", "off-chip"
    );
    for group in &grid.groups {
        for row in &group.rows {
            println!(
                "{:<10} {:>14.0} {:>10.2} {:>10.2}",
                row.scheme, row.instructions, row.on_chip_latency, row.off_chip_latency
            );
        }
    }
}

/// Distinct patch labels in group order.
fn patch_labels(grid: &GridReport) -> Vec<String> {
    let mut labels: Vec<String> = Vec::new();
    for group in &grid.groups {
        if !labels.contains(&group.patch) {
            labels.push(group.patch.clone());
        }
    }
    labels
}

/// Fig. 2: per-app exact/GMON MPKI table.
pub fn fig2(report: &ExperimentReport) {
    let ReportData::MissCurves(data) = &report.data else {
        panic!("fig2 is a miss-curve experiment");
    };
    println!("Fig. 2: miss curves (MPKI vs LLC size in MB); exact / GMON-measured");
    print!("{:<8}", "MB");
    for name in &data.apps {
        print!(" {name:>9}ex {name:>8}gm");
    }
    println!();
    for row in &data.rows {
        print!("{:<8.2}", row.mb);
        for (ex, gm) in &row.mpki {
            print!(" {ex:>11.1} {gm:>10.1}");
        }
        println!();
    }
    println!("\npaper: omnet ~85 MPKI cliff vanishing at 2.5 MB; milc flat ~25; ilbdc small footprint (512 KB)");
}

/// Fig. 5: the latency-vs-capacity decomposition table.
pub fn fig5(report: &ExperimentReport) {
    let ReportData::LatencyCapacity(data) = &report.data else {
        panic!("fig5 is a latency-capacity experiment");
    };
    println!("Fig. 5: latency vs capacity (per-access cycles)");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "lines", "off-chip", "on-chip", "total"
    );
    for row in &data.rows {
        println!(
            "{:<10.0} {:>10.2} {:>10.2} {:>10.2}",
            row.lines, row.off_chip, row.on_chip, row.total
        );
    }
    println!("\npaper: off-chip falls, on-chip rises; total has a sweet spot");
}

/// Table 3: planner-runtime table with the overhead row.
pub fn table3(report: &ExperimentReport) {
    let ReportData::PlannerRuntime(data) = &report.data else {
        panic!("table3 is a planner-runtime experiment");
    };
    println!("Table 3: reconfiguration runtime (Mcycles at a nominal 2 GHz host clock)");
    print!("{:<28}", "step");
    for col in &data.columns {
        print!(" {col:>10}");
    }
    println!();
    for (label, values) in &data.rows {
        print!("{label:<28}");
        for v in values {
            print!(" {v:>10.3}");
        }
        println!();
    }
    // Overhead at the paper's 25 ms / 50 Mcycle period.
    let period = 50.0;
    if let Some((_, totals)) = data.rows.last() {
        print!("{:<28}", "Overhead @ 25ms");
        for (col, total) in data.columns.iter().zip(totals) {
            let cores: f64 = col
                .split('/')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(64.0);
            print!(" {:>9.3}%", total / (period * cores) * 100.0);
        }
        println!();
    }
    println!("\npaper: 0.72 / 1.46 / 6.49 Mcycles total; 0.09 / 0.05 / 0.20 % overhead");
}

/// Placement-alternative ablation tables.
pub fn placement_ablation(report: &ExperimentReport) {
    let ReportData::PlacementAlternatives(data) = &report.data else {
        panic!("placement_ablation is a placement-alternatives experiment");
    };
    println!("placement ablation, small instances, Eq. 2 cost:");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "seed", "CDCS", "exhaustive", "SA", "bisection"
    );
    for row in &data.small {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            row.seed,
            row.cdcs,
            row.exhaustive.unwrap_or(f64::NAN),
            row.annealed,
            row.bisection
        );
    }
    println!("\nlarge instances:");
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>14}",
        "seed", "CDCS", "SA", "bisection", "SA time"
    );
    for row in &data.large {
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>12.0} {:>12.1}s",
            row.seed, row.cdcs, row.annealed, row.bisection, row.sa_seconds
        );
    }
    println!("\npaper: SA only 0.6% better than CDCS and far too slow; graph partitioning 2.5% worse network latency; ILP data placement +0.5%");
}

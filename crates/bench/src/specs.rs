//! One [`ExperimentSpec`] constructor per figure/table binary and example.
//!
//! Binaries stay thin: parse CLI knobs, call the constructor here, run the
//! spec, format the report, persist the artifact. The CI smoke test
//! (`tests/spec_smoke.rs`) runs every constructor end-to-end on the small
//! test chip, so the full spec surface is exercised even when the binaries
//! themselves only build.

use crate::analysis::{
    LatencyCapacitySpec, MissCurvesSpec, PlacementAlternativesSpec, PlannerRuntimeSpec,
};
use crate::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry, SpecKind};
use cdcs_core::policy::CdcsPlanner;
use cdcs_sim::runner::CellRun;
use cdcs_sim::{ConfigPatch, EngineMode, MonitorKind, MoveScheme, Scheme, ThreadSched};
use cdcs_workload::{EventScript, MixSpec, TimedEvent, WorkloadEvent};

/// The paper's five schemes in figure order.
pub fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ]
}

/// `mixes` random single-threaded mixes of `apps` apps each.
fn st_mixes(mixes: usize, apps: usize) -> Vec<MixEntry> {
    (0..mixes)
        .map(|m| {
            MixEntry::auto(MixSpec::RandomSingleThreaded {
                count: apps,
                mix_seed: m as u64,
            })
        })
        .collect()
}

/// `mixes` random multi-threaded mixes of `apps` 8-thread apps each.
fn mt_mixes(mixes: usize, apps: usize) -> Vec<MixEntry> {
    (0..mixes)
        .map(|m| {
            MixEntry::auto(MixSpec::RandomMultiThreaded {
                count: apps,
                mix_seed: m as u64,
            })
        })
        .collect()
}

/// Fig. 11: every scheme over `mixes` fully-committed `apps`-app mixes —
/// weighted speedups, latencies, traffic, and energy.
pub fn fig11(mixes: usize, apps: usize) -> ExperimentSpec {
    ExperimentSpec::grid(
        "fig11",
        GridSpec::new(BaseConfig::Target, all_schemes(), st_mixes(mixes, apps)),
    )
}

/// Fig. 12: factor analysis — Jigsaw+R, +L, +T, +D, and full CDCS, over a
/// mix set per apps count in `apps_points`.
pub fn fig12(mixes: usize, apps_points: &[usize]) -> ExperimentSpec {
    let variants = vec![
        Scheme::jigsaw_random(),
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(true, false, false),
            sched: ThreadSched::Random,
        },
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, true, false),
            sched: ThreadSched::Random,
        },
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, false, true),
            sched: ThreadSched::Random,
        },
        Scheme::cdcs(),
    ];
    let mixes = apps_points
        .iter()
        .flat_map(|&apps| st_mixes(mixes, apps))
        .collect();
    ExperimentSpec::grid("fig12", GridSpec::new(BaseConfig::Target, variants, mixes))
}

/// Fig. 13: under-committed systems — every scheme over mixes of each size
/// in `apps_points`.
pub fn fig13(mixes: usize, apps_points: &[usize]) -> ExperimentSpec {
    let mixes = apps_points
        .iter()
        .flat_map(|&apps| st_mixes(mixes, apps))
        .collect();
    ExperimentSpec::grid(
        "fig13",
        GridSpec::new(BaseConfig::Target, all_schemes(), mixes),
    )
}

/// Fig. 14: 4-app mixes (capacity plentiful, latency-aware allocation
/// matters) — weighted speedups and traffic.
pub fn fig14(mixes: usize) -> ExperimentSpec {
    ExperimentSpec::grid(
        "fig14",
        GridSpec::new(BaseConfig::Target, all_schemes(), st_mixes(mixes, 4)),
    )
}

/// Fig. 15: multi-threaded mixes of `apps` 8-thread apps (the paper runs
/// eight: 64 threads).
pub fn fig15(mixes: usize, apps: usize) -> ExperimentSpec {
    ExperimentSpec::grid(
        "fig15",
        GridSpec::new(BaseConfig::Target, all_schemes(), mt_mixes(mixes, apps)),
    )
}

/// Fig. 16: under-committed multi-threaded mixes (`apps` 8-thread apps on
/// 64 cores; the paper runs four: 32 threads).
pub fn fig16(mixes: usize, apps: usize) -> ExperimentSpec {
    ExperimentSpec::grid(
        "fig16",
        GridSpec::new(BaseConfig::Target, all_schemes(), mt_mixes(mixes, apps)),
    )
}

/// Fig. 17: aggregate-IPC trace across one reconfiguration under each
/// line-movement scheme (one trace cell per scheme, single wave).
pub fn fig17(apps: usize, pre_intervals: usize, post_intervals: usize) -> ExperimentSpec {
    let patches = [
        MoveScheme::Instant,
        MoveScheme::DemandMove,
        MoveScheme::BulkInvalidate,
    ]
    .into_iter()
    .map(|mv| {
        ConfigPatch::named(mv.name())
            .with_move_scheme(mv)
            .with_interval_cycles(10_000)
            // Force the mid-trace apply.
            .with_reconfig_benefit_factor(0.0)
    })
    .collect();
    let mut grid = GridSpec::new(
        BaseConfig::Target,
        vec![Scheme::cdcs()],
        vec![MixEntry::auto(MixSpec::RandomSingleThreaded {
            count: apps,
            mix_seed: 0,
        })],
    );
    grid.patches = patches;
    grid.run = CellRun::Trace {
        pre_intervals,
        post_intervals,
    };
    grid.weighted_speedup = false;
    // One big cell per move scheme: bank-sharded intra-cell parallelism is
    // the only way this experiment uses >1 core (results bit-identical).
    grid.auto_intra_cell = true;
    ExperimentSpec::grid("fig17", grid)
}

/// Fig. 18: CDCS weighted speedup vs reconfiguration period under each
/// line-movement scheme (periods × movers as the patch axis — one wave).
pub fn fig18(mixes: usize, apps: usize, periods: &[u64]) -> ExperimentSpec {
    let patches = periods
        .iter()
        .flat_map(|&period| {
            [
                MoveScheme::BulkInvalidate,
                MoveScheme::DemandMove,
                MoveScheme::Instant,
            ]
            .into_iter()
            .map(move |mv| {
                ConfigPatch::named(format!("{}@{period}", mv.name()))
                    .with_move_scheme(mv)
                    .with_epoch_cycles(period)
            })
        })
        .collect();
    let mut grid = GridSpec::new(
        BaseConfig::Target,
        vec![Scheme::cdcs()],
        st_mixes(mixes, apps),
    );
    grid.patches = patches;
    ExperimentSpec::grid("fig18", grid)
}

/// Table 1 / Fig. 1: the §II-B case study — four schemes vs S-NUCA on the
/// 36-tile chip.
pub fn table1() -> ExperimentSpec {
    ExperimentSpec::grid(
        "table1",
        GridSpec::new(
            BaseConfig::CaseStudy,
            all_schemes(),
            vec![MixEntry::auto(MixSpec::CaseStudy)],
        ),
    )
}

/// §VI-C bank-granularity ablation: CDCS with 64 KB vs whole-bank
/// allocation granularity.
pub fn coarse_grain(mixes: usize, apps: usize) -> ExperimentSpec {
    let mut grid = GridSpec::new(
        BaseConfig::Target,
        vec![Scheme::cdcs()],
        st_mixes(mixes, apps),
    );
    grid.patches = vec![
        ConfigPatch::named("fine (64KB)").with_alloc_granularity(1024),
        ConfigPatch::named("coarse (full banks)").with_alloc_granularity(8192),
    ];
    ExperimentSpec::grid("coarse_grain", grid)
}

/// §VI-C monitor ablation: CDCS under GMONs and UMONs of several
/// resolutions.
pub fn gmon_ablation(mixes: usize, apps: usize) -> ExperimentSpec {
    let kinds = [
        ("GMON-64w", MonitorKind::Gmon { ways: 64 }),
        ("UMON-64w", MonitorKind::Umon { ways: 64 }),
        ("UMON-256w", MonitorKind::Umon { ways: 256 }),
        ("UMON-1024w", MonitorKind::Umon { ways: 1024 }),
    ];
    let mut grid = GridSpec::new(
        BaseConfig::Target,
        vec![Scheme::cdcs()],
        st_mixes(mixes, apps),
    );
    grid.patches = kinds
        .into_iter()
        .map(|(label, kind)| ConfigPatch::named(label).with_monitor_kind(kind))
        .collect();
    ExperimentSpec::grid("gmon_ablation", grid)
}

/// Fig. 2: exact vs GMON-measured miss curves of omnet, milc, and ilbdc.
pub fn fig2(accesses: usize) -> ExperimentSpec {
    ExperimentSpec {
        name: "fig2".into(),
        kind: SpecKind::MissCurves(MissCurvesSpec {
            apps: vec!["omnet".into(), "milc".into(), "ilbdc".into()],
            accesses,
            mb_steps: 16,
            mb_per_step: 0.25,
        }),
    }
}

/// Fig. 5: the analytic latency-vs-capacity sweet spot.
pub fn fig5() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig5".into(),
        kind: SpecKind::LatencyCapacity(LatencyCapacitySpec {
            side: 8,
            mem_latency: 150.0,
            // An omnet-flavoured miss curve: cliff at 2.5 MB.
            curve: vec![
                (0.0, 100.0),
                (38_000.0, 85.0),
                (41_000.0, 5.0),
                (60_000.0, 3.0),
            ],
            accesses: 100.0,
            steps: 32,
            lines_per_step: 2048.0,
        }),
    }
}

/// Table 3: planner-step runtimes at 16/16, 16/64, and 64/64
/// threads/cores.
pub fn table3(repeats: usize) -> ExperimentSpec {
    ExperimentSpec {
        name: "table3".into(),
        kind: SpecKind::PlannerRuntime(PlannerRuntimeSpec {
            configs: vec![(16, 4), (16, 8), (64, 8)],
            repeats,
        }),
    }
}

/// §VI-C placement-alternative ablation (exhaustive / SA / bisection).
pub fn placement_ablation(
    small_seeds: usize,
    large_seeds: usize,
    sa_rounds: usize,
) -> ExperimentSpec {
    ExperimentSpec {
        name: "placement_ablation".into(),
        kind: SpecKind::PlacementAlternatives(PlacementAlternativesSpec {
            small_seeds: (0..small_seeds as u64).collect(),
            small_size: (4, 3),
            large_seeds: (0..large_seeds as u64).collect(),
            large_size: (36, 6),
            sa_rounds,
        }),
    }
}

/// `examples/quickstart`: a four-app mix under S-NUCA and CDCS.
pub fn quickstart() -> ExperimentSpec {
    ExperimentSpec::grid(
        "quickstart",
        GridSpec::new(
            BaseConfig::Target,
            vec![Scheme::SNuca, Scheme::cdcs()],
            vec![MixEntry::auto(MixSpec::Named(vec![
                "omnet".into(),
                "milc".into(),
                "xalancbmk".into(),
                "calculix".into(),
            ]))],
        ),
    )
}

/// `examples/case_study`: the §II-B case study with per-app speedups.
pub fn case_study() -> ExperimentSpec {
    let mut grid = GridSpec::new(
        BaseConfig::CaseStudy,
        all_schemes(),
        vec![MixEntry::auto(MixSpec::CaseStudy)],
    );
    // The headline cells run one at a time on a wide chip; bank-sharding
    // each cell puts otherwise-idle cores to work (bit-identical results).
    grid.auto_intra_cell = true;
    ExperimentSpec::grid("case_study", grid)
}

/// `examples/multithreaded_mix`: one private-heavy plus three shared-heavy
/// multi-threaded apps.
pub fn multithreaded_mix() -> ExperimentSpec {
    ExperimentSpec::grid(
        "multithreaded_mix",
        GridSpec::new(
            BaseConfig::Target,
            vec![
                Scheme::jigsaw_clustered(),
                Scheme::jigsaw_random(),
                Scheme::cdcs(),
            ],
            vec![MixEntry::auto(MixSpec::Named(vec![
                "mgrid".into(),
                "md".into(),
                "ilbdc".into(),
                "nab".into(),
            ]))],
        ),
    )
}

/// `examples/under_committed`: four apps on the 64-core chip.
pub fn under_committed() -> ExperimentSpec {
    ExperimentSpec::grid(
        "under_committed",
        GridSpec::new(
            BaseConfig::Target,
            vec![Scheme::SNuca, Scheme::jigsaw_random(), Scheme::cdcs()],
            vec![MixEntry::auto(MixSpec::RandomSingleThreaded {
                count: 4,
                mix_seed: 7,
            })],
        ),
    )
}

/// `bin/mega_mesh`: the ISSUE 7 mega-mesh scaling scenario — S-NUCA and
/// CDCS on a 256-tile chip (1024 via `--tiles 1024`), flat planning vs the
/// hierarchical planner with incremental warm starts.
///
/// Region side 2 keeps the hierarchical cells multi-region at *every* scale
/// this spec runs at — including the 4×4 chip the `--small` CI smoke
/// rebases onto (4 regions there, 64 at 256 tiles, 256 at 1024) — so the
/// smoke gate genuinely exercises region assignment, per-region solves and
/// the warm-start path, not the one-region flat delegation.
pub fn mega_mesh(mixes: usize, apps: usize) -> ExperimentSpec {
    let mut grid = GridSpec::new(
        BaseConfig::Mega256,
        vec![Scheme::SNuca, Scheme::cdcs()],
        st_mixes(mixes, apps),
    );
    grid.patches = vec![
        ConfigPatch::named("flat"),
        ConfigPatch::named("hier-r2")
            .with_hier_region_side(2)
            .with_hier_change_threshold(0.02),
    ];
    // Mega cells are enormous; bank-shard each one across the idle cores.
    grid.auto_intra_cell = true;
    ExperimentSpec::grid("mega_mesh", grid)
}

/// `bin/dynamic_mix`: the event-driven engine end to end — a two-app base
/// mix whose script arrives a third app, bursts, idles, and departs,
/// under S-NUCA and CDCS.
///
/// Epochs and event times are pinned in the patch so the committed spec,
/// the CI `--small` smoke, and a full run all execute the *same* scenario
/// (3 × 150k-cycle epochs; every event fires inside the run window —
/// a rebased-but-unpinned smoke would end before the first event).
pub fn dynamic_mix() -> ExperimentSpec {
    let script = EventScript {
        events: vec![
            TimedEvent {
                at_cycle: 60_000,
                event: WorkloadEvent::Arrival {
                    app: "omnet".into(),
                },
            },
            TimedEvent {
                at_cycle: 120_000,
                event: WorkloadEvent::RateBurst {
                    process: 1,
                    scale: 3.0,
                    duration: 90_000,
                },
            },
            TimedEvent {
                at_cycle: 210_000,
                event: WorkloadEvent::IdleGap {
                    process: 0,
                    duration: 45_000,
                },
            },
            TimedEvent {
                at_cycle: 300_000,
                event: WorkloadEvent::Departure { process: 1 },
            },
        ],
    };
    let mut grid = GridSpec::new(
        BaseConfig::SmallTest,
        vec![Scheme::SNuca, Scheme::cdcs()],
        vec![MixEntry::auto(MixSpec::Named(vec![
            "calculix".into(),
            "milc".into(),
        ]))],
    );
    // Alone/baseline cells would run the same patch on one-process rosters
    // the script's indices don't fit; the dynamic scenario reports raw
    // per-thread results instead.
    grid.weighted_speedup = false;
    grid.patches = vec![ConfigPatch::named("dynamic")
        .with_engine(EngineMode::Event)
        .with_events(script)
        .with_epoch_cycles(150_000)
        .with_interval_cycles(15_000)
        .with_warmup_epochs(1)
        .with_measure_epochs(2)];
    ExperimentSpec::grid("dynamic_mix", grid)
}

/// `bin/trace_replay`: trace replay — the committed
/// `specs/traces/calculix_milc` recording run through S-NUCA and CDCS on
/// the batched engine.
///
/// The fixture is recorded by `crates/sim/tests/events.rs`
/// (`CDCS_WRITE_TRACES=1`) under this exact pinned config with S-NUCA, so
/// the S-NUCA replay cell reproduces the recording run bit-exactly; the
/// CDCS cell replays the same logs under a different organization (the
/// record-mode cushion absorbs its different draw count).
pub fn trace_replay() -> ExperimentSpec {
    let mut grid = GridSpec::new(
        BaseConfig::SmallTest,
        vec![Scheme::SNuca, Scheme::cdcs()],
        vec![MixEntry::auto(MixSpec::Named(vec![
            "calculix".into(),
            "milc".into(),
        ]))],
    );
    // Alone runs replay the same two-thread trace; weighted speedup over
    // them would be meaningless.
    grid.weighted_speedup = false;
    grid.patches = vec![ConfigPatch::named("replay")
        .with_trace_replay("specs/traces/calculix_milc/index.json")
        .with_epoch_cycles(60_000)
        .with_interval_cycles(15_000)
        .with_warmup_epochs(1)
        .with_measure_epochs(1)];
    ExperimentSpec::grid("trace_replay", grid)
}

/// Every spec constructor at smoke-test scale, for the CI end-to-end gate.
/// Grid specs are rebased onto the small test chip by the caller.
pub fn all_smoke_specs() -> Vec<ExperimentSpec> {
    vec![
        fig11(1, 2),
        fig12(1, &[2]),
        fig13(1, &[1, 2]),
        fig14(1),
        fig15(1, 1),
        fig16(1, 1),
        fig17(2, 4, 3),
        fig18(1, 2, &[500_000]),
        table1(),
        coarse_grain(1, 2),
        gmon_ablation(1, 2),
        fig2(5_000),
        fig5(),
        table3(1),
        placement_ablation(1, 1, 40),
        quickstart(),
        case_study(),
        multithreaded_mix(),
        under_committed(),
        mega_mesh(1, 2),
        dynamic_mix(),
        trace_replay(),
    ]
}

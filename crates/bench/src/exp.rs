//! The declarative experiment API: typed specs in, structured reports out.
//!
//! Every figure/table binary (and example) declares its sweep as an
//! [`ExperimentSpec`]: axes of schemes × mixes × seeds × [`ConfigPatch`]es
//! over a named base config, or one of the four analysis experiments that
//! don't drive the full simulator. [`ExperimentSpec::run`] expands a grid
//! spec into **one flat cell list** — including the deduplicated alone-perf
//! runs the weighted-speedup methodology needs — executes everything in a
//! single [`runner::run_grid`] wave (no idle cores between alone and scheme
//! phases, or between sweep points), and assembles an [`ExperimentReport`]:
//! per-cell [`SimResult`]s plus derived per-group rollups (weighted
//! speedup, latency, traffic, energy). Reports serialize to JSON artifacts
//! via [`crate::artifact`] and deserialize back bit-exactly.

use crate::analysis::{
    LatencyCapacityReport, LatencyCapacitySpec, MissCurvesReport, MissCurvesSpec,
    PlacementAlternativesReport, PlacementAlternativesSpec, PlannerRuntimeReport,
    PlannerRuntimeSpec,
};
use cdcs_sim::runner::{self, CellRun, GridCell};
use cdcs_sim::{ConfigPatch, Scheme, SimConfig, SimResult};
use cdcs_workload::{MixSpec, WorkloadMix};
use serde::{Deserialize, Serialize};

/// Which base [`SimConfig`] a grid experiment starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseConfig {
    /// The paper's 64-core target system ([`SimConfig::default`]).
    Target,
    /// The §II-B 36-tile case-study chip ([`SimConfig::case_study`]).
    CaseStudy,
    /// The fast 4×4 test chip ([`SimConfig::small_test`]).
    SmallTest,
    /// A 256-tile (16×16) mega-mesh ([`SimConfig::mega_mesh`] at side 16).
    Mega256,
    /// A 1024-tile (32×32) mega-mesh ([`SimConfig::mega_mesh`] at side 32).
    Mega1024,
}

impl BaseConfig {
    /// Materializes the base configuration.
    pub fn config(self) -> SimConfig {
        match self {
            BaseConfig::Target => SimConfig::default(),
            BaseConfig::CaseStudy => SimConfig::case_study(),
            BaseConfig::SmallTest => SimConfig::small_test(),
            BaseConfig::Mega256 => SimConfig::mega_mesh(16),
            BaseConfig::Mega1024 => SimConfig::mega_mesh(32),
        }
    }
}

/// One mix axis entry: a declarative [`MixSpec`] plus its report label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixEntry {
    /// Stable label used in reports and formatters (e.g. `"st64#3"`).
    pub label: String,
    /// The mix recipe.
    pub spec: MixSpec,
}

impl MixEntry {
    /// Builds an entry with an auto-derived label.
    pub fn auto(spec: MixSpec) -> Self {
        let label = match &spec {
            MixSpec::RandomSingleThreaded { count, mix_seed } => format!("st{count}#{mix_seed}"),
            MixSpec::RandomMultiThreaded { count, mix_seed } => format!("mt{count}#{mix_seed}"),
            MixSpec::CaseStudy => "case-study".to_string(),
            MixSpec::Named(names) => {
                let joined = names.join("+");
                if joined.chars().count() > 40 {
                    let head: String = joined.chars().take(32).collect();
                    format!("{head}+...x{}", names.len())
                } else {
                    joined
                }
            }
        };
        MixEntry { label, spec }
    }
}

/// A full simulator sweep: every axis the paper's evaluation grids over.
///
/// Empty `seeds` means "the base config's seed"; empty `patches` means
/// "one identity patch". `weighted_speedup` adds the S-NUCA baseline and
/// per-unique-app alone cells each `(patch, seed)` point needs — deduped
/// across mixes — so weighted speedups can be derived from the same wave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Base configuration preset.
    pub base: BaseConfig,
    /// Schemes to run per mix (S-NUCA reuses the baseline cell).
    pub schemes: Vec<Scheme>,
    /// Workload mixes.
    pub mixes: Vec<MixEntry>,
    /// Seed axis; empty = the base config's seed.
    pub seeds: Vec<u64>,
    /// Config-override axis; empty = identity.
    pub patches: Vec<ConfigPatch>,
    /// Steady-state measurement or a reconfiguration trace.
    pub run: CellRun,
    /// Add baseline + alone cells and derive weighted speedups.
    pub weighted_speedup: bool,
    /// Apply [`SimConfig::auto_intra_cell_threads`] to the base config at
    /// run time (machine-dependent worker count, machine-independent
    /// results).
    pub auto_intra_cell: bool,
}

impl GridSpec {
    /// A steady-state weighted-speedup sweep over `schemes` × `mixes` on
    /// `base` — the shape of most of the paper's figures.
    pub fn new(base: BaseConfig, schemes: Vec<Scheme>, mixes: Vec<MixEntry>) -> Self {
        GridSpec {
            base,
            schemes,
            mixes,
            seeds: Vec::new(),
            patches: Vec::new(),
            run: CellRun::Steady,
            weighted_speedup: true,
            auto_intra_cell: false,
        }
    }
}

/// The experiment payload: a simulator grid or one of the analysis
/// experiments that reproduce non-simulated figures/tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecKind {
    /// Simulator sweep (most figures and tables).
    Grid(GridSpec),
    /// Fig. 2: exact vs GMON-measured miss curves.
    MissCurves(MissCurvesSpec),
    /// Fig. 5: analytic latency-vs-capacity sweet spot.
    LatencyCapacity(LatencyCapacitySpec),
    /// Table 3: planner-step runtimes across system sizes.
    PlannerRuntime(PlannerRuntimeSpec),
    /// §VI-C placement-alternative ablation (exhaustive / SA / bisection).
    PlacementAlternatives(PlacementAlternativesSpec),
}

/// A named, serializable experiment declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Artifact name (`out/<name>.json`).
    pub name: String,
    /// The experiment payload.
    pub kind: SpecKind,
}

impl ExperimentSpec {
    /// Wraps a grid spec under `name`.
    pub fn grid(name: impl Into<String>, grid: GridSpec) -> Self {
        ExperimentSpec {
            name: name.into(),
            kind: SpecKind::Grid(grid),
        }
    }

    /// Rebases a grid experiment onto `base` (no-op for analysis
    /// experiments); used by `--small` and the CI smoke tests.
    pub fn set_base(&mut self, base: BaseConfig) {
        if let SpecKind::Grid(grid) = &mut self.kind {
            grid.base = base;
        }
    }

    /// Runs the experiment and returns its structured report.
    ///
    /// # Errors
    ///
    /// Propagates mix-materialization and simulation-construction errors.
    pub fn run(&self) -> Result<ExperimentReport, String> {
        let data = match &self.kind {
            SpecKind::Grid(grid) => ReportData::Grid(grid.run()?),
            SpecKind::MissCurves(spec) => ReportData::MissCurves(spec.run()?),
            SpecKind::LatencyCapacity(spec) => ReportData::LatencyCapacity(spec.run()),
            SpecKind::PlannerRuntime(spec) => ReportData::PlannerRuntime(spec.run()),
            SpecKind::PlacementAlternatives(spec) => ReportData::PlacementAlternatives(spec.run()),
        };
        Ok(ExperimentReport {
            spec: self.clone(),
            data,
        })
    }
}

/// What a grid cell was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellRole {
    /// A single-app S-NUCA calibration run (weighted-speedup denominator).
    Alone,
    /// The per-mix S-NUCA baseline.
    Baseline,
    /// A scheme-under-test run.
    SchemeRun,
}

/// One executed grid cell: its coordinates plus the full [`SimResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Patch label (`"base"` for the identity patch).
    pub patch: String,
    /// Effective seed of the cell.
    pub seed: u64,
    /// Mix label; for alone cells, the app name.
    pub mix: String,
    /// Scheme display name.
    pub scheme: String,
    /// What the cell was for.
    pub role: CellRole,
    /// Full simulation output.
    pub result: SimResult,
}

/// Derived rollup for one scheme within one `(patch, seed, mix)` group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRow {
    /// Scheme display name.
    pub scheme: String,
    /// Index of the backing cell in [`GridReport::cells`].
    pub cell: usize,
    /// Weighted speedup vs the group's S-NUCA baseline (absent when the
    /// spec did not request weighted speedups).
    pub weighted_speedup: Option<f64>,
    /// Access-weighted mean on-chip (L2↔LLC) cycles per access.
    pub on_chip_latency: f64,
    /// Access-weighted mean off-chip cycles per access.
    pub off_chip_latency: f64,
    /// Instructions retired chip-wide over the measured window.
    pub instructions: f64,
    /// NoC flit-hops by [`cdcs_mesh::TrafficClass`] order (L2↔LLC,
    /// LLC↔Mem, Other).
    pub flit_hops: [f64; 3],
    /// Energy breakdown in nJ (static, core, net, LLC, mem).
    pub energy_nj: [f64; 5],
}

/// All rollups of one `(patch, seed, mix)` sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// Patch label.
    pub patch: String,
    /// Effective seed.
    pub seed: u64,
    /// Mix label.
    pub mix: String,
    /// Index of the S-NUCA baseline cell, when one ran.
    pub baseline: Option<usize>,
    /// Per-process alone performance (weighted-speedup denominators);
    /// empty when the spec did not request weighted speedups.
    pub alone: Vec<f64>,
    /// One row per requested scheme, in spec order.
    pub rows: Vec<SchemeRow>,
}

/// Structured output of a grid experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridReport {
    /// Every executed cell (alone + baseline + scheme runs).
    pub cells: Vec<CellReport>,
    /// Per-`(patch, seed, mix)` rollups, in expansion order.
    pub groups: Vec<GroupReport>,
}

/// The report payload mirroring [`SpecKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum ReportData {
    /// Simulator sweep results.
    Grid(GridReport),
    /// Fig. 2 results.
    MissCurves(MissCurvesReport),
    /// Fig. 5 results.
    LatencyCapacity(LatencyCapacityReport),
    /// Table 3 results.
    PlannerRuntime(PlannerRuntimeReport),
    /// Placement-ablation results.
    PlacementAlternatives(PlacementAlternativesReport),
}

/// A named experiment's full output: the spec that produced it plus the
/// structured data. This is the JSON artifact schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// The spec that produced this report (self-describing artifacts).
    pub spec: ExperimentSpec,
    /// The results.
    pub data: ReportData,
}

impl ExperimentReport {
    /// The grid payload.
    ///
    /// # Panics
    ///
    /// Panics when the report is not a grid experiment's.
    pub fn grid(&self) -> &GridReport {
        match &self.data {
            ReportData::Grid(g) => g,
            other => panic!("expected a grid report, got {other:?}"),
        }
    }
}

impl GridReport {
    /// The scheme names of the first group (spec order) — every group has
    /// the same row set.
    pub fn scheme_names(&self) -> Vec<String> {
        self.groups
            .first()
            .map(|g| g.rows.iter().map(|r| r.scheme.clone()).collect())
            .unwrap_or_default()
    }

    /// Weighted-speedup series per scheme over the groups selected by
    /// `keep` (e.g. one apps-count of a Fig. 13 sweep), in group order.
    pub fn ws_series(&self, keep: impl Fn(&GroupReport) -> bool) -> Vec<(String, Vec<f64>)> {
        let mut series: Vec<(String, Vec<f64>)> = self
            .scheme_names()
            .into_iter()
            .map(|name| (name, Vec::new()))
            .collect();
        for group in self.groups.iter().filter(|g| keep(g)) {
            for (slot, row) in series.iter_mut().zip(&group.rows) {
                debug_assert_eq!(slot.0, row.scheme);
                if let Some(ws) = row.weighted_speedup {
                    slot.1.push(ws);
                }
            }
        }
        series
    }

    /// The backing [`SimResult`] of a rollup row.
    pub fn result(&self, row: &SchemeRow) -> &SimResult {
        &self.cells[row.cell].result
    }

    /// Per-benchmark speedup of `row` over its group's S-NUCA baseline:
    /// the geometric mean, over instances of each app in `mix`, of
    /// `perf(scheme) / perf(baseline)` (Table 1's per-app columns).
    ///
    /// # Panics
    ///
    /// Panics when the group ran without a baseline cell.
    pub fn per_app_speedups(
        &self,
        group: &GroupReport,
        row: &SchemeRow,
        mix: &WorkloadMix,
    ) -> Vec<(String, f64)> {
        let baseline = &self.cells[group.baseline.expect("group has a baseline")].result;
        let perf = self.result(row).process_perf();
        let base = baseline.process_perf();
        let mut per_app: Vec<(String, Vec<f64>)> = Vec::new();
        for (p, app) in mix.processes().iter().enumerate() {
            match per_app.iter_mut().find(|(name, _)| *name == app.name) {
                Some((_, ratios)) => ratios.push(perf[p] / base[p]),
                None => per_app.push((app.name.clone(), vec![perf[p] / base[p]])),
            }
        }
        per_app
            .into_iter()
            .map(|(name, ratios)| (name, runner::gmean(&ratios)))
            .collect()
    }
}

/// A grid spec expanded into its executable form: the effective base
/// config, the flat cell list, and the report wiring that turns the cells'
/// results back into a [`GridReport`].
///
/// This is the seam the streaming path uses: [`GridSpec::run`] feeds the
/// cells through one blocking [`runner::run_grid`] wave, while the
/// `cdcs-serve` daemon hands the same cells to a
/// [`cdcs_sim::GridSession`] on its shared pool, streams per-cell
/// progress, and calls [`ExpandedGrid::assemble`] when the last cell
/// lands — both produce identical reports because assembly only depends
/// on `(cells, results)`.
pub struct ExpandedGrid {
    /// The configuration every cell runs under (auto-intra-cell applied).
    pub config: SimConfig,
    /// The flat cell list, in expansion order.
    pub cells: Vec<GridCell>,
    cell_meta: Vec<CellReportMeta>,
    layout: Vec<GroupLayout>,
}

impl ExpandedGrid {
    /// Splits the expansion into the executable half (config + cells,
    /// which a [`cdcs_sim::GridSession`] takes ownership of) and the
    /// report-assembly half (kept until the results stream back).
    pub fn into_parts(self) -> (SimConfig, Vec<GridCell>, GridAssembly) {
        (
            self.config,
            self.cells,
            GridAssembly {
                cell_meta: self.cell_meta,
                layout: self.layout,
            },
        )
    }

    /// Assembles per-cell results (in cell order) into the structured
    /// report: per-cell [`CellReport`]s plus per-group rollups.
    ///
    /// # Panics
    ///
    /// Panics if `results` does not hold exactly one result per cell.
    pub fn assemble(self, results: Vec<SimResult>) -> GridReport {
        assert_eq!(
            results.len(),
            self.cells.len(),
            "one result per expanded cell"
        );
        let (_, _, assembly) = self.into_parts();
        assembly.assemble(results)
    }
}

/// The report-wiring half of an [`ExpandedGrid`] (see
/// [`ExpandedGrid::into_parts`]): turns the cells' results into a
/// [`GridReport`] once they have all arrived.
pub struct GridAssembly {
    cell_meta: Vec<CellReportMeta>,
    layout: Vec<GroupLayout>,
}

impl GridAssembly {
    /// Assembles per-cell results (in cell order) into the structured
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `results` does not hold exactly one result per expanded
    /// cell.
    pub fn assemble(self, results: Vec<SimResult>) -> GridReport {
        assert_eq!(
            results.len(),
            self.cell_meta.len(),
            "one result per expanded cell"
        );
        let cells: Vec<CellReport> = self
            .cell_meta
            .into_iter()
            .zip(results)
            .map(|(meta, result)| CellReport {
                patch: meta.patch,
                seed: meta.seed,
                mix: meta.mix,
                scheme: meta.scheme,
                role: meta.role,
                result,
            })
            .collect();

        let groups =
            self.layout
                .into_iter()
                .map(|group| {
                    let alone: Vec<f64> = group
                        .alone_cells
                        .iter()
                        .map(|&i| cells[i].result.process_perf()[0])
                        .collect();
                    let rows = group
                        .scheme_cells
                        .iter()
                        .map(|&idx| {
                            let result = &cells[idx].result;
                            let weighted_speedup = group
                                .baseline
                                .filter(|_| !alone.is_empty())
                                .map(|baseline| {
                                    runner::weighted_speedup_vs(
                                        result,
                                        &cells[baseline].result,
                                        &alone,
                                    )
                                });
                            let e = &result.energy;
                            SchemeRow {
                                scheme: cells[idx].scheme.clone(),
                                cell: idx,
                                weighted_speedup,
                                on_chip_latency: result.mean_on_chip_latency(),
                                off_chip_latency: result.mean_off_chip_latency(),
                                instructions: result.system.instructions,
                                flit_hops: std::array::from_fn(|k| {
                                    result
                                        .system
                                        .traffic
                                        .flit_hops(cdcs_mesh::TrafficClass::ALL[k])
                                        as f64
                                }),
                                energy_nj: [e.static_nj, e.core_nj, e.net_nj, e.llc_nj, e.mem_nj],
                            }
                        })
                        .collect();
                    GroupReport {
                        patch: group.patch,
                        seed: group.seed,
                        mix: group.mix,
                        baseline: group.baseline,
                        alone,
                        rows,
                    }
                })
                .collect();

        GridReport { cells, groups }
    }
}

impl GridSpec {
    /// Expands the spec and executes every cell in one parallel wave:
    /// a thin collector over the session-backed [`runner::run_grid`].
    ///
    /// # Errors
    ///
    /// Propagates mix-materialization and simulation-construction errors.
    pub fn run(&self) -> Result<GridReport, String> {
        let expanded = self.expand()?;
        let results = runner::run_grid(&expanded.config, &expanded.cells)?;
        Ok(expanded.assemble(results))
    }

    /// Expands every axis into the flat cell list plus report wiring,
    /// without executing anything.
    ///
    /// # Errors
    ///
    /// Rejects empty axes and propagates mix-materialization errors.
    pub fn expand(&self) -> Result<ExpandedGrid, String> {
        if self.schemes.is_empty() {
            return Err("experiment declares no schemes".into());
        }
        if self.mixes.is_empty() {
            return Err("experiment declares no mixes".into());
        }
        let mut config = self.base.config();
        if self.auto_intra_cell {
            config.intra_cell_threads = SimConfig::auto_intra_cell_threads();
        }

        let mixes: Vec<(String, WorkloadMix)> = self
            .mixes
            .iter()
            .map(|entry| Ok((entry.label.clone(), WorkloadMix::from_spec(&entry.spec)?)))
            .collect::<Result<_, String>>()?;
        let patches: Vec<ConfigPatch> = if self.patches.is_empty() {
            vec![ConfigPatch::default()]
        } else {
            self.patches.clone()
        };
        let seeds: Vec<Option<u64>> = if self.seeds.is_empty() {
            vec![None]
        } else {
            self.seeds.iter().map(|&s| Some(s)).collect()
        };

        // Expansion: one flat cell list. Per (patch, seed): the deduped
        // alone runs (weighted speedup only), then per mix the S-NUCA
        // baseline and every non-S-NUCA scheme. Every cell seeds from
        // (config, cell) alone, so results are independent of ordering and
        // worker assignment.
        let mut cells: Vec<GridCell> = Vec::new();
        let mut cell_meta: Vec<CellReportMeta> = Vec::new();
        let mut layout: Vec<GroupLayout> = Vec::new();
        for patch in &patches {
            for &seed in &seeds {
                let effective_seed = seed.unwrap_or(config.seed);
                let decorate = |mut cell: GridCell| {
                    if !patch.is_identity() {
                        cell = cell.with_patch(patch.clone());
                    }
                    if let Some(s) = seed {
                        cell = cell.with_seed(s);
                    }
                    cell
                };
                // Alone runs: one per unique app name across all mixes
                // (apps are suite profiles — identical wherever they
                // appear).
                let mut alone: Vec<(String, usize)> = Vec::new();
                if self.weighted_speedup {
                    for (_, mix) in &mixes {
                        for app in mix.processes() {
                            if !alone.iter().any(|(name, _)| *name == app.name) {
                                let single = WorkloadMix::new(vec![app.clone()], config.seed);
                                alone.push((app.name.clone(), cells.len()));
                                cells.push(decorate(
                                    GridCell::new(Scheme::SNuca, single).with_run(self.run),
                                ));
                                cell_meta.push(CellReportMeta {
                                    patch: patch.display_label().to_string(),
                                    seed: effective_seed,
                                    mix: app.name.clone(),
                                    scheme: Scheme::SNuca.name(),
                                    role: CellRole::Alone,
                                });
                            }
                        }
                    }
                }
                for (label, mix) in &mixes {
                    let baseline = if self.weighted_speedup || self.schemes.contains(&Scheme::SNuca)
                    {
                        let idx = cells.len();
                        cells.push(decorate(
                            GridCell::new(Scheme::SNuca, mix.clone()).with_run(self.run),
                        ));
                        cell_meta.push(CellReportMeta {
                            patch: patch.display_label().to_string(),
                            seed: effective_seed,
                            mix: label.clone(),
                            scheme: Scheme::SNuca.name(),
                            role: CellRole::Baseline,
                        });
                        Some(idx)
                    } else {
                        None
                    };
                    let scheme_cells: Vec<usize> = self
                        .schemes
                        .iter()
                        .map(|&scheme| {
                            if scheme == Scheme::SNuca {
                                baseline.expect("S-NUCA row implies a baseline cell")
                            } else {
                                let idx = cells.len();
                                cells.push(decorate(
                                    GridCell::new(scheme, mix.clone()).with_run(self.run),
                                ));
                                cell_meta.push(CellReportMeta {
                                    patch: patch.display_label().to_string(),
                                    seed: effective_seed,
                                    mix: label.clone(),
                                    scheme: scheme.name(),
                                    role: CellRole::SchemeRun,
                                });
                                idx
                            }
                        })
                        .collect();
                    let alone_cells: Vec<usize> = if self.weighted_speedup {
                        mix.processes()
                            .iter()
                            .map(|app| {
                                alone
                                    .iter()
                                    .find(|(name, _)| *name == app.name)
                                    .expect("alone run registered above")
                                    .1
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    layout.push(GroupLayout {
                        patch: patch.display_label().to_string(),
                        seed: effective_seed,
                        mix: label.clone(),
                        baseline,
                        alone_cells,
                        scheme_cells,
                    });
                }
            }
        }

        Ok(ExpandedGrid {
            config,
            cells,
            cell_meta,
            layout,
        })
    }
}

/// Pre-execution cell coordinates (zipped with results afterwards).
struct CellReportMeta {
    patch: String,
    seed: u64,
    mix: String,
    scheme: String,
    role: CellRole,
}

/// Pre-execution group wiring.
struct GroupLayout {
    patch: String,
    seed: u64,
    mix: String,
    baseline: Option<usize>,
    alone_cells: Vec<usize>,
    scheme_cells: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_scheme_spec() -> ExperimentSpec {
        ExperimentSpec::grid(
            "unit",
            GridSpec::new(
                BaseConfig::SmallTest,
                vec![Scheme::SNuca, Scheme::cdcs()],
                vec![MixEntry::auto(MixSpec::Named(vec![
                    "calculix".into(),
                    "milc".into(),
                ]))],
            ),
        )
    }

    #[test]
    fn grid_spec_runs_and_derives_weighted_speedups() {
        let report = two_scheme_spec().run().unwrap();
        let grid = report.grid();
        // 2 alone + baseline + cdcs cells.
        assert_eq!(grid.cells.len(), 4);
        assert_eq!(grid.groups.len(), 1);
        let group = &grid.groups[0];
        assert_eq!(group.rows.len(), 2);
        assert_eq!(group.alone.len(), 2);
        let snuca_ws = group.rows[0].weighted_speedup.unwrap();
        assert!((snuca_ws - 1.0).abs() < 1e-12, "baseline WS is 1");
        assert!(group.rows[1].weighted_speedup.unwrap() > 0.3);
    }

    #[test]
    fn alone_runs_are_deduplicated_across_mixes() {
        let mut spec = two_scheme_spec();
        if let SpecKind::Grid(grid) = &mut spec.kind {
            grid.mixes.push(MixEntry::auto(MixSpec::Named(vec![
                "milc".into(),
                "omnet".into(),
            ])));
        }
        let report = spec.run().unwrap();
        let alone_cells = report
            .grid()
            .cells
            .iter()
            .filter(|c| c.role == CellRole::Alone)
            .count();
        // calculix, milc, omnet — milc shared between the two mixes.
        assert_eq!(alone_cells, 3);
    }

    #[test]
    fn seed_and_patch_axes_expand_multiplicatively() {
        let mut spec = two_scheme_spec();
        if let SpecKind::Grid(grid) = &mut spec.kind {
            grid.seeds = vec![1, 2];
            grid.patches = vec![
                ConfigPatch::default(),
                ConfigPatch::named("coarse").with_alloc_granularity(8192),
            ];
        }
        let report = spec.run().unwrap();
        let grid = report.grid();
        assert_eq!(grid.groups.len(), 4, "2 patches × 2 seeds × 1 mix");
        assert_eq!(grid.cells.len(), 16, "4 per group");
        let labels: Vec<&str> = grid.groups.iter().map(|g| g.patch.as_str()).collect();
        assert_eq!(labels, ["base", "base", "coarse", "coarse"]);
        assert_eq!(grid.groups[0].seed, 1);
        assert_eq!(grid.groups[1].seed, 2);
        // The seed axis must actually steer the simulations.
        assert_ne!(
            grid.cells[grid.groups[0].rows[1].cell].result,
            grid.cells[grid.groups[1].rows[1].cell].result
        );
    }

    #[test]
    fn non_ws_specs_omit_alone_and_baseline_cells() {
        let mut spec = two_scheme_spec();
        if let SpecKind::Grid(grid) = &mut spec.kind {
            grid.weighted_speedup = false;
            grid.schemes = vec![Scheme::cdcs()];
        }
        let report = spec.run().unwrap();
        let grid = report.grid();
        assert_eq!(grid.cells.len(), 1);
        assert!(grid.groups[0].baseline.is_none());
        assert!(grid.groups[0].rows[0].weighted_speedup.is_none());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = two_scheme_spec();
        if let SpecKind::Grid(grid) = &mut spec.kind {
            grid.schemes.clear();
        }
        assert!(spec.run().is_err());
        let mut spec = two_scheme_spec();
        if let SpecKind::Grid(grid) = &mut spec.kind {
            grid.mixes.clear();
        }
        assert!(spec.run().is_err());
    }

    #[test]
    fn streamed_session_assembly_matches_blocking_run() {
        // The server's path: expand, drive a session, assemble from the
        // streamed results — must be bit-identical to `GridSpec::run`.
        let spec = two_scheme_spec();
        let SpecKind::Grid(grid) = &spec.kind else {
            unreachable!()
        };
        let blocking = grid.run().unwrap();
        let expanded = grid.expand().unwrap();
        let session = cdcs_sim::GridSession::queued(&expanded.config, expanded.cells.clone());
        session.drive();
        let mut results: Vec<Option<cdcs_sim::SimResult>> =
            (0..expanded.cells.len()).map(|_| None).collect();
        while let Some(done) = session.recv() {
            results[done.index] = Some(done.result.unwrap());
        }
        let streamed = expanded.assemble(results.into_iter().map(Option::unwrap).collect());
        assert_eq!(streamed, blocking);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = two_scheme_spec().run().unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

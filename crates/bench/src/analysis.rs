//! Analysis experiments: the four figure/table reproductions that do not
//! drive the full CMP simulator (miss-curve measurement, the analytic
//! latency sweet spot, planner-runtime timing, and the placement-quality
//! comparators). Each has a typed spec and a serializable report so the
//! binaries stay thin formatters over [`crate::exp::ExperimentSpec::run`].

use cdcs_cache::monitor::{Gmon, GmonConfig, Monitor};
use cdcs_cache::{Line, MissCurve, StackProfiler};
use cdcs_core::alloc::latency_aware_sizes;
use cdcs_core::cost::on_chip_latency;
use cdcs_core::place::alternatives::{
    anneal_data_placement, anneal_thread_placement, bisection_thread_placement,
    exhaustive_thread_placement,
};
use cdcs_core::place::{
    greedy_place_with, optimistic_place_with, place_threads_with, trade_refine_with,
};
use cdcs_core::policy::{CdcsPlanner, Planner};
use cdcs_core::{PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{geometry, Mesh, NocConfig, TileId};
use cdcs_workload::{spec as workload_spec, AccessStream, StreamTarget};
use serde::{Deserialize, Serialize};

/// Fig. 2 spec: miss curves of selected apps, exact vs GMON-measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurvesSpec {
    /// Benchmarks to profile.
    pub apps: Vec<String>,
    /// Accesses recorded per app.
    pub accesses: usize,
    /// Capacity sweep points (count), at `mb_per_step` MB each.
    pub mb_steps: usize,
    /// Capacity step in MB.
    pub mb_per_step: f64,
}

/// One capacity point of a [`MissCurvesReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurveRow {
    /// LLC capacity in MB.
    pub mb: f64,
    /// Per-app `(exact MPKI, GMON-measured MPKI)` in spec app order.
    pub mpki: Vec<(f64, f64)>,
}

/// Fig. 2 results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurvesReport {
    /// App names in row order.
    pub apps: Vec<String>,
    /// One row per capacity point.
    pub rows: Vec<MissCurveRow>,
}

impl MissCurvesSpec {
    /// Profiles each app's stream through an exact stack profiler and a
    /// GMON, returning MPKI curves.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown benchmark names.
    pub fn run(&self) -> Result<MissCurvesReport, String> {
        let mut curves = Vec::new();
        for name in &self.apps {
            let app = workload_spec::by_name(name).ok_or_else(|| format!("unknown app {name}"))?;
            let mut stream = AccessStream::for_thread(app, 0, 42);
            let mut prof = StackProfiler::new();
            let mut gmon = Gmon::new(GmonConfig::covering(256, 64, 4, 524_288));
            let mut count = 0usize;
            // For multi-threaded apps, measure the shared stream (its
            // defining footprint).
            let want_shared = app.is_multi_threaded();
            while count < self.accesses {
                let (target, off) = stream.next_access();
                let keep = if want_shared {
                    target == StreamTarget::ProcessShared
                } else {
                    target == StreamTarget::ThreadPrivate
                };
                if keep {
                    prof.record(Line(off));
                    gmon.record(Line(off));
                    count += 1;
                }
            }
            curves.push((app.apki, prof.miss_curve(), gmon.miss_curve()));
        }
        let rows = (0..=self.mb_steps)
            .map(|step| {
                let mb = step as f64 * self.mb_per_step;
                let lines = mb * 16384.0;
                let mpki = curves
                    .iter()
                    .map(|(apki, exact, gmon)| {
                        // MPKI = APKI × miss ratio at this capacity.
                        let ex = apki * exact.misses_at(lines) / exact.at_zero().max(1.0);
                        let gm = apki * gmon.misses_at(lines) / gmon.at_zero().max(1.0);
                        (ex, gm)
                    })
                    .collect();
                MissCurveRow { mb, mpki }
            })
            .collect();
        Ok(MissCurvesReport {
            apps: self.apps.clone(),
            rows,
        })
    }
}

/// Fig. 5 spec: per-access latency vs capacity for one VC on an analytic
/// cliff-shaped miss curve (the latency-aware-allocation sweet spot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCapacitySpec {
    /// Mesh side (8 = the paper's chip).
    pub side: u16,
    /// Memory latency in cycles.
    pub mem_latency: f64,
    /// Miss-curve control points `(lines, misses)`.
    pub curve: Vec<(f64, f64)>,
    /// Accesses normalizing the miss curve.
    pub accesses: f64,
    /// Sweep points (count) at `lines_per_step` each.
    pub steps: usize,
    /// Capacity step in lines.
    pub lines_per_step: f64,
}

/// One capacity point of a [`LatencyCapacityReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCapacityRow {
    /// Allocated lines.
    pub lines: f64,
    /// Off-chip cycles per access.
    pub off_chip: f64,
    /// On-chip cycles per access.
    pub on_chip: f64,
    /// Total cycles per access.
    pub total: f64,
}

/// Fig. 5 results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCapacityReport {
    /// One row per capacity point.
    pub rows: Vec<LatencyCapacityRow>,
}

impl LatencyCapacitySpec {
    /// Evaluates the analytic latency decomposition over the capacity sweep.
    pub fn run(&self) -> LatencyCapacityReport {
        let mesh = Mesh::new(self.side, self.side);
        let noc = NocConfig::default();
        let curve = MissCurve::new(self.curve.clone());
        let center = geometry::chip_center(&mesh);
        let per_hop = f64::from(noc.round_trip_latency(1));
        let rows = (0..=self.steps)
            .map(|step| {
                let lines = step as f64 * self.lines_per_step;
                let off_chip = curve.misses_at(lines) / self.accesses * self.mem_latency;
                let on_chip =
                    geometry::compact_mean_distance(&mesh, center, lines / 8192.0) * per_hop;
                LatencyCapacityRow {
                    lines,
                    off_chip,
                    on_chip,
                    total: off_chip + on_chip,
                }
            })
            .collect();
        LatencyCapacityReport { rows }
    }
}

/// Builds the representative Table 3 placement problem: each thread a
/// private cliff-curve VC; one process-shared VC.
fn runtime_problem(threads: usize, side: u16) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let mut vcs: Vec<VcInfo> = (0..threads)
        .map(|i| {
            let cliff = 4096.0 + (i as f64 * 977.0) % 20_000.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![
                    (0.0, 30_000.0),
                    (cliff, 2_000.0),
                    (2.0 * cliff, 500.0),
                ]),
            )
        })
        .collect();
    vcs.push(VcInfo::new(
        threads as u32,
        VcKind::process_shared(0),
        MissCurve::new(vec![(0.0, 50_000.0), (8192.0, 1_000.0)]),
    ));
    let thread_infos = (0..threads)
        .map(|i| {
            ThreadInfo::new(
                i as u32,
                vec![(i as u32, 25_000.0), (threads as u32, 5_000.0)],
            )
        })
        .collect();
    PlacementProblem::new(params, vcs, thread_infos).expect("problem")
}

/// Table 3 spec: planner-step runtimes at several `threads/cores` sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerRuntimeSpec {
    /// `(threads, mesh side)` system sizes, column order.
    pub configs: Vec<(usize, u16)>,
    /// Timing repetitions (best-of, after one warm-up call).
    pub repeats: usize,
}

/// Table 3 results. Host-dependent wall-clock timings converted to Mcycles
/// at a nominal 2 GHz — the *scaling across sizes* is the reproduced shape,
/// so no golden test pins these numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerRuntimeReport {
    /// Column labels (`"16/16"`, ...).
    pub columns: Vec<String>,
    /// `(step label, per-column Mcycles)` rows: allocation, thread
    /// placement, data placement, total.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl PlannerRuntimeSpec {
    /// Times each planner step on each system size.
    pub fn run(&self) -> PlannerRuntimeReport {
        let time_mcycles = |f: &mut dyn FnMut()| {
            f(); // warm
            let mut best = f64::INFINITY;
            for _ in 0..self.repeats.max(1) {
                let t = std::time::Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best * 2e9 / 1e6 // seconds → Mcycles at 2 GHz
        };
        let mut alloc_row = Vec::new();
        let mut threads_row = Vec::new();
        let mut data_row = Vec::new();
        let mut total_row = Vec::new();
        let mut columns = Vec::new();
        for &(threads, side) in &self.configs {
            columns.push(format!(
                "{threads}/{}",
                usize::from(side) * usize::from(side)
            ));
            let p = runtime_problem(threads, side);
            let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
            let sizes = latency_aware_sizes(&p, 1024);
            let mut scratch = PlanScratch::new();
            let alloc = time_mcycles(&mut || {
                let _ = latency_aware_sizes(&p, 1024);
            });
            let opt = optimistic_place_with(&p, &sizes, Some(&cores), &mut scratch);
            let thread_place = time_mcycles(&mut || {
                let o = optimistic_place_with(&p, &sizes, Some(&cores), &mut scratch);
                let _ = place_threads_with(&p, &sizes, &o, Some(&cores), 1.0, &mut scratch);
            });
            let placed = place_threads_with(&p, &sizes, &opt, Some(&cores), 1.0, &mut scratch);
            let data_place = time_mcycles(&mut || {
                let mut pl = greedy_place_with(&p, &sizes, &placed, 1024, &mut scratch);
                trade_refine_with(&p, &mut pl, &mut scratch);
            });
            alloc_row.push(alloc);
            threads_row.push(thread_place);
            data_row.push(data_place);
            total_row.push(alloc + thread_place + data_place);
        }
        PlannerRuntimeReport {
            columns,
            rows: vec![
                ("Capacity allocation".into(), alloc_row),
                ("Thread placement".into(), threads_row),
                ("Data placement".into(), data_row),
                ("Total runtime".into(), total_row),
            ],
        }
    }
}

/// Builds a seeded random placement problem for the comparator ablation.
fn ablation_problem(threads: usize, side: u16, seed: u64) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let vcs = (0..threads)
        .map(|i| {
            let cliff = 2048.0 + next() * 30_000.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 10_000.0 + next() * 40_000.0), (cliff, 500.0)]),
            )
        })
        .collect();
    let thread_infos = (0..threads)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 10_000.0 + next() * 40_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, thread_infos).expect("problem")
}

/// Placement-ablation spec: CDCS's heuristics vs exhaustive search,
/// simulated annealing, and recursive bisection on the Eq. 2 cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAlternativesSpec {
    /// Seeds for the small (exhaustive-feasible) instances.
    pub small_seeds: Vec<u64>,
    /// `(threads, side)` of the small instances.
    pub small_size: (usize, u16),
    /// Seeds for the large instances.
    pub large_seeds: Vec<u64>,
    /// `(threads, side)` of the large instances.
    pub large_size: (usize, u16),
    /// Simulated-annealing rounds.
    pub sa_rounds: usize,
}

/// One ablation instance's Eq. 2 costs (absent comparators were skipped —
/// exhaustive search is infeasible on large instances, the paper's point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAlternativesRow {
    /// Problem seed.
    pub seed: u64,
    /// CDCS heuristic cost.
    pub cdcs: f64,
    /// Exhaustive thread placement + annealed data placement.
    pub exhaustive: Option<f64>,
    /// Simulated-annealing cost.
    pub annealed: f64,
    /// Recursive-bisection cost.
    pub bisection: f64,
    /// Annealing wall-clock in seconds (host-dependent).
    pub sa_seconds: f64,
}

/// Placement-ablation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAlternativesReport {
    /// Small-instance rows (with exhaustive comparator).
    pub small: Vec<PlacementAlternativesRow>,
    /// Large-instance rows.
    pub large: Vec<PlacementAlternativesRow>,
}

impl PlacementAlternativesSpec {
    fn run_instance(
        &self,
        threads: usize,
        side: u16,
        seed: u64,
        exhaustive: bool,
    ) -> PlacementAlternativesRow {
        let p = ablation_problem(threads, side, seed);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let cdcs = Planner::plan(&CdcsPlanner::default(), &p, &cores);
        let exhaustive_cost = exhaustive.then(|| {
            let mut ex = cdcs.clone();
            ex.thread_cores = exhaustive_thread_placement(&p, &cdcs);
            let refined = anneal_data_placement(&p, &ex, self.sa_rounds.min(3000), 1024, seed);
            on_chip_latency(&p, &refined)
        });
        let t = std::time::Instant::now();
        let mut sa = cdcs.clone();
        sa.thread_cores = anneal_thread_placement(&p, &cdcs, self.sa_rounds, seed);
        let sa_seconds = t.elapsed().as_secs_f64();
        let mut bis = cdcs.clone();
        bis.thread_cores = bisection_thread_placement(&p);
        PlacementAlternativesRow {
            seed,
            cdcs: on_chip_latency(&p, &cdcs),
            exhaustive: exhaustive_cost,
            annealed: on_chip_latency(&p, &sa),
            bisection: on_chip_latency(&p, &bis),
            sa_seconds,
        }
    }

    /// Runs every instance of the ablation.
    pub fn run(&self) -> PlacementAlternativesReport {
        let (st, ss) = self.small_size;
        let small = self
            .small_seeds
            .iter()
            .map(|&seed| self.run_instance(st, ss, seed, true))
            .collect();
        let (lt, ls) = self.large_size;
        let large = self
            .large_seeds
            .iter()
            .map(|&seed| self.run_instance(lt, ls, seed, false))
            .collect();
        PlacementAlternativesReport { small, large }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_curves_cover_the_capacity_sweep() {
        let spec = MissCurvesSpec {
            apps: vec!["omnet".into(), "milc".into()],
            accesses: 20_000,
            mb_steps: 4,
            mb_per_step: 0.25,
        };
        let report = spec.run().unwrap();
        assert_eq!(report.rows.len(), 5);
        assert_eq!(report.rows[0].mpki.len(), 2);
        // Miss curves are non-increasing in capacity.
        for app in 0..2 {
            for pair in report.rows.windows(2) {
                assert!(pair[1].mpki[app].0 <= pair[0].mpki[app].0 + 1e-9);
            }
        }
        assert!(spec.run().unwrap() == report, "deterministic");
    }

    #[test]
    fn miss_curves_reject_unknown_apps() {
        let spec = MissCurvesSpec {
            apps: vec!["nope".into()],
            accesses: 100,
            mb_steps: 1,
            mb_per_step: 0.25,
        };
        assert!(spec.run().is_err());
    }

    #[test]
    fn latency_capacity_has_a_sweet_spot_shape() {
        let spec = LatencyCapacitySpec {
            side: 8,
            mem_latency: 150.0,
            curve: vec![
                (0.0, 100.0),
                (38_000.0, 85.0),
                (41_000.0, 5.0),
                (60_000.0, 3.0),
            ],
            accesses: 100.0,
            steps: 32,
            lines_per_step: 2048.0,
        };
        let report = spec.run();
        assert_eq!(report.rows.len(), 33);
        let first = &report.rows[0];
        let last = &report.rows[32];
        assert!(last.off_chip < first.off_chip, "off-chip falls");
        assert!(last.on_chip > first.on_chip, "on-chip rises");
        let min_total = report.rows.iter().map(|r| r.total).fold(f64::MAX, f64::min);
        assert!(
            min_total < first.total && min_total < last.total,
            "sweet spot inside"
        );
    }

    #[test]
    fn placement_alternatives_produce_finite_costs() {
        let spec = PlacementAlternativesSpec {
            small_seeds: vec![0],
            small_size: (4, 3),
            large_seeds: vec![],
            large_size: (36, 6),
            sa_rounds: 50,
        };
        let report = spec.run();
        assert_eq!(report.small.len(), 1);
        let row = &report.small[0];
        assert!(row.cdcs.is_finite() && row.cdcs > 0.0);
        assert!(row.exhaustive.unwrap().is_finite());
        assert!(row.annealed.is_finite() && row.bisection.is_finite());
    }
}

//! Persisted JSON experiment artifacts.
//!
//! Every binary writes its [`ExperimentReport`] to `<out>/<name>.json`
//! (pretty-printed, committable). Writing *always* verifies the artifact:
//! the file is read back, deserialized, and compared `PartialEq`-exact
//! against the in-memory report — floats round-trip bit-exactly through
//! the vendored `serde_json` — so a schema or serializer regression fails
//! the producing run instead of a later consumer.

use crate::exp::ExperimentReport;
use std::path::{Path, PathBuf};

/// The artifact directory: `--out <dir>` on the command line, else the
/// `CDCS_OUT` environment variable, else `out/`. A `--out` flag with no
/// value warns on stderr (via [`crate::arg_value`]) instead of silently
/// falling through.
pub fn out_dir() -> PathBuf {
    if let Some(dir) = crate::arg_value("out") {
        return PathBuf::from(dir);
    }
    if let Ok(dir) = std::env::var("CDCS_OUT") {
        return PathBuf::from(dir);
    }
    PathBuf::from("out")
}

/// Writes `report` to `<dir>/<spec name>.json` and verifies the artifact
/// round-trips to an identical report.
///
/// # Errors
///
/// Returns I/O errors, serialization errors, and round-trip mismatches.
pub fn write(report: &ExperimentReport, dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.json", report.spec.name));
    let json =
        serde_json::to_string_pretty(report).map_err(|e| format!("serializing report: {e}"))?;
    std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    // Verification gate: the artifact on disk must reproduce the report.
    // Non-finite floats are the one lawful divergence: NaN/inf serialize
    // as `null` by design, and `null != NaN` under `PartialEq` — so when
    // the value compare fails, accept the artifact iff re-serializing the
    // read-back value reproduces the file byte-for-byte (a serialization
    // fixpoint; structural or precision drift still fails).
    let back = read(&path)?;
    if back != *report {
        let reserialized = serde_json::to_string_pretty(&back)
            .map_err(|e| format!("re-serializing read-back report: {e}"))?;
        if reserialized != json {
            return Err(format!(
                "artifact {} does not round-trip to the in-memory report",
                path.display()
            ));
        }
    }
    Ok(path)
}

/// Reads an artifact back into an [`ExperimentReport`].
///
/// # Errors
///
/// Returns I/O and deserialization errors.
pub fn read(path: &Path) -> Result<ExperimentReport, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry};
    use cdcs_sim::Scheme;
    use cdcs_workload::MixSpec;

    #[test]
    fn artifacts_write_verify_and_read_back() {
        let spec = ExperimentSpec::grid(
            "artifact_unit",
            GridSpec::new(
                BaseConfig::SmallTest,
                vec![Scheme::SNuca, Scheme::cdcs()],
                vec![MixEntry::auto(MixSpec::Named(vec![
                    "calculix".into(),
                    "milc".into(),
                ]))],
            ),
        );
        let report = spec.run().unwrap();
        let dir = std::env::temp_dir().join(format!("cdcs-artifact-test-{}", std::process::id()));
        let path = write(&report, &dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "artifact_unit.json");
        let back = read(&path).unwrap();
        assert_eq!(back, report);

        // A NaN in a derived metric must not fail the write gate: NaN
        // serializes as null by design, so the value compare diverges but
        // the serialization fixpoint holds.
        let mut nan_report = report.clone();
        if let crate::exp::ReportData::Grid(grid) = &mut nan_report.data {
            grid.groups[0].rows[0].on_chip_latency = f64::NAN;
            nan_report.spec.name = "artifact_unit_nan".into();
        }
        write(&nan_report, &dir).expect("NaN-bearing reports still persist");

        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Golden port tests: the spec-API paths must be *numerically identical* to
//! the pre-redesign `run_mixes` / `run_trace` paths.
//!
//! Every simulation seeds from `(config, cell)` alone, so porting the
//! binaries onto `ExperimentSpec` cannot change a single bit of any result
//! — these tests pin that for the two paths the redesign touched most:
//! fig12 (factor-analysis sweep through one grid wave) and fig17 (trace
//! cells through the same wave).

use cdcs_bench::exp::{BaseConfig, SpecKind};
use cdcs_bench::{run_mixes, specs, st_mix};
use cdcs_core::policy::CdcsPlanner;
use cdcs_sim::{MoveScheme, Scheme, SimConfig, Simulation, ThreadSched};

#[test]
fn fig12_spec_path_matches_legacy_run_mixes_exactly() {
    let mixes = 2usize;
    let apps = 2usize;

    // New path: the fig12 spec rebased onto the small test chip.
    let mut spec = specs::fig12(mixes, &[apps]);
    spec.set_base(BaseConfig::SmallTest);
    let report = spec.run().unwrap();
    let grid = report.grid();

    // Legacy path: exactly what the pre-redesign fig12 binary ran.
    let config = SimConfig::small_test();
    let variants: Vec<Scheme> = vec![
        Scheme::jigsaw_random(),
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(true, false, false),
            sched: ThreadSched::Random,
        },
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, true, false),
            sched: ThreadSched::Random,
        },
        Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, false, true),
            sched: ThreadSched::Random,
        },
        Scheme::cdcs(),
    ];
    let all_mixes: Vec<_> = (0..mixes).map(|m| st_mix(apps, m)).collect();
    let legacy = run_mixes(&config, &all_mixes, &variants);

    assert_eq!(grid.groups.len(), legacy.len());
    for (group, outcome) in grid.groups.iter().zip(&legacy) {
        assert_eq!(group.rows.len(), outcome.runs.len());
        for (row, (name, ws, result)) in group.rows.iter().zip(&outcome.runs) {
            assert_eq!(&row.scheme, name);
            // Bit-exact weighted speedup and full result identity.
            assert_eq!(row.weighted_speedup.unwrap(), *ws, "{name} WS diverged");
            assert_eq!(grid.result(row), result, "{name} SimResult diverged");
        }
    }
}

#[test]
fn fig17_spec_path_matches_legacy_run_trace_exactly() {
    let apps = 2usize;
    let (pre, post) = (6usize, 4usize);

    let mut spec = specs::fig17(apps, pre, post);
    spec.set_base(BaseConfig::SmallTest);
    if let SpecKind::Grid(grid) = &mut spec.kind {
        // Pin the legacy comparison to the single-core engine; sharded
        // results are bit-identical anyway (engine equivalence tests), but
        // the golden diff should not depend on that.
        grid.auto_intra_cell = false;
    }
    let report = spec.run().unwrap();
    let grid = report.grid();
    assert_eq!(grid.groups.len(), 3, "one group per move scheme");

    let mix = st_mix(apps, 0);
    for (group, mv) in grid.groups.iter().zip([
        MoveScheme::Instant,
        MoveScheme::DemandMove,
        MoveScheme::BulkInvalidate,
    ]) {
        assert_eq!(group.patch, mv.name());
        // Legacy path: exactly what the pre-redesign fig17 binary ran.
        let config = SimConfig {
            scheme: Scheme::cdcs(),
            move_scheme: mv,
            interval_cycles: 10_000,
            reconfig_benefit_factor: 0.0,
            ..SimConfig::small_test()
        };
        let legacy = Simulation::new(config, mix.clone())
            .unwrap()
            .run_trace(pre, post);
        let ported = grid.result(&group.rows[0]);
        assert_eq!(ported, &legacy, "{} trace diverged", mv.name());
        assert_eq!(ported.ipc_trace, legacy.ipc_trace);
    }
}

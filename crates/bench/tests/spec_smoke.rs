//! End-to-end smoke of every figure/table/example spec on small systems.
//!
//! Binaries used to be build-only in CI; now every spec constructor in
//! `cdcs_bench::specs` is executed end to end — expansion, the single grid
//! wave, rollups, JSON artifact write, verified read-back — at smoke scale.

use cdcs_bench::artifact;
use cdcs_bench::exp::{BaseConfig, ExperimentSpec, SpecKind};
use cdcs_bench::specs;
use cdcs_sim::ConfigPatch;
use cdcs_workload::WorkloadMix;

/// Rebases a grid spec onto the smallest chip that fits its mixes and
/// shortens its epochs so the whole suite stays seconds-scale.
fn shrink(spec: &mut ExperimentSpec) {
    let SpecKind::Grid(grid) = &mut spec.kind else {
        return; // analysis specs are already smoke-sized by their knobs
    };
    let max_threads = grid
        .mixes
        .iter()
        .map(|entry| {
            WorkloadMix::from_spec(&entry.spec)
                .expect("spec mix materializes")
                .total_threads()
        })
        .max()
        .expect("specs declare mixes");
    // small_test is a 16-tile chip; the case study is 36 tiles. No smoke
    // spec exceeds 36 threads.
    grid.base = if max_threads <= 16 {
        BaseConfig::SmallTest
    } else {
        BaseConfig::CaseStudy
    };
    grid.auto_intra_cell = false;
    if grid.patches.is_empty() {
        grid.patches.push(ConfigPatch::named("smoke"));
    }
    for patch in &mut grid.patches {
        patch.epoch_cycles.get_or_insert(150_000);
        patch.interval_cycles.get_or_insert(15_000);
        patch.warmup_epochs.get_or_insert(1);
        patch.measure_epochs.get_or_insert(1);
    }
}

#[test]
fn every_spec_runs_end_to_end_and_round_trips() {
    let dir = std::env::temp_dir().join(format!("cdcs-spec-smoke-{}", std::process::id()));
    let all = specs::all_smoke_specs();
    assert_eq!(all.len(), 22, "18 binaries + 4 examples");
    let mut names = Vec::new();
    for mut spec in all {
        shrink(&mut spec);
        names.push(spec.name.clone());
        let report = spec
            .run()
            .unwrap_or_else(|e| panic!("spec {} failed: {e}", spec.name));
        // The spec travels inside its report (self-describing artifacts).
        assert_eq!(report.spec.name, spec.name);
        // Persist + verified round-trip (write() re-reads and compares).
        let path = artifact::write(&report, &dir)
            .unwrap_or_else(|e| panic!("artifact {} failed: {e}", spec.name));
        let back = artifact::read(&path).unwrap();
        assert_eq!(back, report, "artifact {} diverged", spec.name);
        // Grid reports must have derived rollups for every group.
        if let SpecKind::Grid(_) = &spec.kind {
            let grid = report.grid();
            assert!(!grid.groups.is_empty(), "{} has no groups", spec.name);
            for group in &grid.groups {
                assert!(!group.rows.is_empty());
                for row in &group.rows {
                    assert!(
                        row.instructions > 0.0,
                        "{}: empty cell for {}",
                        spec.name,
                        row.scheme
                    );
                }
            }
        }
    }
    // All 18 figure/table/scenario binaries and all 4 examples are covered.
    for expected in [
        "fig2",
        "fig5",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table1",
        "table3",
        "coarse_grain",
        "gmon_ablation",
        "placement_ablation",
        "quickstart",
        "case_study",
        "multithreaded_mix",
        "under_committed",
        "mega_mesh",
        "dynamic_mix",
        "trace_replay",
    ] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

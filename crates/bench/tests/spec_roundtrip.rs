//! The experiment server's input contract: every built-in
//! [`ExperimentSpec`] must survive JSON serialize → deserialize *bit*-equal
//! (structurally identical spec, and a re-serialization that reproduces the
//! first byte stream exactly). `specs/quickstart.json` is the committed
//! exemplar clients submit to `cdcs-serve`; it must stay in lockstep with
//! `specs::quickstart()`.

use cdcs_bench::exp::ExperimentSpec;
use cdcs_bench::specs;

#[test]
fn all_builtin_specs_round_trip_bit_equal() {
    let all = specs::all_smoke_specs();
    assert_eq!(all.len(), 22, "the built-in spec catalogue");
    for spec in all {
        let json = serde_json::to_string_pretty(&spec)
            .unwrap_or_else(|e| panic!("serializing {}: {e}", spec.name));
        let back: ExperimentSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("deserializing {}: {e}", spec.name));
        assert_eq!(back, spec, "{} drifted through JSON", spec.name);
        // Byte-level fixpoint: the round-tripped spec serializes to the
        // very same bytes (floats shortest-round-trip, field order stable).
        let again = serde_json::to_string_pretty(&back)
            .unwrap_or_else(|e| panic!("re-serializing {}: {e}", spec.name));
        assert_eq!(again, json, "{} JSON is not a fixpoint", spec.name);
    }
}

const QUICKSTART_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/quickstart.json");
const MEGA_MESH_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/mega_mesh.json");
const DYNAMIC_MIX_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/dynamic_mix.json");

/// The committed exemplar specs and the constructors they must track.
fn committed_specs() -> Vec<(&'static str, ExperimentSpec)> {
    vec![
        (QUICKSTART_SPEC, specs::quickstart()),
        (MEGA_MESH_SPEC, specs::mega_mesh(1, 2)),
        (DYNAMIC_MIX_SPEC, specs::dynamic_mix()),
    ]
}

/// Maintenance hook, not a check: `CDCS_WRITE_SPECS=1 cargo test -p
/// cdcs-bench --test spec_roundtrip` rewrites the committed specs from the
/// constructors (the next test then verifies the result).
#[test]
fn regenerate_committed_specs_when_asked() {
    if std::env::var("CDCS_WRITE_SPECS").is_err() {
        return;
    }
    for (path, spec) in committed_specs() {
        let canonical = serde_json::to_string_pretty(&spec).expect("serializes");
        std::fs::write(path, format!("{canonical}\n")).expect("writing spec");
    }
}

#[test]
fn committed_specs_match_their_constructors() {
    for (path, spec) in committed_specs() {
        let committed =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path} is committed: {e}"));
        let parsed: ExperimentSpec =
            serde_json::from_str(&committed).expect("committed spec parses");
        assert_eq!(parsed, spec, "{path} drifted from its constructor");
        // And the file itself is the canonical serialization (regenerate
        // with `CDCS_WRITE_SPECS=1`).
        let canonical = serde_json::to_string_pretty(&spec).expect("serializes");
        assert_eq!(
            committed,
            format!("{canonical}\n"),
            "{path} is not the canonical pretty serialization"
        );
    }
}

//! The experiment server's input contract: every built-in
//! [`ExperimentSpec`] must survive JSON serialize → deserialize *bit*-equal
//! (structurally identical spec, and a re-serialization that reproduces the
//! first byte stream exactly). `specs/quickstart.json` is the committed
//! exemplar clients submit to `cdcs-serve`; it must stay in lockstep with
//! `specs::quickstart()`.

use cdcs_bench::exp::ExperimentSpec;
use cdcs_bench::specs;

#[test]
fn all_builtin_specs_round_trip_bit_equal() {
    let all = specs::all_smoke_specs();
    assert_eq!(all.len(), 19, "the built-in spec catalogue");
    for spec in all {
        let json = serde_json::to_string_pretty(&spec)
            .unwrap_or_else(|e| panic!("serializing {}: {e}", spec.name));
        let back: ExperimentSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("deserializing {}: {e}", spec.name));
        assert_eq!(back, spec, "{} drifted through JSON", spec.name);
        // Byte-level fixpoint: the round-tripped spec serializes to the
        // very same bytes (floats shortest-round-trip, field order stable).
        let again = serde_json::to_string_pretty(&back)
            .unwrap_or_else(|e| panic!("re-serializing {}: {e}", spec.name));
        assert_eq!(again, json, "{} JSON is not a fixpoint", spec.name);
    }
}

const QUICKSTART_SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/quickstart.json");

/// Maintenance hook, not a check: `CDCS_WRITE_SPECS=1 cargo test -p
/// cdcs-bench --test spec_roundtrip` rewrites the committed spec from the
/// constructor (the next test then verifies the result).
#[test]
fn regenerate_quickstart_spec_when_asked() {
    if std::env::var("CDCS_WRITE_SPECS").is_err() {
        return;
    }
    let canonical = serde_json::to_string_pretty(&specs::quickstart()).expect("serializes");
    std::fs::write(QUICKSTART_SPEC, format!("{canonical}\n")).expect("writing spec");
}

#[test]
fn committed_quickstart_spec_matches_the_constructor() {
    let committed =
        std::fs::read_to_string(QUICKSTART_SPEC).expect("specs/quickstart.json is committed");
    let parsed: ExperimentSpec = serde_json::from_str(&committed).expect("committed spec parses");
    assert_eq!(
        parsed,
        specs::quickstart(),
        "specs/quickstart.json drifted from specs::quickstart()"
    );
    // And the file itself is the canonical serialization (regenerate with
    // `serde_json::to_string_pretty(&specs::quickstart())` + newline).
    let canonical = serde_json::to_string_pretty(&specs::quickstart()).expect("serializes");
    assert_eq!(
        committed,
        format!("{canonical}\n"),
        "specs/quickstart.json is not the canonical pretty serialization"
    );
}

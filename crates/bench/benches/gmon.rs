//! Monitor microbenchmarks: per-access record cost and curve extraction for
//! GMONs and UMONs (the monitors run on every LLC access in hardware; in
//! the simulator they must be cheap).

use cdcs_cache::monitor::{Gmon, GmonConfig, Monitor, Umon, UmonConfig};
use cdcs_cache::Line;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_monitors(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_record");
    group.throughput(Throughput::Elements(1));
    group.bench_function("gmon_64w", |b| {
        let mut g = Gmon::new(GmonConfig::covering(64, 64, 4, 524_288));
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9e37_79b9);
            g.record(Line(a % 100_000));
        })
    });
    group.bench_function("umon_256w", |b| {
        let mut u = Umon::new(UmonConfig {
            sets: 64,
            ways: 256,
            sample_period: 32,
        });
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9e37_79b9);
            u.record(Line(a % 100_000));
        })
    });
    group.finish();

    let mut group = c.benchmark_group("monitor_curve");
    group.bench_function("gmon_miss_curve", |b| {
        let mut g = Gmon::new(GmonConfig::covering(64, 64, 4, 524_288));
        for a in 0..200_000u64 {
            g.record(Line(a % 30_000));
        }
        b.iter(|| g.miss_curve())
    });
    group.finish();
}

criterion_group!(benches, bench_monitors);
criterion_main!(benches);

//! End-to-end simulation-engine benchmarks: the batched interval pipeline
//! (and the one-access-at-a-time reference path it replaced) on the same
//! small S-NUCA / CDCS cells the experiment binaries sweep thousands of
//! times.
//!
//! The `simulation/*` rows continue the series recorded in the repo-root
//! trajectory files: they previously lived in the `llc` bench (committed as
//! `BENCH_llc.json`) and now feed `BENCH_sim.json` via `scripts/bench.sh`.
//! Keep the construction inside `iter` — the baselines were measured that
//! way, so the rows stay comparable across PRs.

use cdcs_sim::{Scheme, SimConfig, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_cell(scheme: Scheme, reference: bool) -> cdcs_sim::SimResult {
    let mut config = SimConfig::small_test();
    config.scheme = scheme;
    config.warmup_epochs = 1;
    config.measure_epochs = 1;
    config.reference_engine = reference;
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
        .expect("mix");
    Simulation::new(config, mix).expect("sim").run()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| b.iter(|| run_cell(scheme, false)));
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    // The definitional per-access engine, kept for the equivalence golden
    // test: benchmarked so the batched pipeline's advantage stays visible
    // in the trajectory file.
    let mut group = c.benchmark_group("simulation_reference");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| b.iter(|| run_cell(scheme, true)));
    }
    group.finish();
}

criterion_group!(benches, bench_sim, bench_reference);
criterion_main!(benches);

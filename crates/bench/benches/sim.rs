//! End-to-end simulation-engine benchmarks: the batched interval pipeline,
//! the bank-sharded parallel pipeline, and the one-access-at-a-time
//! reference path, on the same small S-NUCA / CDCS cells the experiment
//! binaries sweep thousands of times — plus a 1-cell case-study run where
//! intra-cell sharding is the only available parallelism.
//!
//! The `simulation/*` rows continue the series recorded in the repo-root
//! trajectory files: they previously lived in the `llc` bench (committed as
//! `BENCH_llc.json`) and now feed `BENCH_sim.json` via `scripts/bench.sh`.
//! Keep the construction inside `iter` — the baselines were measured that
//! way, so the rows stay comparable across PRs. `simulation_sharded/*`
//! rows run the same small cells through the bank-sharded pipeline (2
//! workers), and `scripts/check_bench_regression.sh` gates both groups
//! against `simulation_reference/*`. `simulation_case_study/*` records the
//! serial-vs-sharded wall clock on one big cell (the intra-cell win the
//! sharding exists for); it is informational, not gated — absolute medians
//! are machine-dependent.

use cdcs_sim::{EngineMode, Scheme, SimConfig, Simulation};
use cdcs_workload::{EventScript, MixSpec, WorkloadMix};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_cell(scheme: Scheme, reference: bool, intra_cell_threads: usize) -> cdcs_sim::SimResult {
    let mut config = SimConfig::small_test();
    config.scheme = scheme;
    config.warmup_epochs = 1;
    config.measure_epochs = 1;
    config.reference_engine = reference;
    config.intra_cell_threads = intra_cell_threads;
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
        .expect("mix");
    Simulation::new(config, mix).expect("sim").run()
}

/// One §II-B case-study cell (36 tiles, 36 threads), shortened to one
/// warm-up + one measured epoch so the bench stays CI-sized.
fn run_case_study_cell(intra_cell_threads: usize) -> cdcs_sim::SimResult {
    let mut config = SimConfig::case_study();
    config.scheme = Scheme::cdcs();
    config.warmup_epochs = 1;
    config.measure_epochs = 1;
    config.intra_cell_threads = intra_cell_threads;
    let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy).expect("mix");
    Simulation::new(config, mix).expect("sim").run()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| b.iter(|| run_cell(scheme, false, 0)));
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    // The bank-sharded pipeline on the same small cells (2 workers). Small
    // cells are near the break-even point for sharding; the row exists so
    // the sharded/reference ratio is gated like the batched one.
    let mut group = c.benchmark_group("simulation_sharded");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| b.iter(|| run_cell(scheme, false, 2)));
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    // The definitional per-access engine, kept for the equivalence golden
    // test: benchmarked so the batched pipeline's advantage stays visible
    // in the trajectory file.
    let mut group = c.benchmark_group("simulation_reference");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| b.iter(|| run_cell(scheme, true, 0)));
    }
    group.finish();
}

/// The event-driven engine on the same small CDCS cell: `steady` is an
/// empty script (bit-identical results to `simulation/CDCS` — the row
/// measures the pure dispatch/gating overhead, which
/// `scripts/check_bench_regression.sh` bounds against the batched row),
/// `bursty` runs a seeded generated script so event application itself
/// stays on the trajectory.
fn run_event_cell(events: EventScript) -> cdcs_sim::SimResult {
    let mut config = SimConfig::small_test();
    config.scheme = Scheme::cdcs();
    config.warmup_epochs = 1;
    config.measure_epochs = 1;
    config.engine = EngineMode::Event;
    config.events = events;
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
        .expect("mix");
    Simulation::new(config, mix).expect("sim").run()
}

fn bench_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_event");
    group.sample_size(10);
    group.bench_function("steady", |b| {
        b.iter(|| run_event_cell(EventScript::steady()))
    });
    // Two epochs of the small config = 1M cycles of horizon; seed fixed so
    // the script (and thus the row) is identical on every machine.
    let bursty = EventScript::generate(7, 1_000_000, 2);
    group.bench_function("bursty", |b| b.iter(|| run_event_cell(bursty.clone())));
    group.finish();
}

fn bench_case_study(c: &mut Criterion) {
    // Where sharding pays: one big cell — the batched engine, the
    // 1-worker sharded pipeline (pure bank-grouped locality, no spawns:
    // the best configuration on single-core boxes), and 4 shard workers.
    let mut group = c.benchmark_group("simulation_case_study");
    group.sample_size(10);
    group.bench_function("CDCS-serial", |b| b.iter(|| run_case_study_cell(0)));
    group.bench_function("CDCS-sharded1", |b| b.iter(|| run_case_study_cell(1)));
    group.bench_function("CDCS-sharded4", |b| b.iter(|| run_case_study_cell(4)));
    group.finish();
}

criterion_group!(
    benches,
    bench_sim,
    bench_sharded,
    bench_reference,
    bench_event,
    bench_case_study
);
criterion_main!(benches);

//! LLC access-path microbenchmarks: LRU pool operations (the per-access
//! cost bounds every experiment's runtime). The end-to-end simulation rows
//! that used to live here moved to the `sim` bench (`BENCH_sim.json`).

use cdcs_cache::{Line, LruPool};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_pool");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access_insert_hot", |b| {
        let mut pool = LruPool::new(8192);
        for a in 0..8192u64 {
            pool.insert(Line(a));
        }
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 1) % 8192;
            pool.access_insert(Line(a))
        })
    });
    group.bench_function("access_insert_thrash", |b| {
        let mut pool = LruPool::new(4096);
        let mut a = 0u64;
        b.iter(|| {
            a += 1;
            pool.access_insert(Line(a % 100_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);

//! Simulator access-path microbenchmarks: LRU pool operations and
//! end-to-end small simulations (the per-access cost bounds every
//! experiment's runtime).

use cdcs_cache::{Line, LruPool};
use cdcs_sim::{Scheme, SimConfig, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_pool");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access_insert_hot", |b| {
        let mut pool = LruPool::new(8192);
        for a in 0..8192u64 {
            pool.insert(Line(a));
        }
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 1) % 8192;
            pool.access_insert(Line(a))
        })
    });
    group.bench_function("access_insert_thrash", |b| {
        let mut pool = LruPool::new(4096);
        let mut a = 0u64;
        b.iter(|| {
            a += 1;
            pool.access_insert(Line(a % 100_000))
        })
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut config = SimConfig::small_test();
                config.scheme = scheme;
                config.warmup_epochs = 1;
                config.measure_epochs = 1;
                let mix =
                    WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
                        .expect("mix");
                Simulation::new(config, mix).expect("sim").run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool, bench_sim);
criterion_main!(benches);

//! Placement-algorithm scaling: optimistic placement, thread placement and
//! the trade search as thread counts grow (the paper projects 1.2% overhead
//! at 1024 cores from the quadratic steps).
//!
//! The 16/64/144 rows run the flat four-step pipeline; the 256/1024 rows
//! run the hierarchical region planner (flat planning is what the
//! hierarchy exists to replace at that scale — `check_bench_regression.sh`
//! gates `full_pipeline/256` against the linear extrapolation of the flat
//! 64→144 trend from the same run). `placement_incremental` compares a
//! cold hierarchical epoch against a warm-start epoch where only a handful
//! of VCs changed demand; the checker requires warm ≥5× faster.

use cdcs_cache::MissCurve;
use cdcs_core::place::{greedy_place, optimistic_place, place_threads, trade_refine};
use cdcs_core::policy::HierarchicalPlanner;
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::{Mesh, TileId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn problem(threads: usize, side: u16) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let vcs = (0..threads)
        .map(|i| {
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 20_000.0), (8192.0, 500.0)]),
            )
        })
        .collect();
    let infos = (0..threads)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 20_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, infos).expect("problem")
}

/// A mega-mesh problem with per-VC cliffs; ids below `changed_prefix` have
/// their demand scaled (the incremental bench's "changed epoch").
fn mega_problem(threads: usize, side: u16, changed_prefix: usize) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let vcs = (0..threads)
        .map(|i| {
            let scale = if i < changed_prefix { 2.0 } else { 1.0 };
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![
                    (0.0, scale * (18_000.0 + 7.0 * i as f64)),
                    (scale * (2048.0 + 32.0 * (i % 64) as f64), 400.0),
                ]),
            )
        })
        .collect();
    let infos = (0..threads)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 15_000.0 + i as f64)]))
        .collect();
    PlacementProblem::new(params, vcs, infos).expect("problem")
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_scaling");
    group.sample_size(10);
    for &(threads, side) in &[(16usize, 4u16), (64, 8), (144, 12)] {
        let p = problem(threads, side);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let sizes: Vec<u64> = vec![4096; threads];
        group.bench_with_input(BenchmarkId::new("full_pipeline", threads), &p, |b, p| {
            b.iter(|| {
                let o = optimistic_place(p, &sizes, Some(&cores));
                let placed = place_threads(p, &sizes, &o, Some(&cores), 1.0);
                let mut pl = greedy_place(p, &sizes, &placed, 1024);
                trade_refine(p, &mut pl);
                pl
            })
        });
    }
    // Mega-mesh scales: the flat pipeline is superlinear per tile, so these
    // rows run the hierarchical planner (cold: sizing + region assignment +
    // thread placement + per-region solves) — the configuration a mega-mesh
    // chip would actually plan with.
    for &(threads, side) in &[(256usize, 16u16), (1024, 32)] {
        let p = mega_problem(threads, side, 0);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let planner = HierarchicalPlanner::new(4, 0.0);
        let mut scratch = PlanScratch::new();
        let mut out = Placement::default();
        group.bench_with_input(BenchmarkId::new("full_pipeline", threads), &p, |b, p| {
            b.iter(|| {
                planner.plan_into(p, None, &cores, &mut scratch, &mut out);
                out.num_banks()
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_incremental");
    group.sample_size(10);
    for &(threads, side) in &[(256usize, 16u16), (1024, 32)] {
        let pa = mega_problem(threads, side, 0);
        let pb = mega_problem(threads, side, 4); // 4 VCs change demand
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let planner = HierarchicalPlanner::new(4, 0.05);

        // Cold: every epoch replans hierarchically from scratch.
        let mut scratch = PlanScratch::new();
        let mut out = Placement::default();
        group.bench_with_input(BenchmarkId::new("cold", threads), &pa, |b, p| {
            b.iter(|| {
                planner.plan_into(p, None, &cores, &mut scratch, &mut out);
                out.num_banks()
            })
        });

        // Warm: epochs alternate between two demand snapshots that differ
        // in 4 VCs, so every iteration is a genuine incremental replan
        // (signatures diff, unchanged rows copied, 4 VCs re-solved).
        let mut scratch = PlanScratch::new();
        let mut prev = planner.plan_with(&pa, None, &cores, &mut scratch);
        let mut cur = Placement::default();
        planner.plan_into(&pb, Some(&prev), &prev.thread_cores, &mut scratch, &mut cur);
        std::mem::swap(&mut prev, &mut cur);
        planner.plan_into(&pa, Some(&prev), &prev.thread_cores, &mut scratch, &mut cur);
        std::mem::swap(&mut prev, &mut cur);
        let mut flip = false;
        group.bench_function(BenchmarkId::new("warm", threads), |b| {
            b.iter(|| {
                let p = if flip { &pa } else { &pb };
                flip = !flip;
                planner.plan_into(p, Some(&prev), &prev.thread_cores, &mut scratch, &mut cur);
                std::mem::swap(&mut prev, &mut cur);
                prev.num_banks()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_incremental);
criterion_main!(benches);

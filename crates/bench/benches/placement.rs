//! Placement-algorithm scaling: optimistic placement, thread placement and
//! the trade search as thread counts grow (the paper projects 1.2% overhead
//! at 1024 cores from the quadratic steps).

use cdcs_cache::MissCurve;
use cdcs_core::place::{greedy_place, optimistic_place, place_threads, trade_refine};
use cdcs_core::{PlacementProblem, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{Mesh, TileId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn problem(threads: usize, side: u16) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let vcs = (0..threads)
        .map(|i| {
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 20_000.0), (8192.0, 500.0)]),
            )
        })
        .collect();
    let infos = (0..threads)
        .map(|i| ThreadInfo::new(i as u32, vec![(i as u32, 20_000.0)]))
        .collect();
    PlacementProblem::new(params, vcs, infos).expect("problem")
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_scaling");
    group.sample_size(10);
    for &(threads, side) in &[(16usize, 4u16), (64, 8), (144, 12)] {
        let p = problem(threads, side);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let sizes: Vec<u64> = vec![4096; threads];
        group.bench_with_input(BenchmarkId::new("full_pipeline", threads), &p, |b, p| {
            b.iter(|| {
                let o = optimistic_place(p, &sizes, Some(&cores));
                let placed = place_threads(p, &sizes, &o, Some(&cores), 1.0);
                let mut pl = greedy_place(p, &sizes, &placed, 1024);
                trade_refine(p, &mut pl);
                pl
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

//! Criterion counterpart of Table 3: cost of each CDCS reconfiguration step
//! as the chip scales (16 threads/16 cores, 16/64, 64/64).

use cdcs_cache::MissCurve;
use cdcs_core::alloc::latency_aware_sizes;
use cdcs_core::place::{greedy_place, optimistic_place, place_threads, trade_refine};
use cdcs_core::{PlacementProblem, SystemParams, ThreadInfo, VcInfo, VcKind};
use cdcs_mesh::{Mesh, TileId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn problem(threads: usize, side: u16) -> PlacementProblem {
    let params = SystemParams::default_for_mesh(Mesh::square(side), 8192);
    let mut vcs: Vec<VcInfo> = (0..threads)
        .map(|i| {
            let cliff = 4096.0 + (i as f64 * 977.0) % 20_000.0;
            VcInfo::new(
                i as u32,
                VcKind::thread_private(i as u32),
                MissCurve::new(vec![(0.0, 30_000.0), (cliff, 2_000.0)]),
            )
        })
        .collect();
    vcs.push(VcInfo::new(
        threads as u32,
        VcKind::process_shared(0),
        MissCurve::new(vec![(0.0, 50_000.0), (8192.0, 1_000.0)]),
    ));
    let infos = (0..threads)
        .map(|i| {
            ThreadInfo::new(
                i as u32,
                vec![(i as u32, 25_000.0), (threads as u32, 5_000.0)],
            )
        })
        .collect();
    PlacementProblem::new(params, vcs, infos).expect("problem")
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_steps");
    group.sample_size(10);
    for &(threads, side) in &[(16usize, 4u16), (16, 8), (64, 8)] {
        let p = problem(threads, side);
        let cores: Vec<TileId> = (0..threads as u16).map(TileId).collect();
        let sizes = latency_aware_sizes(&p, 1024);
        let id = format!("{threads}t-{}c", side as usize * side as usize);
        group.bench_with_input(BenchmarkId::new("capacity_allocation", &id), &p, |b, p| {
            b.iter(|| latency_aware_sizes(p, 1024))
        });
        group.bench_with_input(BenchmarkId::new("thread_placement", &id), &p, |b, p| {
            b.iter(|| {
                let o = optimistic_place(p, &sizes, Some(&cores));
                place_threads(p, &sizes, &o, Some(&cores), 1.0)
            })
        });
        let opt = optimistic_place(&p, &sizes, Some(&cores));
        let placed = place_threads(&p, &sizes, &opt, Some(&cores), 1.0);
        group.bench_with_input(BenchmarkId::new("data_placement", &id), &p, |b, p| {
            b.iter(|| {
                let mut pl = greedy_place(p, &sizes, &placed, 1024);
                trade_refine(p, &mut pl);
                pl
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);

//! The concrete 2D mesh topology used by the paper's evaluation, plus
//! edge memory-controller placement.

use crate::topology::Topology;
use crate::TileId;
use serde::{Deserialize, Serialize};

/// Position of a tile on the mesh grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, `0..cols`.
    pub x: u16,
    /// Row, `0..rows`.
    pub y: u16,
}

impl Coord {
    /// Manhattan distance to another coordinate — the number of hops under
    /// dimension-ordered (X-Y) routing.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// A `cols × rows` 2D mesh with X-Y routing.
///
/// The paper's target system (Table 2) is an 8×8 mesh of 64 tiles; the §II-B
/// case study uses a 6×6 mesh.
///
/// # Example
///
/// ```
/// use cdcs_mesh::{Mesh, Topology, TileId};
/// let mesh = Mesh::new(6, 6);
/// assert_eq!(mesh.num_tiles(), 36);
/// // Corner to opposite corner: 5 + 5 hops.
/// assert_eq!(mesh.hops(TileId(0), TileId(35)), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    cols: u16,
    rows: u16,
}

impl Default for Mesh {
    /// The paper's target chip: an 8×8 mesh (Table 2). Exists so
    /// mesh-carrying config structs can mark every field
    /// `#[serde(default)]` (the golden-coupling rule).
    fn default() -> Self {
        Mesh::new(8, 8)
    }
}

impl Mesh {
    /// Creates a `cols × rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        Mesh { cols, rows }
    }

    /// Creates a square `side × side` mesh.
    pub fn square(side: u16) -> Self {
        Mesh::new(side, side)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// The grid coordinate of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn coord(&self, t: TileId) -> Coord {
        assert!(
            (t.0 as usize) < self.num_tiles(),
            "tile {t} out of range for {}x{} mesh",
            self.cols,
            self.rows
        );
        Coord {
            x: t.0 % self.cols,
            y: t.0 / self.cols,
        }
    }

    /// The tile at a grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn tile_at(&self, c: Coord) -> TileId {
        assert!(
            c.x < self.cols && c.y < self.rows,
            "coordinate outside mesh"
        );
        TileId(c.y * self.cols + c.x)
    }

    /// Distance in hops from a tile to an arbitrary (possibly fractional)
    /// point on the grid, used when measuring distance to a center of mass.
    pub fn hops_to_point(&self, t: TileId, x: f64, y: f64) -> f64 {
        let c = self.coord(t);
        (c.x as f64 - x).abs() + (c.y as f64 - y).abs()
    }
}

impl Topology for Mesh {
    fn num_tiles(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    #[inline]
    fn hops(&self, a: TileId, b: TileId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }
}

/// Placement of memory controllers on the mesh edges.
///
/// The paper's system has 8 memory controllers at the chip edges (Fig. 3) and
/// interleaves pages across them, so that "the average distance of all cores
/// to memory controllers [is] the same" (§IV-A). This type computes the
/// controller positions and per-tile average controller distance used for
/// memory-access network latency and traffic accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemCtrlPlacement {
    /// Edge coordinates of the controllers (attached to the nearest edge
    /// tile's router).
    ports: Vec<TileId>,
}

impl MemCtrlPlacement {
    /// Spreads `count` controllers evenly around the four mesh edges,
    /// matching the paper's Fig. 3 (two controllers per edge for an 8×8 mesh
    /// with 8 controllers).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn edges(mesh: &Mesh, count: usize) -> Self {
        assert!(count > 0, "need at least one memory controller");
        // Walk the chip perimeter clockwise and drop controllers at evenly
        // spaced perimeter positions.
        let perimeter = Self::perimeter_tiles(mesh);
        let n = perimeter.len();
        let ports = (0..count)
            .map(|i| perimeter[(i * n + n / (2 * count)) / count % n])
            .collect();
        MemCtrlPlacement { ports }
    }

    fn perimeter_tiles(mesh: &Mesh) -> Vec<TileId> {
        let (cols, rows) = (mesh.cols(), mesh.rows());
        let mut tiles = Vec::new();
        // Top row, left→right.
        for x in 0..cols {
            tiles.push(mesh.tile_at(Coord { x, y: 0 }));
        }
        // Right column, top→bottom (excluding corners already visited).
        for y in 1..rows {
            tiles.push(mesh.tile_at(Coord { x: cols - 1, y }));
        }
        // Bottom row, right→left.
        if rows > 1 {
            for x in (0..cols.saturating_sub(1)).rev() {
                tiles.push(mesh.tile_at(Coord { x, y: rows - 1 }));
            }
        }
        // Left column, bottom→top.
        if cols > 1 {
            for y in (1..rows.saturating_sub(1)).rev() {
                tiles.push(mesh.tile_at(Coord { x: 0, y }));
            }
        }
        tiles
    }

    /// The tiles whose routers the controllers are attached to.
    pub fn ports(&self) -> &[TileId] {
        &self.ports
    }

    /// Number of controllers.
    pub fn count(&self) -> usize {
        self.ports.len()
    }

    /// Average hop distance from `tile` to the controllers, assuming accesses
    /// are interleaved uniformly across controllers (paper §III).
    pub fn mean_hops_from(&self, mesh: &Mesh, tile: TileId) -> f64 {
        mesh.mean_hops(tile, &self.ports)
    }

    /// The controller port used by a given (interleaved) memory access.
    /// Access `n` goes to controller `n % count`.
    pub fn port_for(&self, n: u64) -> TileId {
        self.ports[(n % self.ports.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coord_roundtrip() {
        let mesh = Mesh::new(8, 8);
        for t in mesh.tiles() {
            assert_eq!(mesh.tile_at(mesh.coord(t)), t);
        }
    }

    #[test]
    fn mesh_hops_matches_manhattan() {
        let mesh = Mesh::new(8, 8);
        // (1,0) -> (4,3): 3 + 3 hops.
        let a = mesh.tile_at(Coord { x: 1, y: 0 });
        let b = mesh.tile_at(Coord { x: 4, y: 3 });
        assert_eq!(mesh.hops(a, b), 6);
    }

    #[test]
    fn mesh_hops_symmetric_zero_diag() {
        let mesh = Mesh::new(5, 3);
        for a in mesh.tiles() {
            assert_eq!(mesh.hops(a, a), 0);
            for b in mesh.tiles() {
                assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mesh_coord_out_of_range_panics() {
        Mesh::new(2, 2).coord(TileId(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_mesh_panics() {
        Mesh::new(0, 4);
    }

    #[test]
    fn hops_to_point_fractional() {
        let mesh = Mesh::new(4, 4);
        let t = mesh.tile_at(Coord { x: 0, y: 0 });
        assert!((mesh.hops_to_point(t, 1.5, 1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn perimeter_visits_each_tile_once() {
        let mesh = Mesh::new(4, 4);
        let p = MemCtrlPlacement::perimeter_tiles(&mesh);
        assert_eq!(p.len(), 12); // 4*4 grid has 12 perimeter tiles
        let mut sorted: Vec<_> = p.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn mem_ctrls_are_on_edges() {
        let mesh = Mesh::new(8, 8);
        let mc = MemCtrlPlacement::edges(&mesh, 8);
        assert_eq!(mc.count(), 8);
        for &port in mc.ports() {
            let c = mesh.coord(port);
            let on_edge = c.x == 0 || c.y == 0 || c.x == 7 || c.y == 7;
            assert!(on_edge, "controller port {port} not on edge");
        }
    }

    #[test]
    fn mem_ctrl_interleaving_cycles() {
        let mesh = Mesh::new(8, 8);
        let mc = MemCtrlPlacement::edges(&mesh, 8);
        assert_eq!(mc.port_for(0), mc.port_for(8));
        assert_ne!(mc.port_for(0), mc.port_for(1));
    }

    #[test]
    fn mean_mc_distance_is_similar_across_tiles() {
        // Page interleaving makes average distance to memory roughly uniform;
        // check the spread is modest (within 2x) on the paper's mesh.
        let mesh = Mesh::new(8, 8);
        let mc = MemCtrlPlacement::edges(&mesh, 8);
        let dists: Vec<f64> = mesh
            .tiles()
            .iter()
            .map(|&t| mc.mean_hops_from(&mesh, t))
            .collect();
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = dists.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max / min < 2.0, "min {min}, max {max}");
    }

    #[test]
    fn single_row_mesh_perimeter() {
        let mesh = Mesh::new(4, 1);
        let p = MemCtrlPlacement::perimeter_tiles(&mesh);
        assert_eq!(p.len(), 4);
        let mc = MemCtrlPlacement::edges(&mesh, 2);
        assert_eq!(mc.count(), 2);
    }
}

//! Rectangular region partitioning for hierarchical planning.
//!
//! At mega-mesh scale (256/1024 tiles) the flat planner's cost grows
//! superlinearly with tile count, so the hierarchical planner clusters tiles
//! into rectangular `side × side` sub-meshes ([`RegionGrid`]) and sizes
//! virtual caches against *region-aggregated* distances ([`RegionTables`])
//! before solving placement within each region independently.
//!
//! Both types are pooled: [`RegionGrid::rebuild`] and
//! [`RegionTables::rebuild`] reuse their buffers, so a planner that keeps
//! them in its scratch pays no allocations once warm.
//!
//! Table values are exact aggregates of the underlying topology — the region
//! mean-hop entry for `(a, b)` equals the double sum of [`Topology::hops`]
//! over the two tile sets divided by the pair count, accumulated in ascending
//! tile-id order, so recomputing from the mesh reproduces every entry
//! bit-for-bit (`crates/mesh/tests/properties.rs` pins this for arbitrary
//! mesh shapes and region sides).

use crate::geometry::Point;
use crate::mesh::{Coord, Mesh};
use crate::topology::Topology;
use crate::traffic::NocConfig;
use crate::TileId;

/// A partition of a [`Mesh`] into rectangular regions of at most
/// `side × side` tiles.
///
/// Regions tile the mesh row-major: region `(rx, ry)` covers columns
/// `rx*side .. min((rx+1)*side, cols)` and rows `ry*side .. min((ry+1)*side,
/// rows)`, so edge regions on non-multiple meshes are smaller rectangles but
/// every tile belongs to exactly one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionGrid {
    mesh: Mesh,
    side: u16,
    region_cols: u16,
    region_rows: u16,
    /// `tile_region[tile]` — the region index of each tile.
    tile_region: Vec<u16>,
    /// CSR layout of the tiles in each region, ascending tile id within a
    /// region: region `r` owns `region_tiles[region_offsets[r] ..
    /// region_offsets[r + 1]]`.
    region_offsets: Vec<u32>,
    region_tiles: Vec<TileId>,
}

impl RegionGrid {
    /// Partitions `mesh` into regions of side `side`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn new(mesh: Mesh, side: u16) -> Self {
        let mut grid = RegionGrid {
            mesh: Mesh::new(1, 1),
            side: 1,
            region_cols: 1,
            region_rows: 1,
            tile_region: Vec::new(),
            region_offsets: Vec::new(),
            region_tiles: Vec::new(),
        };
        grid.rebuild(mesh, side);
        grid
    }

    /// Re-partitions for a (possibly different) mesh and side, reusing the
    /// existing buffers. Allocation-free when capacities already suffice.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero.
    pub fn rebuild(&mut self, mesh: Mesh, side: u16) {
        assert!(side > 0, "region side must be non-zero");
        self.mesh = mesh;
        self.side = side;
        self.region_cols = mesh.cols().div_ceil(side);
        self.region_rows = mesh.rows().div_ceil(side);
        let regions = self.num_regions();

        self.tile_region.clear();
        self.tile_region.resize(mesh.num_tiles(), 0);
        for t in 0..mesh.num_tiles() {
            let c = mesh.coord(TileId(t as u16));
            let rx = c.x / side;
            let ry = c.y / side;
            self.tile_region[t] = ry * self.region_cols + rx;
        }

        self.region_offsets.clear();
        self.region_tiles.clear();
        for r in 0..regions {
            self.region_offsets.push(self.region_tiles.len() as u32);
            let (lo, hi) = Self::bounds_for(mesh, side, self.region_cols, r as u16);
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    self.region_tiles.push(mesh.tile_at(Coord { x, y }));
                }
            }
        }
        self.region_offsets.push(self.region_tiles.len() as u32);
    }

    fn bounds_for(mesh: Mesh, side: u16, region_cols: u16, r: u16) -> (Coord, Coord) {
        let rx = r % region_cols;
        let ry = r / region_cols;
        let lo = Coord {
            x: rx * side,
            y: ry * side,
        };
        let hi = Coord {
            x: (lo.x + side - 1).min(mesh.cols() - 1),
            y: (lo.y + side - 1).min(mesh.rows() - 1),
        };
        (lo, hi)
    }

    /// The partitioned mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The requested region side.
    pub fn side(&self) -> u16 {
        self.side
    }

    /// Number of regions in the partition.
    pub fn num_regions(&self) -> usize {
        self.region_cols as usize * self.region_rows as usize
    }

    /// The region a tile belongs to.
    #[inline]
    pub fn region_of(&self, t: TileId) -> usize {
        self.tile_region[t.index()] as usize
    }

    /// The tiles of region `r`, ascending by tile id.
    #[inline]
    pub fn tiles(&self, r: usize) -> &[TileId] {
        let lo = self.region_offsets[r] as usize;
        let hi = self.region_offsets[r + 1] as usize;
        &self.region_tiles[lo..hi]
    }

    /// Inclusive corner coordinates `(top-left, bottom-right)` of region `r`.
    pub fn bounds(&self, r: usize) -> (Coord, Coord) {
        Self::bounds_for(self.mesh, self.side, self.region_cols, r as u16)
    }

    /// Geometric center of region `r` (midpoint of its bounding rectangle).
    pub fn center(&self, r: usize) -> Point {
        let (lo, hi) = self.bounds(r);
        Point {
            x: (lo.x as f64 + hi.x as f64) / 2.0,
            y: (lo.y as f64 + hi.y as f64) / 2.0,
        }
    }
}

/// Region-aggregated distance tables: mean hops and mean NoC round-trip
/// latency between regions, and from each tile to each region.
///
/// The hierarchical planner prices "place this virtual cache's share in
/// region `r`" as accessor rate × `tile_mean_round_trip(core, r)` — the exact
/// expected cost of spreading lines uniformly over the region's banks —
/// which is a `tiles × regions` table instead of the flat planner's
/// `vcs × tiles` cost matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionTables {
    regions: usize,
    /// `mean_hops[a * regions + b]` — mean hops over all tile pairs.
    mean_hops: Vec<f64>,
    /// `mean_round_trip[a * regions + b]`, in cycles.
    mean_round_trip: Vec<f64>,
    /// `tile_mean_hops[tile * regions + r]` — mean hops from a tile to the
    /// tiles of region `r`.
    tile_mean_hops: Vec<f64>,
    /// `tile_mean_round_trip[tile * regions + r]`, in cycles.
    tile_mean_round_trip: Vec<f64>,
}

impl RegionTables {
    /// Evaluates every `(region, region)` and `(tile, region)` pair of `grid`
    /// under `noc` timing.
    pub fn new(grid: &RegionGrid, noc: NocConfig) -> Self {
        let mut tables = RegionTables::default();
        tables.rebuild(grid, noc);
        tables
    }

    /// Recomputes the tables for a (possibly different) grid, reusing the
    /// existing buffers. Allocation-free when capacities already suffice.
    pub fn rebuild(&mut self, grid: &RegionGrid, noc: NocConfig) {
        let mesh = grid.mesh();
        let regions = grid.num_regions();
        self.regions = regions;

        self.tile_mean_hops.clear();
        self.tile_mean_round_trip.clear();
        for t in 0..mesh.num_tiles() {
            let t = TileId(t as u16);
            for r in 0..regions {
                let tiles = grid.tiles(r);
                let mut hops = 0.0;
                let mut rt = 0.0;
                for &b in tiles {
                    let h = mesh.hops(t, b);
                    hops += f64::from(h);
                    rt += f64::from(noc.round_trip_latency(h));
                }
                let n = tiles.len() as f64;
                self.tile_mean_hops.push(hops / n);
                self.tile_mean_round_trip.push(rt / n);
            }
        }

        self.mean_hops.clear();
        self.mean_round_trip.clear();
        for a in 0..regions {
            for b in 0..regions {
                let mut hops = 0.0;
                let mut rt = 0.0;
                for &ta in grid.tiles(a) {
                    for &tb in grid.tiles(b) {
                        let h = mesh.hops(ta, tb);
                        hops += f64::from(h);
                        rt += f64::from(noc.round_trip_latency(h));
                    }
                }
                let pairs = (grid.tiles(a).len() * grid.tiles(b).len()) as f64;
                self.mean_hops.push(hops / pairs);
                self.mean_round_trip.push(rt / pairs);
            }
        }
    }

    /// Number of regions the tables cover.
    pub fn num_regions(&self) -> usize {
        self.regions
    }

    /// Mean hop distance over all tile pairs of regions `a` and `b`.
    #[inline]
    pub fn mean_hops(&self, a: usize, b: usize) -> f64 {
        self.mean_hops[a * self.regions + b]
    }

    /// Mean round-trip latency in cycles over all tile pairs of `a` and `b`.
    #[inline]
    pub fn mean_round_trip(&self, a: usize, b: usize) -> f64 {
        self.mean_round_trip[a * self.regions + b]
    }

    /// Mean hop distance from `tile` to the tiles of region `r`.
    #[inline]
    pub fn tile_mean_hops(&self, tile: TileId, r: usize) -> f64 {
        self.tile_mean_hops[tile.index() * self.regions + r]
    }

    /// Mean round-trip latency in cycles from `tile` to region `r`.
    #[inline]
    pub fn tile_mean_round_trip(&self, tile: TileId, r: usize) -> f64 {
        self.tile_mean_round_trip[tile.index() * self.regions + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_mesh_exactly_once() {
        let mesh = Mesh::new(8, 8);
        let grid = RegionGrid::new(mesh, 4);
        assert_eq!(grid.num_regions(), 4);
        let mut seen = vec![0u32; mesh.num_tiles()];
        for r in 0..grid.num_regions() {
            for &t in grid.tiles(r) {
                assert_eq!(grid.region_of(t), r);
                seen[t.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn non_multiple_mesh_gets_smaller_edge_regions() {
        // 5×3 mesh, side 2 -> 3×2 regions; right column is 1 wide, bottom
        // row is 1 tall.
        let mesh = Mesh::new(5, 3);
        let grid = RegionGrid::new(mesh, 2);
        assert_eq!(grid.num_regions(), 6);
        assert_eq!(grid.tiles(0).len(), 4); // 2×2
        assert_eq!(grid.tiles(2).len(), 2); // 1×2 right edge
        assert_eq!(grid.tiles(5).len(), 1); // 1×1 corner
        let total: usize = (0..6).map(|r| grid.tiles(r).len()).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn side_larger_than_mesh_is_one_region() {
        let mesh = Mesh::new(4, 4);
        let grid = RegionGrid::new(mesh, 16);
        assert_eq!(grid.num_regions(), 1);
        assert_eq!(grid.tiles(0).len(), 16);
    }

    #[test]
    fn rebuild_reuses_buffers() {
        // Once sized for the finest partition, coarser/equal rebuilds reuse
        // the buffers without growing them.
        let mut grid = RegionGrid::new(Mesh::new(8, 8), 2);
        let cap = (
            grid.tile_region.capacity(),
            grid.region_tiles.capacity(),
            grid.region_offsets.capacity(),
        );
        grid.rebuild(Mesh::new(8, 8), 4);
        grid.rebuild(Mesh::new(8, 8), 2);
        assert_eq!(
            cap,
            (
                grid.tile_region.capacity(),
                grid.region_tiles.capacity(),
                grid.region_offsets.capacity(),
            )
        );
    }

    #[test]
    fn single_tile_regions_match_mesh_distances() {
        // side 1 -> every region is one tile, so region means collapse to the
        // underlying tile distances.
        let mesh = Mesh::new(3, 3);
        let grid = RegionGrid::new(mesh, 1);
        let noc = NocConfig::default();
        let t = RegionTables::new(&grid, noc);
        for a in mesh.tiles() {
            for b in mesh.tiles() {
                let h = mesh.hops(a, b);
                assert_eq!(t.mean_hops(a.index(), b.index()), f64::from(h));
                assert_eq!(
                    t.mean_round_trip(a.index(), b.index()).to_bits(),
                    f64::from(noc.round_trip_latency(h)).to_bits()
                );
                assert_eq!(t.tile_mean_hops(a, b.index()), f64::from(h));
            }
        }
    }

    #[test]
    fn region_center_is_rectangle_midpoint() {
        let grid = RegionGrid::new(Mesh::new(8, 8), 4);
        let c = grid.center(3); // bottom-right 4×4 region: x 4..=7, y 4..=7
        assert_eq!((c.x, c.y), (5.5, 5.5));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_side_panics() {
        RegionGrid::new(Mesh::new(4, 4), 0);
    }
}

//! Precomputed distance tables for simulation hot loops.
//!
//! The interval engine resolves two network distances per LLC access (core →
//! bank, and bank → memory-controller port on a miss), millions of times per
//! simulation. [`Topology::hops`] recomputes coordinates and
//! [`NocConfig::round_trip_latency`] redoes the cycle arithmetic on every
//! call; these tables evaluate both once per `(tile, tile)` / `(tile, port)`
//! pair at construction so the per-access cost collapses to two array loads.
//!
//! Values are exactly what the underlying calls produce (`hops` entries equal
//! `topo.hops(a, b)`; `round_trip` entries equal
//! `f64::from(noc.round_trip_latency(hops))`), so table-driven and direct
//! evaluation are bit-identical — `crates/mesh/tests/properties.rs` pins this
//! for arbitrary mesh shapes.

use crate::topology::Topology;
use crate::traffic::NocConfig;
use crate::TileId;

/// Dense `tile × tile` hop and round-trip-latency tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceTables {
    tiles: usize,
    /// `hops[a * tiles + b]`.
    hops: Vec<u32>,
    /// `round_trip[a * tiles + b]`, in cycles.
    round_trip: Vec<f64>,
}

impl DistanceTables {
    /// Evaluates every tile pair of `topo` under `noc` timing.
    pub fn new(topo: &impl Topology, noc: NocConfig) -> Self {
        let tiles = topo.num_tiles();
        let mut hops = Vec::with_capacity(tiles * tiles);
        let mut round_trip = Vec::with_capacity(tiles * tiles);
        for a in topo.tiles() {
            for b in topo.tiles() {
                let h = topo.hops(a, b);
                hops.push(h);
                round_trip.push(f64::from(noc.round_trip_latency(h)));
            }
        }
        DistanceTables {
            tiles,
            hops,
            round_trip,
        }
    }

    /// Number of tiles the tables cover.
    pub fn num_tiles(&self) -> usize {
        self.tiles
    }

    /// Hop distance between two tiles (equals [`Topology::hops`]).
    #[inline]
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        self.hops[a.index() * self.tiles + b.index()]
    }

    /// Round-trip latency in cycles between two tiles (equals
    /// `f64::from(noc.round_trip_latency(topo.hops(a, b)))`).
    #[inline]
    pub fn round_trip(&self, a: TileId, b: TileId) -> f64 {
        self.round_trip[a.index() * self.tiles + b.index()]
    }
}

/// Dense `tile × port` hop and round-trip-latency tables for a fixed port
/// list (the memory-controller attach points).
///
/// Ports are addressed by their *index* in the list passed at construction,
/// which is how the engine's interleaved `access № mod port-count` selection
/// already identifies them — no `TileId` resolution needed per access.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDistanceTables {
    ports: usize,
    /// `hops[tile * ports + port]`.
    hops: Vec<u32>,
    /// `round_trip[tile * ports + port]`, in cycles.
    round_trip: Vec<f64>,
}

impl PortDistanceTables {
    /// Evaluates every `(tile, port)` pair of `topo` under `noc` timing.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty.
    pub fn new(topo: &impl Topology, noc: NocConfig, ports: &[TileId]) -> Self {
        assert!(!ports.is_empty(), "need at least one port");
        let tiles = topo.num_tiles();
        let mut hops = Vec::with_capacity(tiles * ports.len());
        let mut round_trip = Vec::with_capacity(tiles * ports.len());
        for t in topo.tiles() {
            for &p in ports {
                let h = topo.hops(t, p);
                hops.push(h);
                round_trip.push(f64::from(noc.round_trip_latency(h)));
            }
        }
        PortDistanceTables {
            ports: ports.len(),
            hops,
            round_trip,
        }
    }

    /// Number of ports the tables cover.
    pub fn num_ports(&self) -> usize {
        self.ports
    }

    /// Hop distance from `tile` to port `port` (an index into the
    /// construction-time port list).
    #[inline]
    pub fn hops(&self, tile: TileId, port: usize) -> u32 {
        self.hops[tile.index() * self.ports + port]
    }

    /// Round-trip latency in cycles from `tile` to port `port`.
    #[inline]
    pub fn round_trip(&self, tile: TileId, port: usize) -> f64 {
        self.round_trip[tile.index() * self.ports + port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{MemCtrlPlacement, Mesh};

    #[test]
    fn distance_tables_match_direct_evaluation() {
        let mesh = Mesh::new(5, 3);
        let noc = NocConfig::default();
        let t = DistanceTables::new(&mesh, noc);
        assert_eq!(t.num_tiles(), 15);
        for a in mesh.tiles() {
            for b in mesh.tiles() {
                assert_eq!(t.hops(a, b), mesh.hops(a, b));
                assert_eq!(
                    t.round_trip(a, b).to_bits(),
                    f64::from(noc.round_trip_latency(mesh.hops(a, b))).to_bits()
                );
            }
        }
    }

    #[test]
    fn port_tables_match_direct_evaluation() {
        let mesh = Mesh::new(4, 4);
        let noc = NocConfig::default();
        let mc = MemCtrlPlacement::edges(&mesh, 4);
        let t = PortDistanceTables::new(&mesh, noc, mc.ports());
        assert_eq!(t.num_ports(), 4);
        for tile in mesh.tiles() {
            for (p, &port) in mc.ports().iter().enumerate() {
                assert_eq!(t.hops(tile, p), mesh.hops(tile, port));
                assert_eq!(
                    t.round_trip(tile, p).to_bits(),
                    f64::from(noc.round_trip_latency(mesh.hops(tile, port))).to_bits()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_port_list_panics() {
        PortDistanceTables::new(&Mesh::new(2, 2), NocConfig::default(), &[]);
    }
}

#![forbid(unsafe_code)]
//! Mesh network-on-chip substrate for the CDCS reproduction.
//!
//! CDCS ([Beckmann, Tsai, Sanchez, HPCA 2015]) targets tiled chip
//! multiprocessors in which every tile holds a core and a slice of the shared
//! last-level cache, connected by an on-chip network. All of the paper's
//! placement algorithms consume nothing but *distances* between tiles, so this
//! crate provides:
//!
//! * [`Topology`] — the distance abstraction every placement algorithm is
//!   written against ("CDCS uses arbitrary distance vectors, so it works with
//!   arbitrary topologies", §IV-B).
//! * [`Mesh`] — the concrete 2D mesh with X-Y routing used throughout the
//!   evaluation (8×8 in the paper's Table 2, 6×6 in the §II-B case study).
//! * [`geometry`] — center-of-mass and outward-spiral helpers used by the
//!   thread-placement and refined-data-placement steps.
//! * [`traffic`] — flit-level traffic accounting used to regenerate the
//!   traffic breakdowns of Figs. 11d, 14 and 15.
//! * [`MemCtrlPlacement`] — edge memory-controller placement; pages are
//!   interleaved across controllers as in Tilera/Knights Corner (§III).
//! * [`RegionGrid`]/[`RegionTables`] — rectangular region partitioning and
//!   region-aggregated distance tables for hierarchical planning on
//!   mega-meshes (beyond the paper's 64 tiles).
//!
//! # Example
//!
//! ```
//! use cdcs_mesh::{Mesh, Topology, TileId};
//!
//! let mesh = Mesh::new(8, 8); // the paper's 64-tile CMP
//! let a = TileId(0);           // top-left corner
//! let b = TileId(63);          // bottom-right corner
//! assert_eq!(mesh.hops(a, b), 14);
//! assert_eq!(mesh.num_tiles(), 64);
//! ```
//!
//! [Beckmann, Tsai, Sanchez, HPCA 2015]:
//!     https://people.csail.mit.edu/sanchez/papers/2015.cdcs.hpca.pdf

pub mod geometry;
mod mesh;
mod region;
mod tables;
mod topology;
pub mod traffic;

pub use crate::mesh::{Coord, MemCtrlPlacement, Mesh};
pub use crate::region::{RegionGrid, RegionTables};
pub use crate::tables::{DistanceTables, PortDistanceTables};
pub use crate::topology::{ExplicitTopology, Topology};
pub use crate::traffic::{NocConfig, TrafficClass, TrafficStats};

use serde::{Deserialize, Serialize};

/// Identifier of a tile (one core + one LLC slice) on the chip.
///
/// Tiles are numbered row-major: tile `y * cols + x` sits at column `x`,
/// row `y`.
///
/// ```
/// use cdcs_mesh::{Mesh, TileId};
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.coord(TileId(5)).x, 1);
/// assert_eq!(mesh.coord(TileId(5)).y, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(pub u16);

impl TileId {
    /// Returns the tile id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u16> for TileId {
    fn from(v: u16) -> Self {
        TileId(v)
    }
}

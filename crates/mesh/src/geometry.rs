//! Geometric helpers for placement: centers of mass and outward spirals.
//!
//! CDCS's thread placement puts each thread "closest to the center of mass of
//! its accesses" (§IV-E), and the refined data placement walks banks in an
//! outward spiral from each virtual cache's center of mass (§IV-F). Both
//! primitives live here so `cdcs-core` stays purely algorithmic.

use crate::{Mesh, TileId, Topology};

/// A point on the mesh grid with fractional coordinates, e.g. a center of
/// mass of data spread over several tiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Column coordinate (fractional).
    pub x: f64,
    /// Row coordinate (fractional).
    pub y: f64,
}

impl Point {
    /// Manhattan distance to another point.
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// Computes the center of mass of weighted tiles.
///
/// Returns `None` if the total weight is zero (or the slice is empty) — there
/// is no meaningful center in that case and callers fall back to a default
/// (e.g. the accessing thread's own tile).
///
/// # Example
///
/// ```
/// use cdcs_mesh::{Mesh, TileId};
/// use cdcs_mesh::geometry::center_of_mass;
/// let mesh = Mesh::new(4, 4);
/// // Equal weight at opposite corners of the top row -> center at (1.5, 0).
/// let com = center_of_mass(&mesh, &[(TileId(0), 1.0), (TileId(3), 1.0)]).unwrap();
/// assert!((com.x - 1.5).abs() < 1e-12 && com.y.abs() < 1e-12);
/// ```
pub fn center_of_mass(mesh: &Mesh, weighted: &[(TileId, f64)]) -> Option<Point> {
    let total: f64 = weighted.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let (mut x, mut y) = (0.0, 0.0);
    for &(t, w) in weighted {
        let c = mesh.coord(t);
        x += c.x as f64 * w;
        y += c.y as f64 * w;
    }
    Some(Point {
        x: x / total,
        y: y / total,
    })
}

/// The tile nearest to a fractional point (Manhattan metric, ties broken by
/// lowest tile id for determinism).
pub fn nearest_tile(mesh: &Mesh, p: Point) -> TileId {
    let mut best = TileId(0);
    let mut best_d = f64::INFINITY;
    for t in mesh.tiles() {
        let d = mesh.hops_to_point(t, p.x, p.y);
        if d < best_d - 1e-12 {
            best_d = d;
            best = t;
        }
    }
    best
}

/// All tiles sorted by increasing distance from a fractional point, ties
/// broken by tile id. This is the spiral order used to compactly place a
/// virtual cache "around" a center (paper Figs. 6 and 7).
pub fn tiles_by_distance_from_point(mesh: &Mesh, p: Point) -> Vec<TileId> {
    let mut v = mesh.tiles();
    sort_tiles_by_distance(mesh, p, &mut v);
    v
}

/// Allocation-free variant of [`tiles_by_distance_from_point`]: writes the
/// spiral order into `out` (cleared first), reusing its capacity. Produces
/// exactly the same order — planners on the per-epoch hot path use this
/// with a scratch buffer.
pub fn tiles_by_distance_from_point_into(mesh: &Mesh, p: Point, out: &mut Vec<TileId>) {
    out.clear();
    out.extend((0..mesh.num_tiles() as u16).map(TileId));
    sort_tiles_by_distance(mesh, p, out);
}

fn sort_tiles_by_distance(mesh: &Mesh, p: Point, tiles: &mut [TileId]) {
    // The comparator is a total order (distance, then id), so the unstable
    // in-place sort gives the same permutation a stable sort would, without
    // merge-sort's temporary buffer.
    tiles.sort_unstable_by(|&a, &b| {
        let da = mesh.hops_to_point(a, p.x, p.y);
        let db = mesh.hops_to_point(b, p.x, p.y);
        da.partial_cmp(&db)
            .expect("distances are finite")
            .then(a.0.cmp(&b.0))
    });
}

/// Cached spiral orders from every tile of a mesh.
///
/// Optimistic placement (§IV-D) evaluates a compact-coverage contention sum
/// centered at *every* tile for *every* VC; recomputing the spiral order per
/// evaluation is an O(V·N²·log N) allocation storm. Tile-centered orders
/// depend only on the mesh, so the planner builds this table once and reuses
/// it across epochs. Row `t` equals
/// `tiles_by_distance_from_point(mesh, coord(t))` exactly.
#[derive(Debug, Clone)]
pub struct SpiralTable {
    mesh: Mesh,
    /// `num_tiles` rows of `num_tiles` entries each.
    order: Vec<TileId>,
}

impl SpiralTable {
    /// Builds the table for `mesh`.
    pub fn new(mesh: &Mesh) -> Self {
        let n = mesh.num_tiles();
        let mut order = Vec::with_capacity(n * n);
        for t in mesh.tiles() {
            let c = mesh.coord(t);
            let p = Point {
                x: f64::from(c.x),
                y: f64::from(c.y),
            };
            order.extend(tiles_by_distance_from_point(mesh, p));
        }
        SpiralTable { mesh: *mesh, order }
    }

    /// The mesh this table was built for.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The spiral order centered at tile `t`.
    pub fn from_tile(&self, t: TileId) -> &[TileId] {
        let n = self.mesh.num_tiles();
        &self.order[t.index() * n..(t.index() + 1) * n]
    }
}

/// Sorted tile distances from one fixed point, for repeated
/// [`compact_mean_distance`]-style queries without re-sorting.
///
/// The latency-aware allocation step (§IV-C) evaluates the optimistic
/// on-chip distance of a chip-center placement at every grid point of every
/// VC's total-latency curve; the distances from the chip center never
/// change, so they are computed once — along with their running prefix
/// sums, making [`Self::mean_distance`] O(1) per query instead of a walk
/// over the tile list (which made sizing O(tiles) per grid point, a
/// quadratic term at mega-mesh scale). Results stay bit-identical to
/// [`compact_mean_distance`]'s definitional loop.
#[derive(Debug, Clone)]
pub struct CompactDistances {
    /// Hop distances from the center, in spiral order.
    dists: Vec<f64>,
    /// `prefix[k]` = sum of the first `k` distances, accumulated in the
    /// same left-to-right order the definitional scan adds them (so the
    /// O(1) lookup below is bit-identical to walking the list).
    prefix: Vec<f64>,
}

impl CompactDistances {
    /// Builds the sorted distance list from `p` on `mesh`.
    pub fn new(mesh: &Mesh, p: Point) -> Self {
        let dists: Vec<f64> = tiles_by_distance_from_point(mesh, p)
            .into_iter()
            .map(|t| mesh.hops_to_point(t, p.x, p.y))
            .collect();
        let mut prefix = Vec::with_capacity(dists.len() + 1);
        let mut sum = 0.0;
        prefix.push(sum);
        for &d in &dists {
            sum += d;
            prefix.push(sum);
        }
        CompactDistances { dists, prefix }
    }

    /// Average distance of `size` banks of capacity placed compactly around
    /// the center (see [`compact_mean_distance`]).
    ///
    /// O(1): whole banks take exactly their distance (`1.0 * d` is `d`),
    /// so the definitional walk's partial sum is the precomputed prefix;
    /// only the final fractional bank contributes a product term. Values
    /// are bit-identical to the walk for any `size` (whole-bank takes and
    /// the denominator are exact: `size` is far below 2^52, so repeated
    /// `-= 1.0` is exact subtraction).
    pub fn mean_distance(&self, size: f64) -> f64 {
        if size <= 0.0 {
            return 0.0;
        }
        let n = self.dists.len();
        let whole = (size.floor() as usize).min(n);
        let mut weighted = self.prefix[whole];
        let mut placed = whole as f64;
        if whole < n {
            let frac = size - whole as f64;
            if frac > 0.0 {
                weighted += frac * self.dists[whole];
                placed = size;
            }
        }
        weighted / placed.max(f64::MIN_POSITIVE)
    }
}

/// Average distance from point `p` to banks holding one unit of capacity
/// each, when `size` units of capacity are placed compactly around `p` in
/// spiral order. Used by the optimistic on-chip latency curve (§IV-C,
/// Fig. 6): "compactly placing the VC around the center of the chip and
/// computing the resulting average latency".
///
/// `size` is measured in banks and may be fractional; the last bank is
/// weighted by its fraction. A `size` of zero returns 0.0.
pub fn compact_mean_distance(mesh: &Mesh, p: Point, size: f64) -> f64 {
    if size <= 0.0 {
        return 0.0;
    }
    let order = tiles_by_distance_from_point(mesh, p);
    let mut remaining = size;
    let mut weighted = 0.0;
    for t in order {
        if remaining <= 0.0 {
            break;
        }
        let take = remaining.min(1.0);
        weighted += take * mesh.hops_to_point(t, p.x, p.y);
        remaining -= take;
    }
    // If the VC is bigger than the chip, the excess cannot be placed; treat
    // the chip as the limit (the allocator never allocates more than chip
    // capacity, so this is defensive).
    weighted / (size - remaining.max(0.0)).max(f64::MIN_POSITIVE)
}

/// The center of the chip, the optimistic placement center for the
/// latency-aware allocation step (Fig. 6 places the example VC around the
/// middle of the mesh).
pub fn chip_center(mesh: &Mesh) -> Point {
    Point {
        x: (mesh.cols() as f64 - 1.0) / 2.0,
        y: (mesh.rows() as f64 - 1.0) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn com_of_single_tile_is_that_tile() {
        let mesh = Mesh::new(4, 4);
        let com = center_of_mass(&mesh, &[(TileId(5), 2.0)]).unwrap();
        assert_eq!(com, Point { x: 1.0, y: 1.0 });
    }

    #[test]
    fn com_zero_weight_is_none() {
        let mesh = Mesh::new(4, 4);
        assert!(center_of_mass(&mesh, &[(TileId(0), 0.0)]).is_none());
        assert!(center_of_mass(&mesh, &[]).is_none());
    }

    #[test]
    fn com_weights_pull_toward_heavier_tile() {
        let mesh = Mesh::new(4, 1);
        let com = center_of_mass(&mesh, &[(TileId(0), 3.0), (TileId(3), 1.0)]).unwrap();
        assert!((com.x - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nearest_tile_exact_hit() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(nearest_tile(&mesh, Point { x: 2.0, y: 3.0 }), TileId(14));
    }

    #[test]
    fn nearest_tile_tie_breaks_to_lowest_id() {
        let mesh = Mesh::new(2, 1);
        // Exactly between tiles 0 and 1.
        assert_eq!(nearest_tile(&mesh, Point { x: 0.5, y: 0.0 }), TileId(0));
    }

    #[test]
    fn spiral_order_starts_at_center() {
        let mesh = Mesh::new(5, 5);
        let center = chip_center(&mesh);
        let order = tiles_by_distance_from_point(&mesh, center);
        assert_eq!(order[0], TileId(12)); // middle of a 5x5 mesh
                                          // Distances must be non-decreasing.
        let mut last = 0.0;
        for t in order {
            let d = mesh.hops_to_point(t, center.x, center.y);
            assert!(d >= last - 1e-12);
            last = d;
        }
    }

    #[test]
    fn compact_mean_distance_single_bank_is_zero() {
        let mesh = Mesh::new(5, 5);
        let d = compact_mean_distance(&mesh, chip_center(&mesh), 1.0);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn compact_mean_distance_grows_with_size() {
        let mesh = Mesh::new(8, 8);
        let c = chip_center(&mesh);
        let d1 = compact_mean_distance(&mesh, c, 1.0);
        let d4 = compact_mean_distance(&mesh, c, 4.0);
        let d16 = compact_mean_distance(&mesh, c, 16.0);
        assert!(d1 <= d4 && d4 < d16);
    }

    #[test]
    fn compact_mean_distance_paper_example() {
        // Paper Fig. 6: an 8.2-bank VC compactly placed around the center of
        // a 5x5 mesh has an average distance of 1.27 hops.
        let mesh = Mesh::new(5, 5);
        let d = compact_mean_distance(&mesh, chip_center(&mesh), 8.2);
        assert!((d - 1.27).abs() < 0.05, "got {d}");
    }

    #[test]
    fn compact_mean_distance_zero_size() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(compact_mean_distance(&mesh, chip_center(&mesh), 0.0), 0.0);
    }

    #[test]
    fn chip_center_of_even_mesh_is_fractional() {
        let mesh = Mesh::new(8, 8);
        let c = chip_center(&mesh);
        assert_eq!(c, Point { x: 3.5, y: 3.5 });
    }

    #[test]
    fn spiral_table_matches_per_point_sorts() {
        for mesh in [Mesh::new(4, 4), Mesh::new(5, 3), Mesh::new(1, 7)] {
            let table = SpiralTable::new(&mesh);
            for t in mesh.tiles() {
                let c = mesh.coord(t);
                let p = Point {
                    x: f64::from(c.x),
                    y: f64::from(c.y),
                };
                assert_eq!(
                    table.from_tile(t),
                    tiles_by_distance_from_point(&mesh, p).as_slice(),
                    "mesh {}x{} tile {t}",
                    mesh.cols(),
                    mesh.rows()
                );
            }
        }
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mesh = Mesh::new(6, 5);
        let mut buf = Vec::new();
        for p in [
            Point { x: 0.3, y: 4.9 },
            Point { x: 2.5, y: 2.5 },
            chip_center(&mesh),
        ] {
            tiles_by_distance_from_point_into(&mesh, p, &mut buf);
            assert_eq!(buf, tiles_by_distance_from_point(&mesh, p));
        }
    }

    #[test]
    fn compact_distances_matches_direct_function() {
        let mesh = Mesh::new(8, 8);
        let c = chip_center(&mesh);
        let table = CompactDistances::new(&mesh, c);
        for step in 0..130 {
            let size = step as f64 * 0.55;
            // Bit-identical: same accumulation order as the direct loop.
            assert_eq!(
                table.mean_distance(size),
                compact_mean_distance(&mesh, c, size)
            );
        }
    }
}

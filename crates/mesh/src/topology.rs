//! The [`Topology`] abstraction: everything CDCS needs to know about the chip.
//!
//! The placement algorithms in `cdcs-core` only consume tile-to-tile
//! distances, so they are written against this trait rather than a concrete
//! mesh. The paper notes (§IV-B) that "CDCS uses arbitrary distance vectors,
//! so it works with arbitrary topologies".

use crate::TileId;

/// A chip topology: a set of tiles and a distance metric between them.
///
/// Distances are measured in *hops*; the translation from hops to cycles is
/// the business of [`crate::NocConfig`].
///
/// # Example
///
/// ```
/// use cdcs_mesh::{Mesh, Topology, TileId};
/// let mesh = Mesh::new(2, 2);
/// assert_eq!(mesh.hops(TileId(0), TileId(3)), 2);
/// let order = mesh.tiles_by_distance(TileId(0));
/// assert_eq!(order[0], TileId(0));
/// ```
pub trait Topology {
    /// Number of tiles on the chip.
    fn num_tiles(&self) -> usize;

    /// Network distance between two tiles, in hops. Must be symmetric and
    /// zero iff `a == b` (a metric on the tile set).
    fn hops(&self, a: TileId, b: TileId) -> u32;

    /// All tiles, in id order.
    fn tiles(&self) -> Vec<TileId> {
        (0..self.num_tiles() as u16).map(TileId).collect()
    }

    /// All tiles sorted by increasing distance from `from` (ties broken by
    /// tile id, so the order is deterministic). `from` itself is first.
    ///
    /// This is the "outward spiral" order used by the refined-placement trade
    /// search (paper §IV-F, Fig. 8).
    fn tiles_by_distance(&self, from: TileId) -> Vec<TileId> {
        let mut v = self.tiles();
        v.sort_by_key(|&t| (self.hops(from, t), t.0));
        v
    }

    /// Average distance from `from` to every tile in `tiles`.
    ///
    /// Returns 0.0 for an empty slice.
    fn mean_hops(&self, from: TileId, tiles: &[TileId]) -> f64 {
        if tiles.is_empty() {
            return 0.0;
        }
        let total: u32 = tiles.iter().map(|&t| self.hops(from, t)).sum();
        total as f64 / tiles.len() as f64
    }
}

/// A topology defined by an explicit distance matrix.
///
/// Useful for testing placement algorithms on irregular fabrics and for
/// demonstrating that the CDCS steps do not depend on mesh geometry.
///
/// # Example
///
/// ```
/// use cdcs_mesh::{ExplicitTopology, Topology, TileId};
/// // A 3-tile line: 0 - 1 - 2
/// let topo = ExplicitTopology::new(vec![
///     vec![0, 1, 2],
///     vec![1, 0, 1],
///     vec![2, 1, 0],
/// ]).unwrap();
/// assert_eq!(topo.hops(TileId(0), TileId(2)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ExplicitTopology {
    dist: Vec<Vec<u32>>,
}

/// Error building an [`ExplicitTopology`] from a malformed matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The matrix is not square.
    NotSquare,
    /// `dist[a][b] != dist[b][a]` for some pair.
    NotSymmetric(usize, usize),
    /// A diagonal entry is non-zero.
    NonZeroDiagonal(usize),
    /// An off-diagonal entry is zero.
    ZeroOffDiagonal(usize, usize),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NotSquare => write!(f, "distance matrix is not square"),
            TopologyError::NotSymmetric(a, b) => {
                write!(f, "distance matrix is not symmetric at ({a}, {b})")
            }
            TopologyError::NonZeroDiagonal(a) => {
                write!(f, "distance matrix has non-zero diagonal at {a}")
            }
            TopologyError::ZeroOffDiagonal(a, b) => {
                write!(
                    f,
                    "distance matrix has zero off-diagonal entry at ({a}, {b})"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl ExplicitTopology {
    /// Builds a topology from a symmetric distance matrix with zero diagonal.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the matrix is not square, not symmetric,
    /// has a non-zero diagonal, or a zero off-diagonal entry.
    pub fn new(dist: Vec<Vec<u32>>) -> Result<Self, TopologyError> {
        let n = dist.len();
        for row in &dist {
            if row.len() != n {
                return Err(TopologyError::NotSquare);
            }
        }
        for (a, row) in dist.iter().enumerate() {
            if row[a] != 0 {
                return Err(TopologyError::NonZeroDiagonal(a));
            }
            for (b, &d) in row.iter().enumerate() {
                if d != dist[b][a] {
                    return Err(TopologyError::NotSymmetric(a, b));
                }
                if a != b && d == 0 {
                    return Err(TopologyError::ZeroOffDiagonal(a, b));
                }
            }
        }
        Ok(ExplicitTopology { dist })
    }
}

impl Topology for ExplicitTopology {
    fn num_tiles(&self) -> usize {
        self.dist.len()
    }

    fn hops(&self, a: TileId, b: TileId) -> u32 {
        self.dist[a.index()][b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_topology_accepts_valid_matrix() {
        let topo = ExplicitTopology::new(vec![vec![0, 1], vec![1, 0]]).expect("valid matrix");
        assert_eq!(topo.num_tiles(), 2);
        assert_eq!(topo.hops(TileId(0), TileId(1)), 1);
    }

    #[test]
    fn explicit_topology_rejects_non_square() {
        assert_eq!(
            ExplicitTopology::new(vec![vec![0, 1]]).unwrap_err(),
            TopologyError::NotSquare
        );
    }

    #[test]
    fn explicit_topology_rejects_asymmetric() {
        let err = ExplicitTopology::new(vec![vec![0, 2], vec![1, 0]]).unwrap_err();
        assert!(matches!(err, TopologyError::NotSymmetric(..)));
    }

    #[test]
    fn explicit_topology_rejects_nonzero_diagonal() {
        let err = ExplicitTopology::new(vec![vec![1, 1], vec![1, 0]]).unwrap_err();
        assert!(matches!(err, TopologyError::NonZeroDiagonal(0)));
    }

    #[test]
    fn explicit_topology_rejects_zero_off_diagonal() {
        let err = ExplicitTopology::new(vec![vec![0, 0], vec![0, 0]]).unwrap_err();
        assert!(matches!(err, TopologyError::ZeroOffDiagonal(..)));
    }

    #[test]
    fn tiles_by_distance_is_sorted_and_complete() {
        let topo =
            ExplicitTopology::new(vec![vec![0, 3, 1], vec![3, 0, 2], vec![1, 2, 0]]).unwrap();
        let order = topo.tiles_by_distance(TileId(0));
        assert_eq!(order, vec![TileId(0), TileId(2), TileId(1)]);
    }

    #[test]
    fn mean_hops_empty_is_zero() {
        let topo = ExplicitTopology::new(vec![vec![0, 1], vec![1, 0]]).unwrap();
        assert_eq!(topo.mean_hops(TileId(0), &[]), 0.0);
    }

    #[test]
    fn mean_hops_averages() {
        let topo =
            ExplicitTopology::new(vec![vec![0, 1, 3], vec![1, 0, 2], vec![3, 2, 0]]).unwrap();
        let m = topo.mean_hops(TileId(0), &[TileId(1), TileId(2)]);
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs: Vec<Box<dyn std::fmt::Display>> = vec![
            Box::new(TopologyError::NotSquare),
            Box::new(TopologyError::NotSymmetric(1, 2)),
            Box::new(TopologyError::NonZeroDiagonal(0)),
            Box::new(TopologyError::ZeroOffDiagonal(0, 1)),
        ];
        for e in errs {
            assert!(!format!("{e}").is_empty());
        }
    }
}

//! NoC timing parameters and flit-level traffic accounting.
//!
//! The paper's network (Table 2) is an 8×8 mesh with 128-bit flits and links,
//! X-Y routing, 3-cycle pipelined routers and 1-cycle links. Traffic
//! breakdowns (Figs. 11d, 14, 15) are reported in flits, split into L2↔LLC,
//! LLC↔memory, and other traffic.

use serde::{Deserialize, Serialize};

/// NoC timing and sizing parameters.
///
/// # Example
///
/// ```
/// use cdcs_mesh::NocConfig;
/// let noc = NocConfig::default();
/// // A 3-hop one-way trip through the paper's NoC: 3 * (3 + 1) cycles.
/// assert_eq!(noc.one_way_latency(3), 12);
/// // A 64-byte line moves in 1 header flit + 4 data flits.
/// assert_eq!(noc.data_flits(64), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Pipelined router traversal latency, cycles.
    pub router_cycles: u32,
    /// Link traversal latency, cycles.
    pub link_cycles: u32,
    /// Flit width in bytes (128-bit flits → 16 bytes).
    pub flit_bytes: u32,
}

impl Default for NocConfig {
    /// The paper's Table 2 NoC: 3-cycle routers, 1-cycle links, 128-bit flits.
    fn default() -> Self {
        NocConfig {
            router_cycles: 3,
            link_cycles: 1,
            flit_bytes: 16,
        }
    }
}

impl NocConfig {
    /// One-way latency in cycles for a `hops`-hop trip (zero-load).
    ///
    /// Each hop costs one router traversal plus one link traversal. A 0-hop
    /// access (local bank) has no network latency.
    #[inline]
    pub fn one_way_latency(&self, hops: u32) -> u32 {
        hops * (self.router_cycles + self.link_cycles)
    }

    /// Round-trip latency in cycles for a request/response pair over `hops`.
    #[inline]
    pub fn round_trip_latency(&self, hops: u32) -> u32 {
        2 * self.one_way_latency(hops)
    }

    /// Flits in a control message (request, invalidation, ack): one flit.
    #[inline]
    pub fn control_flits(&self) -> u64 {
        1
    }

    /// Flits in a message carrying `payload_bytes` of data: one header flit
    /// plus the payload packed into flits.
    #[inline]
    pub fn data_flits(&self, payload_bytes: u32) -> u64 {
        1 + payload_bytes.div_ceil(self.flit_bytes) as u64
    }
}

/// Category of NoC traffic, matching the breakdown of Fig. 11d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// L2 miss requests to the LLC and their data responses.
    L2ToLlc,
    /// LLC misses to the memory controllers and their responses/writebacks.
    LlcToMem,
    /// Everything else: monitor samples, reconfiguration moves, invalidations.
    Other,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::L2ToLlc,
        TrafficClass::LlcToMem,
        TrafficClass::Other,
    ];
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficClass::L2ToLlc => write!(f, "L2-LLC"),
            TrafficClass::LlcToMem => write!(f, "LLC-Mem"),
            TrafficClass::Other => write!(f, "Other"),
        }
    }
}

/// Accumulated NoC traffic, in flit-hops per [`TrafficClass`].
///
/// Flit-hops (each flit crossing each link counts once) are the quantity that
/// determines both NoC energy and the bandwidth demand reported in the
/// paper's traffic figures.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    flit_hops: [u64; 3],
    messages: [u64; 3],
}

impl TrafficStats {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(class: TrafficClass) -> usize {
        match class {
            TrafficClass::L2ToLlc => 0,
            TrafficClass::LlcToMem => 1,
            TrafficClass::Other => 2,
        }
    }

    /// Records a message of `flits` flits travelling `hops` hops.
    #[inline]
    pub fn record(&mut self, class: TrafficClass, flits: u64, hops: u32) {
        let s = Self::slot(class);
        self.flit_hops[s] += flits * hops as u64;
        self.messages[s] += 1;
    }

    /// Records a request/response message pair (`flits_a` and `flits_b`
    /// flits) travelling the same `hops`. Exactly equivalent to two
    /// [`Self::record`] calls — one slot resolution and one multiply for
    /// the common "control + data over one path" case on the per-access
    /// path.
    #[inline]
    pub fn record_pair(&mut self, class: TrafficClass, flits_a: u64, flits_b: u64, hops: u32) {
        let s = Self::slot(class);
        self.flit_hops[s] += (flits_a + flits_b) * hops as u64;
        self.messages[s] += 2;
    }

    /// Records pre-aggregated traffic: `flit_hops` flit-hops over
    /// `messages` messages of one class. Exactly equivalent to any sequence
    /// of [`Self::record`] calls with the same totals (the counters are
    /// plain sums) — the engine's run-level fast paths accumulate locally
    /// and flush once.
    #[inline]
    pub fn record_bulk(&mut self, class: TrafficClass, flit_hops: u64, messages: u64) {
        let s = Self::slot(class);
        self.flit_hops[s] += flit_hops;
        self.messages[s] += messages;
    }

    /// Total flit-hops for one class.
    pub fn flit_hops(&self, class: TrafficClass) -> u64 {
        self.flit_hops[Self::slot(class)]
    }

    /// Total message count for one class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[Self::slot(class)]
    }

    /// Total flit-hops across all classes.
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops.iter().sum()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..3 {
            self.flit_hops[i] += other.flit_hops[i];
            self.messages[i] += other.messages[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let noc = NocConfig::default();
        assert_eq!(noc.router_cycles, 3);
        assert_eq!(noc.link_cycles, 1);
        assert_eq!(noc.flit_bytes, 16);
    }

    #[test]
    fn zero_hop_latency_is_zero() {
        let noc = NocConfig::default();
        assert_eq!(noc.one_way_latency(0), 0);
        assert_eq!(noc.round_trip_latency(0), 0);
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let noc = NocConfig::default();
        for hops in 0..15 {
            assert_eq!(noc.round_trip_latency(hops), 2 * noc.one_way_latency(hops));
        }
    }

    #[test]
    fn cache_line_flit_count() {
        let noc = NocConfig::default();
        assert_eq!(noc.data_flits(64), 5); // header + 4 payload flits
        assert_eq!(noc.data_flits(1), 2); // header + 1 partial flit
        assert_eq!(noc.control_flits(), 1);
    }

    #[test]
    fn traffic_stats_accumulate() {
        let mut stats = TrafficStats::new();
        stats.record(TrafficClass::L2ToLlc, 5, 3);
        stats.record(TrafficClass::L2ToLlc, 1, 3);
        stats.record(TrafficClass::LlcToMem, 5, 7);
        assert_eq!(stats.flit_hops(TrafficClass::L2ToLlc), 18);
        assert_eq!(stats.flit_hops(TrafficClass::LlcToMem), 35);
        assert_eq!(stats.flit_hops(TrafficClass::Other), 0);
        assert_eq!(stats.messages(TrafficClass::L2ToLlc), 2);
        assert_eq!(stats.total_flit_hops(), 53);
    }

    #[test]
    fn traffic_stats_merge() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Other, 2, 4);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Other, 3, 1);
        a.merge(&b);
        assert_eq!(a.flit_hops(TrafficClass::Other), 11);
        assert_eq!(a.messages(TrafficClass::Other), 2);
    }

    #[test]
    fn zero_hop_messages_cost_no_flit_hops() {
        let mut stats = TrafficStats::new();
        stats.record(TrafficClass::L2ToLlc, 5, 0);
        assert_eq!(stats.total_flit_hops(), 0);
        assert_eq!(stats.messages(TrafficClass::L2ToLlc), 1);
    }

    #[test]
    fn class_display_matches_figures() {
        assert_eq!(TrafficClass::L2ToLlc.to_string(), "L2-LLC");
        assert_eq!(TrafficClass::LlcToMem.to_string(), "LLC-Mem");
        assert_eq!(TrafficClass::Other.to_string(), "Other");
    }
}

//! Property-based tests for the mesh substrate: metric axioms, spiral
//! orders, and center-of-mass invariants.

use cdcs_mesh::geometry::{
    center_of_mass, compact_mean_distance, nearest_tile, tiles_by_distance_from_point, Point,
};
use cdcs_mesh::{
    DistanceTables, MemCtrlPlacement, Mesh, NocConfig, PortDistanceTables, RegionGrid,
    RegionTables, TileId, Topology,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hops_is_a_metric(cols in 1u16..10, rows in 1u16..10, a in 0u16.., b in 0u16.., c in 0u16..) {
        let mesh = Mesh::new(cols, rows);
        let n = mesh.num_tiles() as u16;
        let (a, b, c) = (TileId(a % n), TileId(b % n), TileId(c % n));
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(mesh.hops(a, a), 0);
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
        if a != b {
            prop_assert!(mesh.hops(a, b) > 0);
        }
    }

    #[test]
    fn tiles_by_distance_is_a_permutation_sorted_by_distance(
        cols in 1u16..8, rows in 1u16..8, from in 0u16..,
    ) {
        let mesh = Mesh::new(cols, rows);
        let from = TileId(from % mesh.num_tiles() as u16);
        let order = mesh.tiles_by_distance(from);
        prop_assert_eq!(order.len(), mesh.num_tiles());
        let mut ids: Vec<u16> = order.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        prop_assert!(ids.iter().enumerate().all(|(i, &t)| t == i as u16));
        for w in order.windows(2) {
            prop_assert!(mesh.hops(from, w[0]) <= mesh.hops(from, w[1]));
        }
        prop_assert_eq!(order[0], from);
    }

    #[test]
    fn center_of_mass_is_inside_the_hull(
        side in 2u16..8,
        weights in prop::collection::vec(0.1f64..10.0, 1..10),
    ) {
        let mesh = Mesh::new(side, side);
        let weighted: Vec<(TileId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (TileId((i % mesh.num_tiles()) as u16), w))
            .collect();
        let com = center_of_mass(&mesh, &weighted).expect("positive weights");
        prop_assert!(com.x >= 0.0 && com.x <= f64::from(side - 1));
        prop_assert!(com.y >= 0.0 && com.y <= f64::from(side - 1));
        // The nearest tile to the COM is a real tile.
        let t = nearest_tile(&mesh, com);
        prop_assert!(t.index() < mesh.num_tiles());
    }

    #[test]
    fn compact_mean_distance_is_monotone_in_size(
        side in 2u16..9, x in 0.0f64..8.0, y in 0.0f64..8.0,
        s1 in 0.5f64..20.0, s2 in 0.5f64..20.0,
    ) {
        let mesh = Mesh::new(side, side);
        let p = Point { x: x.min(f64::from(side - 1)), y: y.min(f64::from(side - 1)) };
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        let cap = mesh.num_tiles() as f64;
        let d_lo = compact_mean_distance(&mesh, p, lo.min(cap));
        let d_hi = compact_mean_distance(&mesh, p, hi.min(cap));
        prop_assert!(d_lo <= d_hi + 1e-9, "{d_lo} > {d_hi}");
    }

    #[test]
    fn spiral_from_point_is_complete(side in 1u16..8, x in 0.0f64..7.0, y in 0.0f64..7.0) {
        let mesh = Mesh::new(side, side);
        let p = Point { x: x.min(f64::from(side - 1)), y: y.min(f64::from(side - 1)) };
        let order = tiles_by_distance_from_point(&mesh, p);
        prop_assert_eq!(order.len(), mesh.num_tiles());
        for w in order.windows(2) {
            let d0 = mesh.hops_to_point(w[0], p.x, p.y);
            let d1 = mesh.hops_to_point(w[1], p.x, p.y);
            prop_assert!(d0 <= d1 + 1e-9);
        }
    }

    // The engine's batched access path reads these tables instead of calling
    // `mesh.hops` / `noc.round_trip_latency` per access; bit-identical
    // entries for every pair are what make the batched and reference engines
    // produce equal results.
    #[test]
    fn distance_tables_match_mesh_and_noc(
        cols in 1u16..10, rows in 1u16..10,
        router in 1u32..6, link in 1u32..4,
    ) {
        let mesh = Mesh::new(cols, rows);
        let noc = NocConfig { router_cycles: router, link_cycles: link, flit_bytes: 16 };
        let tables = DistanceTables::new(&mesh, noc);
        prop_assert_eq!(tables.num_tiles(), mesh.num_tiles());
        for a in mesh.tiles() {
            for b in mesh.tiles() {
                prop_assert_eq!(tables.hops(a, b), mesh.hops(a, b));
                prop_assert_eq!(
                    tables.round_trip(a, b).to_bits(),
                    f64::from(noc.round_trip_latency(mesh.hops(a, b))).to_bits()
                );
            }
        }
    }

    // Region partitioning invariants for the hierarchical planner: the
    // partition is exact (every tile in exactly one region), each region is a
    // contiguous axis-aligned rectangle, and the region-aggregated distance
    // tables reproduce `mesh.hops` aggregates bit-for-bit.
    #[test]
    fn region_partition_is_exact_rectangles(
        cols in 1u16..12, rows in 1u16..12, side in 1u16..6,
    ) {
        let mesh = Mesh::new(cols, rows);
        let grid = RegionGrid::new(mesh, side);

        // Every tile belongs to exactly one region, and the CSR tile lists
        // agree with `region_of`.
        let mut owner = vec![usize::MAX; mesh.num_tiles()];
        for r in 0..grid.num_regions() {
            for &t in grid.tiles(r) {
                prop_assert_eq!(owner[t.index()], usize::MAX, "tile in two regions");
                owner[t.index()] = r;
                prop_assert_eq!(grid.region_of(t), r);
            }
        }
        prop_assert!(owner.iter().all(|&r| r != usize::MAX), "uncovered tile");

        // Each region is the full contiguous rectangle of its bounds.
        for r in 0..grid.num_regions() {
            let (lo, hi) = grid.bounds(r);
            prop_assert!(lo.x <= hi.x && lo.y <= hi.y);
            prop_assert!(hi.x - lo.x < side && hi.y - lo.y < side);
            let area = (hi.x - lo.x + 1) as usize * (hi.y - lo.y + 1) as usize;
            prop_assert_eq!(grid.tiles(r).len(), area);
            for &t in grid.tiles(r) {
                let c = mesh.coord(t);
                prop_assert!(c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y);
            }
        }
    }

    #[test]
    fn region_tables_match_mesh_hops_aggregates(
        cols in 1u16..9, rows in 1u16..9, side in 1u16..5,
        router in 1u32..6, link in 1u32..4,
    ) {
        let mesh = Mesh::new(cols, rows);
        let noc = NocConfig { router_cycles: router, link_cycles: link, flit_bytes: 16 };
        let grid = RegionGrid::new(mesh, side);
        let tables = RegionTables::new(&grid, noc);
        prop_assert_eq!(tables.num_regions(), grid.num_regions());

        // Tile → region means, accumulated in the same ascending tile order
        // the tables use, must be bit-identical.
        for t in mesh.tiles() {
            for r in 0..grid.num_regions() {
                let mut hops = 0.0;
                let mut rt = 0.0;
                for &b in grid.tiles(r) {
                    let h = mesh.hops(t, b);
                    hops += f64::from(h);
                    rt += f64::from(noc.round_trip_latency(h));
                }
                let n = grid.tiles(r).len() as f64;
                prop_assert_eq!(tables.tile_mean_hops(t, r).to_bits(), (hops / n).to_bits());
                prop_assert_eq!(
                    tables.tile_mean_round_trip(t, r).to_bits(),
                    (rt / n).to_bits()
                );
            }
        }

        // Region → region means over all tile pairs.
        for a in 0..grid.num_regions() {
            for b in 0..grid.num_regions() {
                let mut hops = 0.0;
                for &ta in grid.tiles(a) {
                    for &tb in grid.tiles(b) {
                        hops += f64::from(mesh.hops(ta, tb));
                    }
                }
                let pairs = (grid.tiles(a).len() * grid.tiles(b).len()) as f64;
                prop_assert_eq!(tables.mean_hops(a, b).to_bits(), (hops / pairs).to_bits());
            }
        }
    }

    #[test]
    fn port_distance_tables_match_mesh_and_noc(
        cols in 2u16..10, rows in 2u16..10, controllers in 1usize..9,
        router in 1u32..6, link in 1u32..4,
    ) {
        let mesh = Mesh::new(cols, rows);
        let noc = NocConfig { router_cycles: router, link_cycles: link, flit_bytes: 16 };
        let mc = MemCtrlPlacement::edges(&mesh, controllers);
        let tables = PortDistanceTables::new(&mesh, noc, mc.ports());
        prop_assert_eq!(tables.num_ports(), mc.count());
        for t in mesh.tiles() {
            for (p, &port) in mc.ports().iter().enumerate() {
                prop_assert_eq!(tables.hops(t, p), mesh.hops(t, port));
                prop_assert_eq!(
                    tables.round_trip(t, p).to_bits(),
                    f64::from(noc.round_trip_latency(mesh.hops(t, port))).to_bits()
                );
            }
        }
    }
}

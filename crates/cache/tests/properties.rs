//! Property-based tests for the cache substrate: LRU pool semantics,
//! miss-curve algebra, monitor consistency.

use cdcs_cache::monitor::{Gmon, GmonConfig, Monitor};
use cdcs_cache::{Line, LruPool, MissCurve, StackProfiler};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn pool_never_exceeds_capacity_and_tracks_membership(
        cap in 0usize..64,
        ops in prop::collection::vec((0u64..128, prop::bool::ANY), 1..300),
    ) {
        let mut pool = LruPool::new(cap);
        let mut model: HashSet<u64> = HashSet::new();
        for (addr, remove) in ops {
            if remove {
                let was = pool.remove(Line(addr));
                prop_assert_eq!(was, model.remove(&addr));
            } else {
                let (hit, evicted) = pool.access_insert(Line(addr));
                prop_assert_eq!(hit, model.contains(&addr));
                if cap > 0 {
                    model.insert(addr);
                }
                if let Some(e) = evicted {
                    model.remove(&e.0);
                }
            }
            prop_assert!(pool.len() <= cap);
            prop_assert_eq!(pool.len(), model.len());
        }
    }

    #[test]
    fn pool_eviction_order_is_lru(addrs in prop::collection::vec(0u64..32, 1..100)) {
        // Evicted line must always be the least-recently-used distinct line.
        let cap = 8;
        let mut pool = LruPool::new(cap);
        let mut recency: Vec<u64> = Vec::new(); // most recent last
        for a in addrs {
            let (_, evicted) = pool.access_insert(Line(a));
            recency.retain(|&x| x != a);
            recency.push(a);
            if let Some(e) = evicted {
                prop_assert_eq!(recency[0], e.0, "evicted non-LRU line");
                recency.remove(0);
            }
            prop_assert!(recency.len() <= cap);
        }
    }

    #[test]
    fn miss_curve_is_monotone_and_interpolates_within_bounds(
        pts in prop::collection::vec((0.0f64..100_000.0, 0.0f64..1e6), 1..20),
        probe in prop::collection::vec(0.0f64..120_000.0, 1..20),
    ) {
        let curve = MissCurve::new(pts);
        let mut last = f64::INFINITY;
        for p in curve.points() {
            prop_assert!(p.1 <= last + 1e-9);
            last = p.1;
        }
        for q in probe {
            let m = curve.misses_at(q);
            prop_assert!(m >= 0.0 && m <= curve.at_zero() + 1e-9);
        }
    }

    #[test]
    fn convex_hull_is_below_curve_and_monotone(
        pts in prop::collection::vec((0.0f64..50_000.0, 0.0f64..1e5), 2..16),
    ) {
        let curve = MissCurve::new(pts);
        let hull = curve.convex_hull();
        for step in 0..20 {
            let x = curve.max_capacity() * step as f64 / 19.0;
            prop_assert!(hull.misses_at(x) <= curve.misses_at(x) + 1e-6);
        }
        // Hull slopes are non-increasing in magnitude (convexity).
        let hp = hull.points();
        let mut last_slope = f64::INFINITY;
        for w in hp.windows(2) {
            let slope = (w[0].1 - w[1].1) / (w[1].0 - w[0].0).max(1e-12);
            prop_assert!(slope <= last_slope + 1e-6);
            last_slope = slope;
        }
    }

    #[test]
    fn curve_addition_is_pointwise_superposition(
        a in prop::collection::vec((0.0f64..10_000.0, 0.0f64..1e4), 1..8),
        b in prop::collection::vec((0.0f64..10_000.0, 0.0f64..1e4), 1..8),
        probes in prop::collection::vec(0.0f64..12_000.0, 1..8),
    ) {
        let (ca, cb) = (MissCurve::new(a), MissCurve::new(b));
        let sum = ca.add(&cb);
        for q in probes {
            let expect = ca.misses_at(q) + cb.misses_at(q);
            // Piecewise-linear interpolation on the union grid can differ
            // slightly between knots of the two inputs; allow 1% slack.
            prop_assert!((sum.misses_at(q) - expect).abs() <= expect.abs() * 0.01 + 1e-6);
        }
    }

    #[test]
    fn profiler_curve_matches_direct_lru_simulation(
        addrs in prop::collection::vec(0u64..96, 50..400),
        cap in 1usize..128,
    ) {
        let mut prof = StackProfiler::new();
        let mut pool = LruPool::new(cap);
        let mut misses = 0u64;
        for &a in &addrs {
            prof.record(Line(a));
            let (hit, _) = pool.access_insert(Line(a));
            if !hit {
                misses += 1;
            }
        }
        prop_assert_eq!(prof.miss_curve().misses_at(cap as f64) as u64, misses);
    }

    #[test]
    fn gmon_curve_is_anchored_and_bounded(
        addrs in prop::collection::vec(0u64..4096, 100..1000),
    ) {
        let mut gmon = Gmon::new(GmonConfig { sets: 16, ways: 16, sample_period: 2, gamma: 0.9 });
        for &a in &addrs {
            gmon.record(Line(a));
        }
        let c = gmon.miss_curve();
        prop_assert_eq!(c.at_zero() as usize, addrs.len());
        for step in 0..10 {
            let x = c.max_capacity() * step as f64 / 9.0;
            prop_assert!(c.misses_at(x) >= -1e-9);
            prop_assert!(c.misses_at(x) <= c.at_zero() + 1e-9);
        }
    }
}

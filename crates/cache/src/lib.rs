//! Cache substrate for the CDCS reproduction.
//!
//! This crate provides the hardware structures that CDCS ([Beckmann, Tsai,
//! Sanchez, HPCA 2015]) builds on:
//!
//! * [`LruPool`] / [`PartitionedBank`] — LLC banks partitioned at line
//!   granularity. The paper partitions banks with Vantage; we model each
//!   (bank, partition) pair as an exact-capacity fully-associative LRU pool,
//!   which is the idealization Vantage approximates (see `DESIGN.md` §1).
//! * [`MissCurve`] — sparse miss curves (misses as a function of allocated
//!   capacity), the currency of all capacity-allocation decisions.
//! * [`monitor::Umon`] and [`monitor::Gmon`] — utility monitors. GMONs are
//!   the paper's novel geometric monitors (§IV-G): a small tag array whose
//!   per-way limit registers implement a geometrically decreasing sampling
//!   rate, giving fine resolution at small sizes and full-LLC coverage with
//!   only 64 ways.
//! * [`StackProfiler`] — an exact LRU stack-distance profiler, used in tests
//!   and calibration to validate the monitors against ground truth.
//! * [`SetAssocCache`] — a conventional set-associative cache model, used to
//!   validate that the pool idealization tracks set-associative behaviour.
//!
//! # Example: measuring a miss curve with a GMON
//!
//! ```
//! use cdcs_cache::monitor::{Gmon, Monitor};
//! use cdcs_cache::Line;
//!
//! let mut gmon = Gmon::paper_default();
//! // A scan over a small working set: 512 lines, touched repeatedly.
//! for rep in 0..64u64 {
//!     for l in 0..512u64 {
//!         gmon.record(Line(l));
//!     }
//! }
//! let curve = gmon.miss_curve();
//! // Once the allocation covers the working set, misses nearly vanish.
//! assert!(curve.misses_at(8192.0) < curve.misses_at(0.0) / 4.0);
//! ```
//!
//! [Beckmann, Tsai, Sanchez, HPCA 2015]:
//!     https://people.csail.mit.edu/sanchez/papers/2015.cdcs.hpca.pdf

mod bank;
mod curve;
pub mod hash;
pub mod monitor;
mod pool;
mod profiler;
mod setassoc;

pub use bank::{BankId, BankStats, PartitionId, PartitionedBank};
pub use curve::{CurveCursor, MissCurve};
pub use pool::LruPool;
pub use profiler::StackProfiler;
pub use setassoc::SetAssocCache;

use serde::{Deserialize, Serialize};

/// A cache-line address (64-byte granularity; the byte offset is already
/// stripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Line(pub u64);

impl Line {
    /// The raw line address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Line {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Bytes per cache line throughout the modeled system (Table 2).
pub const LINE_BYTES: u64 = 64;

/// Converts a size in bytes to lines, rounding down.
///
/// ```
/// assert_eq!(cdcs_cache::bytes_to_lines(512 * 1024), 8192);
/// ```
pub const fn bytes_to_lines(bytes: u64) -> u64 {
    bytes / LINE_BYTES
}

/// Converts a size in lines to bytes.
pub const fn lines_to_bytes(lines: u64) -> u64 {
    lines * LINE_BYTES
}

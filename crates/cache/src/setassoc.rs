//! A conventional set-associative cache model.
//!
//! The simulator's banks use the exact-capacity [`crate::LruPool`]
//! idealization of Vantage (see `DESIGN.md`). This model exists to validate
//! that idealization: tests compare pool hit rates against a real
//! set-associative array of the same size and show they track closely for
//! the access patterns the workloads produce. It is also reused as the tag
//! array geometry inside the monitors.

use crate::{Line, LruPool};
use serde::{Deserialize, Serialize};

/// Hit/miss statistics for a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetAssocStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

/// A `sets × ways` set-associative cache with per-set LRU replacement.
///
/// # Example
///
/// ```
/// use cdcs_cache::{Line, SetAssocCache};
///
/// // A 32 KB L1-like array: 64 sets, 8 ways.
/// let mut cache = SetAssocCache::new(64, 8);
/// assert!(!cache.access(Line(0)));
/// assert!(cache.access(Line(0)));
/// assert_eq!(cache.capacity(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<LruPool>,
    ways: usize,
    stats: SetAssocStats,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two (hardware indexes sets with
    /// address bits) or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        SetAssocCache {
            sets: (0..sets).map(|_| LruPool::new(ways)).collect(),
            ways,
            stats: SetAssocStats::default(),
        }
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, line: Line) -> usize {
        (line.0 as usize) & (self.sets.len() - 1)
    }

    /// Accesses `line`, filling it on a miss (evicting the set's LRU line if
    /// needed). Returns whether it hit.
    pub fn access(&mut self, line: Line) -> bool {
        let set = self.set_of(line);
        let (hit, _evicted) = self.sets[set].access_insert(line);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Whether `line` is resident, without updating LRU state or statistics.
    pub fn peek(&self, line: Line) -> bool {
        self.sets[self.set_of(line)].contains(line)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SetAssocStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SetAssocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(Line(1)));
        assert!(c.access(Line(1)));
        assert_eq!(c.stats(), SetAssocStats { hits: 1, misses: 1 });
    }

    #[test]
    fn conflict_misses_within_set() {
        let mut c = SetAssocCache::new(4, 1);
        // Lines 0, 4, 8 all map to set 0 with 4 sets.
        c.access(Line(0));
        c.access(Line(4));
        assert!(!c.access(Line(0)), "way conflict must evict");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        SetAssocCache::new(3, 2);
    }

    #[test]
    fn peek_does_not_disturb() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(Line(0));
        assert!(c.peek(Line(0)));
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn pool_idealization_tracks_set_assoc() {
        // For a random access pattern over a working set near capacity, a
        // 16-way set-associative cache and an exact LRU pool of equal size
        // should produce similar hit rates (within a few percent).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut sa = SetAssocCache::new(64, 16); // 1024 lines
        let mut pool = LruPool::new(1024);
        let mut pool_hits = 0u64;
        let accesses = 200_000;
        for _ in 0..accesses {
            let addr = rng.gen_range(0..1500u64);
            sa.access(Line(addr));
            let (hit, _) = pool.access_insert(Line(addr));
            if hit {
                pool_hits += 1;
            }
        }
        let sa_rate = sa.stats().hits as f64 / accesses as f64;
        let pool_rate = pool_hits as f64 / accesses as f64;
        assert!(
            (sa_rate - pool_rate).abs() < 0.05,
            "set-assoc {sa_rate:.3} vs pool {pool_rate:.3}"
        );
    }
}

//! An exact-capacity, fully-associative LRU pool of cache lines.
//!
//! CDCS partitions each 512 KB LLC bank into up to 64 partitions using
//! Vantage, which enforces per-partition capacities at line granularity with
//! negligible inter-partition interference. [`LruPool`] is the idealization
//! of one such bank partition: a set of lines with an exact capacity bound
//! and LRU replacement. The intrusive doubly-linked list over a slab keeps
//! every operation O(1), which matters because the simulator pushes hundreds
//! of millions of accesses through these pools: the dominant per-access
//! cost is one Fx hash of the line address plus an O(1) list splice. The
//! map and slab are preallocated to capacity, so a pool never rehashes or
//! grows while the simulation runs.

use crate::Line;
use rustc_hash::FxHashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    prev: u32,
    next: u32,
}

/// A fully-associative LRU pool with an exact capacity in lines.
///
/// # Example
///
/// ```
/// use cdcs_cache::{Line, LruPool};
///
/// let mut pool = LruPool::new(2);
/// assert!(pool.insert(Line(1)).is_none());
/// assert!(pool.insert(Line(2)).is_none());
/// pool.touch(Line(1)); // 1 becomes MRU
/// // Inserting a third line evicts the LRU, which is now 2.
/// assert_eq!(pool.insert(Line(3)), Some(Line(2)));
/// ```
#[derive(Debug, Clone)]
pub struct LruPool {
    capacity: usize,
    map: FxHashMap<u64, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl LruPool {
    /// Creates a pool holding at most `capacity` lines, with the line map
    /// and slot slab preallocated to that capacity. A zero-capacity pool
    /// is legal: every insertion bypasses (the line is "evicted" immediately),
    /// modeling a virtual cache that was allocated no space in this bank.
    pub fn new(capacity: usize) -> Self {
        LruPool {
            capacity,
            // `Default::default()` for the hasher state keeps this line
            // compatible with both the vendored stand-in and every real
            // rustc-hash release (`FxBuildHasher` is 2.x-only upstream).
            // One entry of headroom: `access_insert` inserts before popping
            // the LRU, so the map transiently holds capacity + 1 entries.
            map: FxHashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of lines the pool may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of lines in the pool.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool holds no lines.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `line` is present.
    pub fn contains(&self, line: Line) -> bool {
        self.map.contains_key(&line.0)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Promotes `line` to MRU if present. Returns `true` on hit.
    pub fn touch(&mut self, line: Line) -> bool {
        match self.map.get(&line.0) {
            Some(&idx) => {
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `line` at MRU position, evicting the LRU line if the pool is
    /// full. Returns the evicted line, if any.
    ///
    /// If `line` is already present it is promoted and `None` is returned.
    /// If the pool has zero capacity, returns `Some(line)` (bypass).
    pub fn insert(&mut self, line: Line) -> Option<Line> {
        if self.touch(line) {
            return None;
        }
        self.insert_absent(line)
    }

    /// [`Self::insert`] for a line the caller has just established to be
    /// absent (the combined [`Self::access_insert`] path — skips the
    /// redundant second lookup).
    fn insert_absent(&mut self, line: Line) -> Option<Line> {
        debug_assert!(!self.contains(line));
        if self.capacity == 0 {
            return Some(line);
        }
        let evicted = if self.map.len() >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    addr: line.0,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    addr: line.0,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(line.0, idx);
        self.push_front(idx);
        evicted
    }

    /// Combined lookup-and-fill: returns `(hit, evicted)`. On a hit the line
    /// is promoted; on a miss it is inserted (possibly evicting the LRU).
    /// This is the common path for a cache access that always fills.
    ///
    /// One hash probe for lookup + insertion via the entry API (the map is
    /// sized one entry over capacity so the insert-then-evict order never
    /// rehashes); the eviction's removal is the only other probe. Inserting
    /// at the head before popping the tail evicts exactly the line the
    /// evict-then-insert order would: the new line is never the tail while
    /// an older one exists.
    pub fn access_insert(&mut self, line: Line) -> (bool, Option<Line>) {
        if self.capacity == 0 {
            // Zero-allocation pool: the "fill" bypasses immediately.
            return (false, Some(line));
        }
        use std::collections::hash_map::Entry;
        match self.map.entry(line.0) {
            Entry::Occupied(e) => {
                let idx = *e.get();
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                (true, None)
            }
            Entry::Vacant(v) => {
                let idx = match self.free.pop() {
                    Some(i) => {
                        self.slots[i as usize] = Slot {
                            addr: line.0,
                            prev: NIL,
                            next: NIL,
                        };
                        i
                    }
                    None => {
                        self.slots.push(Slot {
                            addr: line.0,
                            prev: NIL,
                            next: NIL,
                        });
                        (self.slots.len() - 1) as u32
                    }
                };
                v.insert(idx);
                self.push_front(idx);
                let evicted = if self.map.len() > self.capacity {
                    self.pop_lru()
                } else {
                    None
                };
                (false, evicted)
            }
        }
    }

    /// Removes the LRU line and returns it.
    pub fn pop_lru(&mut self) -> Option<Line> {
        let tail = self.tail;
        if tail == NIL {
            return None;
        }
        let addr = self.slots[tail as usize].addr;
        self.unlink(tail);
        self.map.remove(&addr);
        self.free.push(tail);
        Some(Line(addr))
    }

    /// Removes a specific line. Returns `true` if it was present.
    pub fn remove(&mut self, line: Line) -> bool {
        match self.map.remove(&line.0) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Shrinks or grows the capacity, evicting LRU lines as needed to fit.
    /// Returns the evicted lines (LRU-first). Growth re-establishes the
    /// no-rehash-during-simulation invariant by reserving up front.
    pub fn resize(&mut self, new_capacity: usize) -> Vec<Line> {
        if new_capacity > self.capacity {
            // +1 headroom for `access_insert`'s insert-then-evict order.
            self.map.reserve(new_capacity + 1 - self.map.len());
            self.slots
                .reserve(new_capacity.saturating_sub(self.slots.len()));
        }
        self.capacity = new_capacity;
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            evicted.push(self.pop_lru().expect("len > 0"));
        }
        evicted
    }

    /// Removes and returns all lines (MRU-first).
    pub fn drain(&mut self) -> Vec<Line> {
        let lines: Vec<Line> = self.iter().collect();
        self.clear();
        lines
    }

    /// Removes all lines without materializing them; returns how many were
    /// dropped. The wholesale-invalidation fast path: clearing the map is
    /// O(buckets) instead of a hash remove + list unlink per line.
    pub fn clear(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }

    /// Iterates lines from MRU to LRU.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            pool: self,
            cur: self.head,
        }
    }
}

/// Iterator over a pool's lines, MRU to LRU. Created by [`LruPool::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    pool: &'a LruPool,
    cur: u32,
}

impl Iterator for Iter<'_> {
    type Item = Line;

    fn next(&mut self) -> Option<Line> {
        if self.cur == NIL {
            return None;
        }
        let slot = &self.pool.slots[self.cur as usize];
        self.cur = slot.next;
        Some(Line(slot.addr))
    }
}

impl<'a> IntoIterator for &'a LruPool {
    type Item = Line;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_hit() {
        let mut p = LruPool::new(4);
        assert!(p.insert(Line(10)).is_none());
        assert!(p.touch(Line(10)));
        assert!(!p.touch(Line(11)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut p = LruPool::new(3);
        p.insert(Line(1));
        p.insert(Line(2));
        p.insert(Line(3));
        assert_eq!(p.insert(Line(4)), Some(Line(1)));
        assert_eq!(p.insert(Line(5)), Some(Line(2)));
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut p = LruPool::new(3);
        p.insert(Line(1));
        p.insert(Line(2));
        p.insert(Line(3));
        p.touch(Line(1));
        assert_eq!(p.insert(Line(4)), Some(Line(2)));
    }

    #[test]
    fn reinsert_promotes_without_eviction() {
        let mut p = LruPool::new(2);
        p.insert(Line(1));
        p.insert(Line(2));
        assert!(p.insert(Line(1)).is_none());
        assert_eq!(p.len(), 2);
        assert_eq!(p.insert(Line(3)), Some(Line(2)));
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut p = LruPool::new(0);
        assert_eq!(p.insert(Line(7)), Some(Line(7)));
        assert!(p.is_empty());
    }

    #[test]
    fn access_insert_combines() {
        let mut p = LruPool::new(1);
        let (hit, ev) = p.access_insert(Line(1));
        assert!(!hit && ev.is_none());
        let (hit, ev) = p.access_insert(Line(1));
        assert!(hit && ev.is_none());
        let (hit, ev) = p.access_insert(Line(2));
        assert!(!hit);
        assert_eq!(ev, Some(Line(1)));
    }

    #[test]
    fn remove_present_and_absent() {
        let mut p = LruPool::new(2);
        p.insert(Line(1));
        assert!(p.remove(Line(1)));
        assert!(!p.remove(Line(1)));
        assert!(p.is_empty());
        // Slot is recycled.
        p.insert(Line(2));
        p.insert(Line(3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn resize_shrink_evicts_lru_first() {
        let mut p = LruPool::new(4);
        for i in 1..=4 {
            p.insert(Line(i));
        }
        let evicted = p.resize(2);
        assert_eq!(evicted, vec![Line(1), Line(2)]);
        assert_eq!(p.len(), 2);
        assert!(p.contains(Line(3)) && p.contains(Line(4)));
    }

    #[test]
    fn resize_grow_keeps_lines() {
        let mut p = LruPool::new(1);
        p.insert(Line(1));
        assert!(p.resize(8).is_empty());
        p.insert(Line(2));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn iter_is_mru_to_lru() {
        let mut p = LruPool::new(3);
        p.insert(Line(1));
        p.insert(Line(2));
        p.insert(Line(3));
        p.touch(Line(2));
        let order: Vec<Line> = p.iter().collect();
        assert_eq!(order, vec![Line(2), Line(3), Line(1)]);
    }

    #[test]
    fn drain_empties() {
        let mut p = LruPool::new(3);
        p.insert(Line(1));
        p.insert(Line(2));
        let drained = p.drain();
        assert_eq!(drained.len(), 2);
        assert!(p.is_empty());
        // Pool remains usable.
        p.insert(Line(9));
        assert!(p.contains(Line(9)));
    }

    #[test]
    fn pop_lru_on_empty_is_none() {
        let mut p = LruPool::new(2);
        assert!(p.pop_lru().is_none());
    }

    #[test]
    fn stress_slots_recycled() {
        let mut p = LruPool::new(128);
        for i in 0..100_000u64 {
            p.insert(Line(i));
        }
        assert_eq!(p.len(), 128);
        // Slab should not have grown past capacity + O(1).
        assert!(p.slots.len() <= 129, "slab grew to {}", p.slots.len());
    }
}

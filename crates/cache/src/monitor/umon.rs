//! Conventional utility monitors (UMONs).
//!
//! A UMON [Qureshi & Patt, MICRO'06] is an auxiliary tag directory that
//! observes a sampled fraction of the access stream under LRU and counts hits
//! per way. With sampling rate `1/period` and `sets` sets, each way models
//! `sets × period` lines of cache, so the miss curve has `ways` evenly spaced
//! points. The paper uses UMONs as the baseline its GMONs improve on: to
//! cover a 32 MB LLC in 64 KB steps a UMON needs 512 ways (§IV-G), which is
//! impractical — but easy for us to instantiate in software, and useful as a
//! high-resolution reference (`Umon::fine_grained`).

use super::{Monitor, TagArray};
use crate::hash;
use crate::{Line, MissCurve};
use serde::{Deserialize, Serialize};

/// UMON geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UmonConfig {
    /// Tag-array sets (power of two).
    pub sets: usize,
    /// Tag-array ways; also the number of miss-curve points.
    pub ways: usize,
    /// Address sampling period: one in `sample_period` addresses is
    /// monitored.
    pub sample_period: u32,
}

impl UmonConfig {
    /// Cache lines modeled per way: `sets × sample_period`.
    pub fn lines_per_way(&self) -> u64 {
        self.sets as u64 * self.sample_period as u64
    }

    /// Total modeled capacity in lines.
    pub fn coverage(&self) -> u64 {
        self.lines_per_way() * self.ways as u64
    }
}

/// A utility monitor: uniform sampling, fixed capacity per way.
///
/// # Example
///
/// ```
/// use cdcs_cache::monitor::{Monitor, Umon, UmonConfig};
/// use cdcs_cache::Line;
///
/// let mut umon = Umon::new(UmonConfig { sets: 16, ways: 64, sample_period: 4 });
/// for rep in 0..32u64 {
///     for l in 0..256u64 {
///         umon.record(Line(l));
///     }
/// }
/// let curve = umon.miss_curve();
/// // A 256-line working set fits comfortably in 1024 lines of cache.
/// assert!(curve.misses_at(1024.0) < curve.at_zero() / 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct Umon {
    config: UmonConfig,
    tags: TagArray,
    /// Precomputed [`hash::sample_limit`] for the sampling period (the same
    /// fast path out of [`Monitor::record`] as [`super::Gmon`]'s).
    sample_limit: u64,
    hits: Vec<u64>,
    sampled_misses: u64,
    sampled_accesses: u64,
    accesses: u64,
}

impl Umon {
    /// Creates a UMON with the given geometry.
    pub fn new(config: UmonConfig) -> Self {
        let tags = TagArray::new(config.sets, config.ways);
        Umon {
            tags,
            sample_limit: hash::sample_limit(config.sample_period),
            hits: vec![0; config.ways],
            sampled_misses: 0,
            sampled_accesses: 0,
            accesses: 0,
            config,
        }
    }

    /// The impractically large fine-grained UMON the paper sizes at 512 ways
    /// to cover a 32 MB LLC in 64 KB chunks (§IV-G). Useful as an accuracy
    /// reference for GMONs.
    pub fn fine_grained(total_lines: u64, ways: usize) -> Self {
        // Choose sets × period so that ways × sets × period == total_lines,
        // with a fixed 16-set array (matching the GMON's tag budget).
        let sets = 16usize;
        let period = (total_lines as f64 / (ways as f64 * sets as f64))
            .ceil()
            .max(1.0);
        Umon::new(UmonConfig {
            sets,
            ways,
            sample_period: period as u32,
        })
    }

    /// This monitor's geometry.
    pub fn config(&self) -> UmonConfig {
        self.config
    }
}

impl Monitor for Umon {
    #[inline]
    fn record(&mut self, line: Line) {
        self.accesses += 1;
        // Sampling-aware fast path (see `Gmon::record`): same decisions as
        // `hash::sampled(line, 1, period)` at one hash + compare.
        if !hash::sampled_by_limit(line.0, self.sample_limit) {
            return;
        }
        self.sampled_accesses += 1;
        let set = self.tags.set_of(line);
        let tag = hash::tag16(line.0);
        let way = self.tags.find(set, tag);
        match way {
            Some(way) => self.hits[way] += 1,
            None => self.sampled_misses += 1,
        }
        self.tags.promote_unfiltered(set, tag, way);
    }

    fn miss_curve(&self) -> MissCurve {
        // Scale sampled hits by the *realized* sampling ratio rather than the
        // nominal period: address sampling over a small hot footprint has
        // binomial variance in how many hot lines are monitored, and the
        // realized ratio (both counters exist in hardware) corrects for it.
        let period = if self.sampled_accesses > 0 {
            self.accesses as f64 / self.sampled_accesses as f64
        } else {
            self.config.sample_period as f64
        };
        let mut points = Vec::with_capacity(self.config.ways + 1);
        points.push((0.0, self.accesses as f64));
        let mut cumulative_hits = 0.0;
        for (w, &h) in self.hits.iter().enumerate() {
            cumulative_hits += h as f64 * period;
            let capacity = (w as u64 + 1) * self.config.lines_per_way();
            points.push((
                capacity as f64,
                (self.accesses as f64 - cumulative_hits).max(0.0),
            ));
        }
        MissCurve::new(points)
    }

    fn accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        self.hits.iter_mut().for_each(|h| *h = 0);
        self.sampled_misses = 0;
        self.sampled_accesses = 0;
        self.accesses = 0;
    }

    fn age(&mut self) {
        // Keep 3/4 of history: an effective window of ~4 epochs, chosen so
        // that per-epoch sampling noise on allocation sizes stays below the
        // margins that flip placement decisions.
        self.hits.iter_mut().for_each(|h| *h = *h * 3 / 4);
        self.sampled_misses = self.sampled_misses * 3 / 4;
        self.sampled_accesses = self.sampled_accesses * 3 / 4;
        self.accesses = self.accesses * 3 / 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackProfiler;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Drives a monitor and the exact profiler over the same stream and
    /// returns (monitor curve, exact curve).
    fn compare_on<M: Monitor>(monitor: &mut M, trace: &[u64]) -> (MissCurve, MissCurve) {
        let mut prof = StackProfiler::new();
        for &a in trace {
            monitor.record(Line(a));
            prof.record(Line(a));
        }
        (monitor.miss_curve(), prof.miss_curve())
    }

    #[test]
    fn unsampled_umon_matches_exact_profile() {
        // With period 1 and a footprint smaller than one way-span, the UMON
        // is an exact (hash-tagged) LRU profiler at way granularity.
        let mut umon = Umon::new(UmonConfig {
            sets: 64,
            ways: 16,
            sample_period: 1,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let trace: Vec<u64> = (0..60_000).map(|_| rng.gen_range(0..400u64)).collect();
        let (m, e) = compare_on(&mut umon, &trace);
        for cap in [64.0, 128.0, 256.0, 512.0, 1024.0] {
            let err = (m.misses_at(cap) - e.misses_at(cap)).abs() / trace.len() as f64;
            assert!(err < 0.08, "capacity {cap}: err {err}");
        }
    }

    #[test]
    fn sampled_umon_tracks_exact_profile() {
        let mut umon = Umon::new(UmonConfig {
            sets: 64,
            ways: 32,
            sample_period: 8,
        });
        let mut rng = StdRng::seed_from_u64(2);
        // Mixture: hot 256 lines + cold tail.
        let trace: Vec<u64> = (0..400_000)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0..256u64)
                } else {
                    rng.gen_range(0..16_384u64)
                }
            })
            .collect();
        let (m, e) = compare_on(&mut umon, &trace);
        // Single-way capacities (512 lines here) suffer boundary smearing:
        // address-sampled monitors spread hits across neighbouring ways
        // (Poisson arrival of sampled lines per set). This is inherent to the
        // hardware; accuracy is good once a capacity spans several ways.
        for cap in [2048.0, 4096.0, 8192.0] {
            let err = (m.misses_at(cap) - e.misses_at(cap)).abs() / trace.len() as f64;
            assert!(err < 0.08, "capacity {cap}: err {err}");
        }
    }

    #[test]
    fn miss_curve_monotone_and_anchored() {
        let mut umon = Umon::new(UmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 2,
        });
        for a in 0..10_000u64 {
            umon.record(Line(a % 500));
        }
        let c = umon.miss_curve();
        assert_eq!(c.at_zero(), 10_000.0);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn reset_clears_counters_keeps_coverage() {
        let mut umon = Umon::new(UmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 2,
        });
        for a in 0..1000u64 {
            umon.record(Line(a));
        }
        umon.reset();
        assert_eq!(umon.accesses(), 0);
        assert_eq!(umon.miss_curve().at_zero(), 0.0);
    }

    #[test]
    fn fine_grained_covers_requested_capacity() {
        let umon = Umon::fine_grained(524_288, 512); // 32 MB in lines
        assert!(umon.config().coverage() >= 524_288);
    }

    #[test]
    fn streaming_pattern_shows_no_hits() {
        // A pure scan never reuses lines: misses stay ~flat at all sizes
        // within coverage.
        let mut umon = Umon::new(UmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 4,
        });
        for a in 0..200_000u64 {
            umon.record(Line(a));
        }
        let c = umon.miss_curve();
        assert!(c.misses_at(c.max_capacity()) > 0.98 * c.at_zero());
    }
}

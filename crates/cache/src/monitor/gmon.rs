//! Geometric monitors (GMONs) — the paper's §IV-G contribution.
//!
//! A GMON is a small set-associative tag array (1024 tags, 64 ways in the
//! paper) augmented with one *limit register per way*. When a tag is demoted
//! from way `w` to way `w+1`, its hash is compared against way `w+1`'s limit
//! register; if it exceeds the limit the tag is discarded and the demotion
//! chain stops. Setting the limits so that a fraction γ of tags survives each
//! demotion makes the sampling rate at way `w` equal `γ^w` of the base rate,
//! so each successive way models `1/γ` more capacity than the previous one:
//! fine resolution at small sizes, full-LLC coverage at large ones, all with
//! 64 ways. With the paper's parameters (γ ≈ 0.95, sample period 64, 16 sets)
//! way 0 models 64 KB and the full monitor covers a 32 MB LLC, with modeled
//! capacity per way growing 26× from 0.125 to 3.3 banks.

use super::{Monitor, TagArray};
use crate::hash;
use crate::{Line, MissCurve};
use serde::{Deserialize, Serialize};

/// GMON geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmonConfig {
    /// Tag-array sets (power of two). The paper's 1024-tag, 64-way GMON has
    /// 16 sets.
    pub sets: usize,
    /// Tag-array ways; also the number of miss-curve points.
    pub ways: usize,
    /// Base address-sampling period: one in `sample_period` addresses enters
    /// the monitor (the paper samples every 64th access for full coverage at
    /// 64 cores).
    pub sample_period: u32,
    /// Per-demotion survival probability γ ∈ (0, 1]. γ = 1 degenerates to a
    /// UMON.
    pub gamma: f64,
}

impl GmonConfig {
    /// The paper's default GMON: 1024 tags, 64 ways, γ ≈ 0.95, sampling every
    /// 64th access — covers a 32 MB LLC with way 0 modeling 64 KB (§IV-G).
    pub fn paper_default() -> Self {
        GmonConfig {
            sets: 16,
            ways: 64,
            sample_period: 64,
            gamma: 0.95,
        }
    }

    /// Capacity (in lines) modeled by way `w`: `sets × period / γ^w`.
    pub fn lines_at_way(&self, w: usize) -> f64 {
        self.sets as f64 * self.sample_period as f64 / self.gamma.powi(w as i32)
    }

    /// Total modeled capacity in lines: `Σ_w sets × period / γ^w`,
    /// evaluated in closed form (geometric series) — [`Self::covering`]
    /// bisects on this, so the per-way sum would be quadratic in ways.
    pub fn coverage(&self) -> f64 {
        let base = self.sets as f64 * self.sample_period as f64;
        if self.gamma == 1.0 {
            return base * self.ways as f64;
        }
        let r = 1.0 / self.gamma;
        base * (r.powi(self.ways as i32) - 1.0) / (r - 1.0)
    }

    /// Chooses γ so that the monitor covers exactly `total_lines`, keeping
    /// the other parameters. Solved by bisection: coverage is monotonically
    /// decreasing in γ.
    ///
    /// # Panics
    ///
    /// Panics if `total_lines` is smaller than the γ=1 coverage (a plain
    /// UMON already covers it; use γ = 1) — callers should clamp instead of
    /// relying on extrapolation.
    pub fn covering(sets: usize, ways: usize, sample_period: u32, total_lines: u64) -> Self {
        let uniform = GmonConfig {
            sets,
            ways,
            sample_period,
            gamma: 1.0,
        };
        assert!(
            uniform.coverage() <= total_lines as f64,
            "a uniform monitor already covers {total_lines} lines; use gamma = 1"
        );
        let (mut lo, mut hi) = (1e-3, 1.0);
        for _ in 0..80 {
            let mid = (lo + hi) / 2.0;
            let cfg = GmonConfig {
                sets,
                ways,
                sample_period,
                gamma: mid,
            };
            if cfg.coverage() > total_lines as f64 {
                lo = mid; // too much coverage -> raise gamma
            } else {
                hi = mid;
            }
        }
        GmonConfig {
            sets,
            ways,
            sample_period,
            gamma: (lo + hi) / 2.0,
        }
    }
}

/// A geometric monitor.
///
/// # Example
///
/// ```
/// use cdcs_cache::monitor::{Gmon, Monitor};
/// use cdcs_cache::Line;
///
/// let mut gmon = Gmon::paper_default();
/// for rep in 0..100u64 {
///     for l in 0..2048u64 {
///         gmon.record(Line(l));
///     }
/// }
/// let curve = gmon.miss_curve();
/// // The 2048-line (128 KB) working set fits within the monitor's range:
/// // misses at 4096 lines are far below misses at zero.
/// assert!(curve.misses_at(4096.0) < curve.at_zero() / 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gmon {
    config: GmonConfig,
    /// Tag array with the per-way limit registers (scaled to 0..=65536)
    /// attached: a tag moves into way `w` only if its 16-bit hash is below
    /// limit `w`. Limit 0 is unused (entries at way 0 are gated by the base
    /// sampling decision). Stored as u32 so γ = 1 maps to 65536, "always
    /// keep".
    tags: TagArray,
    /// Precomputed [`hash::sample_limit`] for the base sampling period: the
    /// sampling-aware fast path out of [`Monitor::record`] for the
    /// `(period − 1)/period` majority of accesses that are not sampled.
    sample_limit: u64,
    hits: Vec<u64>,
    sampled_accesses: u64,
    accesses: u64,
}

impl Gmon {
    /// Creates a GMON with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if γ is outside `(0, 1]`.
    pub fn new(config: GmonConfig) -> Self {
        assert!(
            config.gamma > 0.0 && config.gamma <= 1.0,
            "gamma must be in (0, 1], got {}",
            config.gamma
        );
        // limits[w] = gamma^w * 2^16: a uniform 16-bit hash is below this
        // with probability gamma^w, so survival into way w is gamma^w overall
        // (the same hash is re-checked against progressively lower limits,
        // making the per-step survival conditional probability gamma).
        let limits = (0..config.ways)
            .map(|w| (config.gamma.powi(w as i32) * 65536.0).round() as u32)
            .collect();
        Gmon {
            tags: TagArray::with_limits(config.sets, config.ways, limits),
            hits: vec![0; config.ways],
            sample_limit: hash::sample_limit(config.sample_period),
            sampled_accesses: 0,
            accesses: 0,
            config,
        }
    }

    /// The paper's default GMON (see [`GmonConfig::paper_default`]).
    pub fn paper_default() -> Self {
        Gmon::new(GmonConfig::paper_default())
    }

    /// This monitor's geometry.
    pub fn config(&self) -> GmonConfig {
        self.config
    }

    /// The per-way limit registers, scaled to `0..=65536` (for
    /// inspection/tests).
    pub fn limit_registers(&self) -> &[u32] {
        self.tags.limits()
    }
}

impl Monitor for Gmon {
    #[inline]
    fn record(&mut self, line: Line) {
        self.accesses += 1;
        // Sampling-aware fast path: one hash against the precomputed limit
        // (identical decisions to `hash::sampled(line, 1, period)`) and the
        // non-sampled majority is done — no tag/set hashing, no array walk.
        if !hash::sampled_by_limit(line.0, self.sample_limit) {
            return;
        }
        self.sampled_accesses += 1;
        let set = self.tags.set_of(line);
        let tag = hash::tag16(line.0);
        // Hardware stores only the 16-bit hashed tag, so the limit registers
        // filter on "the hash value of the tag" (§IV-G): a tag survives into
        // way w iff tag < limits[w]. Limits are nested (decreasing), so the
        // population at way w is exactly the fraction γ^w of sampled tags.
        // `touch_filtered` runs the lookup and exactly that filter chain in
        // one fused pass over the set.
        if let Some(way) = self.tags.touch_filtered(set, tag) {
            self.hits[way] += 1;
        }
    }

    fn miss_curve(&self) -> MissCurve {
        // Scale by the realized base sampling ratio (see `Umon::miss_curve`):
        // address sampling over small footprints has binomial variance that
        // the nominal period would not correct.
        let period = if self.sampled_accesses > 0 {
            self.accesses as f64 / self.sampled_accesses as f64
        } else {
            self.config.sample_period as f64
        };
        let mut points = Vec::with_capacity(self.config.ways + 1);
        points.push((0.0, self.accesses as f64));
        let mut cumulative_capacity = 0.0;
        let mut cumulative_hits = 0.0;
        for (w, &h) in self.hits.iter().enumerate() {
            // A hit at way w is observed with probability (1/period) * γ^w,
            // so it stands for period / γ^w accesses of the full stream.
            cumulative_hits += h as f64 * period / self.config.gamma.powi(w as i32);
            cumulative_capacity += self.config.lines_at_way(w);
            points.push((
                cumulative_capacity,
                (self.accesses as f64 - cumulative_hits).max(0.0),
            ));
        }
        MissCurve::new(points)
    }

    fn accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        self.hits.iter_mut().for_each(|h| *h = 0);
        self.sampled_accesses = 0;
        self.accesses = 0;
    }

    fn age(&mut self) {
        // Keep 3/4 of history: an effective window of ~4 epochs, chosen so
        // that per-epoch sampling noise on allocation sizes stays below the
        // margins that flip placement decisions.
        self.hits.iter_mut().for_each(|h| *h = *h * 3 / 4);
        self.sampled_accesses = self.sampled_accesses * 3 / 4;
        self.accesses = self.accesses * 3 / 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackProfiler;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn limits_decrease_geometrically() {
        let gmon = Gmon::new(GmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 1,
            gamma: 0.5,
        });
        let lims = gmon.limit_registers();
        assert_eq!(lims[0], 65536);
        assert_eq!(lims[1], 32768);
        assert_eq!(lims[2], 16384);
    }

    #[test]
    fn paper_default_covers_32mb() {
        let cfg = GmonConfig::paper_default();
        let coverage_mb = cfg.coverage() * 64.0 / (1024.0 * 1024.0);
        // γ = 0.95 with 64 ways covers roughly the paper's 32 MB LLC.
        assert!(
            coverage_mb > 25.0 && coverage_mb < 40.0,
            "coverage {coverage_mb} MB"
        );
        // Way 0 models 64 KB.
        assert_eq!(cfg.lines_at_way(0), 1024.0);
        // Capacity per way grows ~26x across the array (paper §IV-G).
        let growth = cfg.lines_at_way(63) / cfg.lines_at_way(0);
        assert!((growth - 26.0).abs() < 2.0, "growth {growth}");
    }

    #[test]
    fn covering_solves_for_gamma() {
        let total = 524_288; // 32 MB in lines
        let cfg = GmonConfig::covering(16, 64, 64, total);
        assert!((cfg.coverage() - total as f64).abs() / (total as f64) < 0.01);
        assert!(cfg.gamma > 0.9 && cfg.gamma < 1.0, "gamma {}", cfg.gamma);
    }

    #[test]
    #[should_panic(expected = "use gamma = 1")]
    fn covering_rejects_tiny_targets() {
        GmonConfig::covering(16, 64, 64, 1024);
    }

    #[test]
    fn gamma_one_behaves_like_umon() {
        use crate::monitor::{Umon, UmonConfig};
        let mut gmon = Gmon::new(GmonConfig {
            sets: 32,
            ways: 16,
            sample_period: 2,
            gamma: 1.0,
        });
        let mut umon = Umon::new(UmonConfig {
            sets: 32,
            ways: 16,
            sample_period: 2,
        });
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let a = Line(rng.gen_range(0..2000u64));
            gmon.record(a);
            umon.record(a);
        }
        let (gc, uc) = (gmon.miss_curve(), umon.miss_curve());
        for cap in [64.0, 512.0, 1024.0] {
            assert_eq!(gc.misses_at(cap), uc.misses_at(cap), "capacity {cap}");
        }
    }

    #[test]
    fn gmon_tracks_exact_profile_small_and_large() {
        // Working set with a cliff: hot 1500 lines plus a 30000-line loop.
        // The GMON must resolve both scales with its 24 ways.
        let cfg = GmonConfig::covering(64, 24, 8, 65_536);
        let mut gmon = Gmon::new(cfg);
        let mut prof = StackProfiler::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut loop_pos = 0u64;
        for _ in 0..600_000 {
            let a = if rng.gen_bool(0.5) {
                rng.gen_range(0..1500u64)
            } else {
                loop_pos = (loop_pos + 1) % 30_000;
                10_000_000 + loop_pos
            };
            gmon.record(Line(a));
            prof.record(Line(a));
        }
        let (g, e) = (gmon.miss_curve(), prof.miss_curve());
        // Test on the flanks of the loop's miss cliff (~30000 lines): deep
        // GMON ways are deliberately coarse ("reduced resolution at large
        // sizes", §IV-G), so the cliff edge itself smears by a way's span.
        for cap in [1024.0, 4096.0, 16_384.0, 50_000.0] {
            let err = (g.misses_at(cap) - e.misses_at(cap)).abs() / 600_000.0;
            assert!(err < 0.08, "capacity {cap}: err {err:.4}");
        }
    }

    #[test]
    fn streaming_app_has_flat_curve() {
        let mut gmon = Gmon::paper_default();
        for a in 0..2_000_000u64 {
            gmon.record(Line(a));
        }
        let c = gmon.miss_curve();
        assert!(c.misses_at(c.max_capacity()) > 0.95 * c.at_zero());
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut gmon = Gmon::paper_default();
        for a in 0..10_000u64 {
            gmon.record(Line(a % 100));
        }
        gmon.reset();
        assert_eq!(gmon.accesses(), 0);
        assert_eq!(gmon.miss_curve().at_zero(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn invalid_gamma_panics() {
        Gmon::new(GmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 1,
            gamma: 1.5,
        });
    }

    #[test]
    fn curve_capacities_grow_geometrically() {
        let cfg = GmonConfig {
            sets: 16,
            ways: 8,
            sample_period: 1,
            gamma: 0.5,
        };
        let gmon = Gmon::new(cfg);
        let mut g = Gmon::new(cfg);
        g.record(Line(1));
        let pts = gmon.config();
        // Way capacities double each way with gamma = 0.5.
        assert_eq!(pts.lines_at_way(1) / pts.lines_at_way(0), 2.0);
        assert_eq!(pts.lines_at_way(3) / pts.lines_at_way(2), 2.0);
    }
}

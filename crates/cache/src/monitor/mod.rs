//! Miss-curve monitors: conventional UMONs and the paper's geometric GMONs.
//!
//! To allocate capacity, the CDCS runtime needs each virtual cache's miss
//! curve over the *whole* LLC (32 MB) at *fine* granularity (64 KB chunks).
//! A conventional utility monitor (UMON, [Qureshi & Patt, MICRO'06]) models a
//! fixed capacity per way, so meeting both requirements would take 512 ways
//! (§IV-G). The paper's geometric monitors (GMONs) instead decrease the
//! sampling rate geometrically across ways via per-way limit registers, so
//! 64 ways cover 64 KB–32 MB.
//!
//! Both monitors here observe the full access stream ([`Monitor::record`] is
//! called on every LLC access) and sample internally, exactly as the hardware
//! would ("we sample every 64th access", §IV-I).

mod gmon;
mod umon;

pub use gmon::{Gmon, GmonConfig};
pub use umon::{Umon, UmonConfig};

use crate::{Line, MissCurve};

/// A hardware miss-curve monitor.
///
/// Implementors observe an access stream and produce an estimated miss curve
/// for it: `curve.misses_at(s)` estimates how many of the observed accesses
/// would have missed in a cache of `s` lines.
pub trait Monitor {
    /// Observes one access. Called for every access; the monitor decides
    /// internally whether the access is sampled into its tag array.
    fn record(&mut self, line: Line);

    /// The estimated miss curve for the accesses observed since the last
    /// [`reset`](Monitor::reset).
    fn miss_curve(&self) -> MissCurve;

    /// Total accesses observed (sampled or not) since the last reset.
    fn accesses(&self) -> u64;

    /// Clears hit/access counters for a new monitoring interval. Tag arrays
    /// stay warm so the next interval's curve is immediately meaningful.
    fn reset(&mut self);

    /// Ages counters by halving them instead of clearing. Keeps an
    /// exponentially-weighted history across reconfiguration intervals,
    /// which stabilizes curves when intervals are short (the scaled-down
    /// simulator's epochs carry ~50x fewer samples than the paper's 50
    /// Mcycle epochs).
    fn age(&mut self);
}

/// Shared tag-array geometry for both monitor types: `sets × ways` of 16-bit
/// hashed tags, with explicit per-way positions so ways map to stack-distance
/// buckets. `None` marks a hole (either never filled, or left by a filtered
/// GMON demotion).
#[derive(Debug, Clone)]
pub(crate) struct TagArray {
    pub sets: usize,
    pub ways: usize,
    /// `tags[set * ways + way]`.
    pub tags: Vec<Option<u16>>,
}

impl TagArray {
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        TagArray {
            sets,
            ways,
            tags: vec![None; sets * ways],
        }
    }

    #[inline]
    pub fn set_of(&self, line: Line) -> usize {
        // Use high bits of the mixed hash so the set index is independent of
        // the 16-bit tag (which uses other bits).
        (crate::hash::mix64(line.0 ^ 0x517c_c1b7_2722_0a95) as usize) & (self.sets - 1)
    }

    /// Finds `tag` in `set`; returns its way.
    #[inline]
    pub fn find(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| self.tags[base + w] == Some(tag))
    }

    /// Moves `tag` to way 0 of `set`, demoting intervening occupants down by
    /// one way. On a hit, `old_way` is the way the tag was found in: its slot
    /// is vacated and the demotion chain ends there. On an insertion
    /// (`old_way == None`) the chain runs to the last way and the final
    /// displaced tag falls out of the array.
    ///
    /// `keep(way, tag)` is consulted for every demotion *into* `way`; when it
    /// returns false the demoted tag is discarded and the chain stops —
    /// this is the GMON limit-register filter (§IV-G). UMONs pass
    /// `|_, _| true`.
    pub fn promote(
        &mut self,
        set: usize,
        tag: u16,
        old_way: Option<usize>,
        mut keep: impl FnMut(usize, u16) -> bool,
    ) {
        let base = set * self.ways;
        if let Some(ow) = old_way {
            debug_assert_eq!(self.tags[base + ow], Some(tag));
            self.tags[base + ow] = None;
        }
        let end = old_way.unwrap_or(self.ways);
        let mut carry = Some(tag);
        let mut w = 0;
        while w < self.ways {
            let Some(t) = carry else { break };
            let displaced = self.tags[base + w];
            self.tags[base + w] = Some(t);
            if w == end {
                break;
            }
            carry = match displaced {
                Some(d) if w + 1 < self.ways && keep(w + 1, d) => Some(d),
                _ => None,
            };
            w += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_insert_shifts_down() {
        let mut ta = TagArray::new(1, 4);
        ta.promote(0, 1, None, |_, _| true);
        ta.promote(0, 2, None, |_, _| true);
        ta.promote(0, 3, None, |_, _| true);
        assert_eq!(ta.tags, vec![Some(3), Some(2), Some(1), None]);
    }

    #[test]
    fn promote_insert_overflows_last_way() {
        let mut ta = TagArray::new(1, 2);
        for t in [1u16, 2, 3] {
            ta.promote(0, t, None, |_, _| true);
        }
        assert_eq!(ta.tags, vec![Some(3), Some(2)]);
    }

    #[test]
    fn promote_hit_rotates_through_old_way() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3, 4] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [4,3,2,1]; hit on 2 at way 2.
        let way = ta.find(0, 2).unwrap();
        assert_eq!(way, 2);
        ta.promote(0, 2, Some(way), |_, _| true);
        assert_eq!(ta.tags, vec![Some(2), Some(4), Some(3), Some(1)]);
    }

    #[test]
    fn promote_filter_drops_and_stops() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [3,2,1,None]. Insert 4, but refuse any move into way >= 2.
        ta.promote(0, 4, None, |w, _| w < 2);
        // 3 -> way1 ok; 2 would move into way 2: dropped, chain stops, 1 stays.
        assert_eq!(ta.tags, vec![Some(4), Some(3), Some(1), None]);
    }

    #[test]
    fn promote_hit_with_filter_leaves_hole_not_duplicate() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3, 4] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [4,3,2,1]; hit on 2 at way 2 but nothing may enter way 1.
        ta.promote(0, 2, Some(2), |w, _| w < 1);
        // 2 -> way 0; 4 dropped at the way-1 filter; old slot stays vacant.
        assert_eq!(ta.tags, vec![Some(2), Some(3), None, Some(1)]);
        // Crucially, tag 2 appears exactly once.
        assert_eq!(ta.tags.iter().filter(|t| **t == Some(2)).count(), 1);
    }

    #[test]
    fn promote_hit_at_way_zero_is_stable() {
        let mut ta = TagArray::new(1, 2);
        ta.promote(0, 7, None, |_, _| true);
        ta.promote(0, 7, Some(0), |_, _| true);
        assert_eq!(ta.tags, vec![Some(7), None]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        TagArray::new(3, 2);
    }
}

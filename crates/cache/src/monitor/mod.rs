//! Miss-curve monitors: conventional UMONs and the paper's geometric GMONs.
//!
//! To allocate capacity, the CDCS runtime needs each virtual cache's miss
//! curve over the *whole* LLC (32 MB) at *fine* granularity (64 KB chunks).
//! A conventional utility monitor (UMON, [Qureshi & Patt, MICRO'06]) models a
//! fixed capacity per way, so meeting both requirements would take 512 ways
//! (§IV-G). The paper's geometric monitors (GMONs) instead decrease the
//! sampling rate geometrically across ways via per-way limit registers, so
//! 64 ways cover 64 KB–32 MB.
//!
//! Both monitors here observe the full access stream ([`Monitor::record`] is
//! called on every LLC access) and sample internally, exactly as the hardware
//! would ("we sample every 64th access", §IV-I).

mod gmon;
mod umon;

pub use gmon::{Gmon, GmonConfig};
pub use umon::{Umon, UmonConfig};

use crate::{Line, MissCurve};

/// A hardware miss-curve monitor.
///
/// Implementors observe an access stream and produce an estimated miss curve
/// for it: `curve.misses_at(s)` estimates how many of the observed accesses
/// would have missed in a cache of `s` lines.
pub trait Monitor {
    /// Observes one access. Called for every access; the monitor decides
    /// internally whether the access is sampled into its tag array.
    fn record(&mut self, line: Line);

    /// The estimated miss curve for the accesses observed since the last
    /// [`reset`](Monitor::reset).
    fn miss_curve(&self) -> MissCurve;

    /// Total accesses observed (sampled or not) since the last reset.
    fn accesses(&self) -> u64;

    /// Clears hit/access counters for a new monitoring interval. Tag arrays
    /// stay warm so the next interval's curve is immediately meaningful.
    fn reset(&mut self);

    /// Ages counters by halving them instead of clearing. Keeps an
    /// exponentially-weighted history across reconfiguration intervals,
    /// which stabilizes curves when intervals are short (the scaled-down
    /// simulator's epochs carry ~50x fewer samples than the paper's 50
    /// Mcycle epochs).
    fn age(&mut self);
}

/// Shared tag-array geometry for both monitor types: `sets × ways` of 16-bit
/// hashed tags, with explicit per-way positions so ways map to stack-distance
/// buckets. [`EMPTY`] marks a hole (either never filled, or left by a
/// filtered GMON demotion).
///
/// # Packed entries
///
/// Each entry is one `u32`:
///
/// ```text
/// bits 24..32   "death way": the deepest way this tag's hash survives into
///               under the limit registers (0 for unfiltered arrays)
/// bits 16..24   zero for occupants; bit 16 set marks a hole ([`EMPTY`])
/// bits  0..16   the 16-bit tag
/// ```
///
/// This array sits on the per-access monitoring path of every
/// partitioned-scheme simulation, and on streaming workloads a single
/// sampled insertion demotes most of a 64-way set. The packing makes both
/// hot operations branch-light single-array scans:
///
/// * [`TagArray::find`] masks the low 24 bits and compares — holes can
///   never match;
/// * the demotion chain of [`TagArray::promote_filtered`] stops at the
///   first way `s` whose occupant cannot be demoted into way `s + 1`,
///   i.e. `death < s + 1` — with the death way pre-packed in the top byte
///   (computed once per insertion by binary-searching the limit
///   registers), that is the single unsigned compare
///   `entry < (s + 1) << 24`, with no limit-register loads in the walk.
///   Holes (`EMPTY` = `1 << 16`) compare below every such threshold and
///   stop the chain exactly like the definitional walk.
#[derive(Debug, Clone)]
pub(crate) struct TagArray {
    pub sets: usize,
    pub ways: usize,
    /// `tags[set * ways + way]`: packed entry, or [`EMPTY`].
    tags: Vec<u32>,
    /// Limit registers (scaled to `0..=65536`) for filtered arrays (GMONs);
    /// `None` for unfiltered arrays (UMONs).
    limits: Option<Vec<u32>>,
    /// Whether the fused scan may use the AVX-512 kernel — probed once at
    /// construction, not per record.
    #[cfg(target_arch = "x86_64")]
    use_avx512: bool,
    /// Demotion-stop thresholds for the packed-entry walk:
    /// `thresh[s] = (s + 1) << 24`, so "the occupant of way `s` dies before
    /// way `s + 1`" is `tags[s] < thresh[s]`. Fixed by geometry; stored so
    /// the walk zips two slices (no per-way index arithmetic or bounds
    /// checks).
    thresh: Vec<u32>,
}

/// Hole marker: bit 16 set, so the masked compare in [`TagArray::find`]
/// never matches it, and it sorts below every death-way threshold in the
/// demotion walk.
const EMPTY: u32 = 1 << 16;

/// Mask selecting the tag (plus the hole bit) out of a packed entry.
const TAG_MASK: u32 = 0x00ff_ffff;

impl TagArray {
    /// An unfiltered tag array (UMON): demotions always survive.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        TagArray {
            sets,
            ways,
            tags: vec![EMPTY; sets * ways],
            limits: None,
            #[cfg(target_arch = "x86_64")]
            use_avx512: std::arch::is_x86_feature_detected!("avx512f"),
            // Saturating: entries past way 254 can never be demoted further
            // (death ways are one byte), so their threshold caps at the top
            // of the u32 range — every occupant "fails" there, which the
            // walk's range never reaches for filtered arrays anyway.
            thresh: (0..ways as u64)
                .map(|s| ((s + 1) << 24).min(u64::from(u32::MAX)) as u32)
                .collect(),
        }
    }

    /// A filtered tag array (GMON): a tag is demoted into way `w` only if
    /// its value is below `limits[w]`.
    ///
    /// # Panics
    ///
    /// Panics on the same geometry errors as [`Self::new`], if
    /// `limits.len() != ways`, or if `ways > 256` (the packed death way is
    /// one byte; every GMON configuration in the paper and this repo has at
    /// most 64 ways).
    pub fn with_limits(sets: usize, ways: usize, limits: Vec<u32>) -> Self {
        assert!(ways <= 256, "filtered arrays support at most 256 ways");
        assert_eq!(limits.len(), ways, "one limit register per way");
        // The death-way binary search relies on these two invariants (both
        // hold for every GMON: limits are γ^w · 2^16 with γ ∈ (0, 1]).
        assert!(
            limits[0] > u32::from(u16::MAX),
            "way 0 must admit every tag"
        );
        assert!(
            limits.windows(2).all(|w| w[0] >= w[1]),
            "limit registers must be non-increasing"
        );
        let mut array = TagArray::new(sets, ways);
        array.limits = Some(limits);
        array
    }

    /// The limit registers of a filtered array.
    ///
    /// # Panics
    ///
    /// Panics if the array is unfiltered.
    pub fn limits(&self) -> &[u32] {
        self.limits.as_deref().expect("unfiltered array")
    }

    #[inline]
    pub fn set_of(&self, line: Line) -> usize {
        // Use high bits of the mixed hash so the set index is independent of
        // the 16-bit tag (which uses other bits).
        (crate::hash::mix64(line.0 ^ 0x517c_c1b7_2722_0a95) as usize) & (self.sets - 1)
    }

    /// Finds `tag` in `set`; returns its way.
    ///
    /// Hybrid scan: the first few (most-recently-promoted) ways are probed
    /// with early exit — hits cluster there under LRU — and the tail is
    /// checked with a branch-free containment reduction that
    /// auto-vectorizes, so the common full-miss (streaming workloads miss on
    /// almost every sampled access) never runs an early-exit scan over the
    /// whole row.
    #[inline]
    pub fn find(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * self.ways;
        let row = &self.tags[base..base + self.ways];
        let t32 = u32::from(tag);
        let head = row.len().min(4);
        for (w, &t) in row[..head].iter().enumerate() {
            if t & TAG_MASK == t32 {
                return Some(w);
            }
        }
        let tail = &row[head..];
        let mut present = false;
        for &t in tail {
            present |= t & TAG_MASK == t32;
        }
        if !present {
            return None;
        }
        tail.iter()
            .position(|&t| t & TAG_MASK == t32)
            .map(|p| p + head)
    }

    /// The occupant of `(set, way)`, if any (test/inspection accessor).
    #[cfg(test)]
    pub fn get(&self, set: usize, way: usize) -> Option<u16> {
        let t = self.tags[set * self.ways + way];
        (t & EMPTY == 0).then_some((t & 0xffff) as u16)
    }

    /// Moves `tag` to way 0 of `set`, demoting intervening occupants down by
    /// one way. On a hit, `old_way` is the way the tag was found in: its slot
    /// is vacated and the demotion chain ends there. On an insertion
    /// (`old_way == None`) the chain runs to the last way and the final
    /// displaced tag falls out of the array.
    ///
    /// `keep(way, tag)` is consulted for every demotion *into* `way`; when it
    /// returns false the demoted tag is discarded and the chain stops.
    ///
    /// This closure form is the *definitional* promotion used by the
    /// equivalence tests; the monitors call the specialized
    /// [`Self::promote_filtered`] / [`Self::promote_unfiltered`] fast paths.
    /// (Entries inserted here carry no death way, so it must not be mixed
    /// with `promote_filtered` on the same array — tests only.)
    ///
    /// The chain's effect is "shift ways `0..stop` down by one, drop
    /// whatever the chain ended on, put `tag` at way 0", and the stop
    /// position depends only on the *pre-promotion* row contents: a
    /// read-only walk finds `stop`, then one overlapping copy performs the
    /// whole demotion.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn promote(
        &mut self,
        set: usize,
        tag: u16,
        old_way: Option<usize>,
        mut keep: impl FnMut(usize, u16) -> bool,
    ) {
        let base = set * self.ways;
        let row = &mut self.tags[base..base + self.ways];
        if let Some(ow) = old_way {
            debug_assert_eq!(row[ow] & TAG_MASK, u32::from(tag));
            row[ow] = EMPTY;
        }
        let end = old_way.unwrap_or(self.ways);
        // The chain stops at the hit's vacated way, at a hole, at the last
        // way, or at the first occupant the filter refuses to demote —
        // whichever comes first (same test order as the one-at-a-time
        // definition: vacated way, then hole, then array end, then filter).
        let mut stop = 0;
        while stop != end
            && row[stop] & EMPTY == 0
            && stop + 1 < self.ways
            && keep(stop + 1, (row[stop] & 0xffff) as u16)
        {
            stop += 1;
        }
        row.copy_within(0..stop, 1);
        row[0] = u32::from(tag);
    }

    /// [`Self::promote`] specialized to this array's limit registers
    /// (`keep(w, t) ⇔ t < limits[w]`) — the GMON hot path.
    ///
    /// The walk tests `entry < (s + 1) << 24` (see the type docs) in
    /// branch-free 8-way chunks; the inserted tag's death way comes from the
    /// hit entry itself or, on an insertion, one binary search of the limit
    /// registers. Produces exactly the state
    /// `promote(set, tag, old_way, |w, t| u32::from(t) < limits[w])` would
    /// (asserted by the definitional-equivalence tests below).
    ///
    /// # Panics
    ///
    /// Panics if the array is unfiltered.
    pub fn promote_filtered(&mut self, set: usize, tag: u16, old_way: Option<usize>) {
        let limits = self.limits.as_deref().expect("unfiltered array");
        let base = set * self.ways;
        let row = &mut self.tags[base..base + self.ways];
        let t32 = u32::from(tag);
        let death: u32 = match old_way {
            // A hit re-inserts the same tag: its death way is already in the
            // entry (computed against the same limit registers).
            Some(ow) => {
                debug_assert_eq!(row[ow] & TAG_MASK, t32);
                row[ow] >> 24
            }
            // Insertion: deepest way `w` with `tag < limits[w]`. The
            // predicate `limits[i] <= tag` is monotone (limits are
            // non-increasing), and `limits[0] == 65536` exceeds every tag,
            // so the partition point is at least 1.
            None => {
                let mut lo = 0usize;
                let mut hi = self.ways;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if limits[mid] <= t32 {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                (lo - 1) as u32
            }
        };
        if let Some(ow) = old_way {
            row[ow] = EMPTY;
        }
        // Furthest the chain can reach: the vacated way on a hit, else the
        // last way.
        let n = old_way.unwrap_or(self.ways - 1).min(self.ways - 1);
        // Stop at the first way whose occupant dies before way `s + 1`:
        // `death(entry) <= s`, i.e. `entry < thresh[s]`. Holes compare below
        // every threshold. Zipped 8-way chunks keep the scan branch-free
        // and bounds-check-free (it auto-vectorizes).
        let mut s = 0;
        for (chunk, tchunk) in row[..n]
            .chunks_exact(8)
            .zip(self.thresh[..n].chunks_exact(8))
        {
            let mut fail = false;
            for (&t, &th) in chunk.iter().zip(tchunk) {
                fail |= t < th;
            }
            if fail {
                break;
            }
            s += 8;
        }
        let mut stop = n;
        for (w, (&t, &th)) in row[s..n].iter().zip(&self.thresh[s..n]).enumerate() {
            if t < th {
                stop = s + w;
                break;
            }
        }
        row.copy_within(0..stop, 1);
        row[0] = (death << 24) | t32;
    }

    /// Fused lookup + filtered promotion — the GMON per-sample path.
    /// Equivalent to `find` followed by `promote_filtered`, in one walk;
    /// returns the way the tag was found in (for hit accounting), `None` on
    /// an insertion.
    ///
    /// Shape: a short early-exit probe of the most-recently-promoted ways
    /// (where LRU hits cluster — hot workloads stay on this cheap path),
    /// then a single branch-free pass over the whole row that accumulates
    /// two bitmaps — "tag matches here" and "occupant dies here" — from
    /// which both the hit way and the demotion-chain stop position fall out
    /// as trailing-zero counts.
    ///
    /// # Panics
    ///
    /// Panics if the array is unfiltered.
    pub fn touch_filtered(&mut self, set: usize, tag: u16) -> Option<usize> {
        let limits = self.limits.as_deref().expect("unfiltered array");
        let ways = self.ways;
        if ways > 64 {
            // Bitmaps are u64; larger (hypothetical) filtered arrays take
            // the two-pass path.
            let way = self.find(set, tag);
            self.promote_filtered(set, tag, way);
            return way;
        }
        let base = set * ways;
        let row = &mut self.tags[base..base + ways];
        let t32 = u32::from(tag);

        // Early-exit probe of the head ways.
        let head = ways.min(4);
        let mut way = None;
        for (w, &t) in row[..head].iter().enumerate() {
            if t & TAG_MASK == t32 {
                way = Some(w);
                break;
            }
        }
        if let Some(ow) = way {
            // Hit near the top: the chain is at most `ow` (≤ 3) long.
            let death = row[ow] >> 24;
            row[ow] = EMPTY;
            let mut stop = ow;
            for (s, (&t, &th)) in row[..ow].iter().zip(&self.thresh[..ow]).enumerate() {
                if t < th {
                    stop = s;
                    break;
                }
            }
            row.copy_within(0..stop, 1);
            row[0] = (death << 24) | t32;
            return Some(ow);
        }

        // One branch-free pass: bit `w` of `eq_bits` ⇔ the tag sits at way
        // `w` (at most one bit — insertions only happen when the tag is
        // absent); bit `w` of `fail_bits` ⇔ way `w`'s occupant cannot be
        // demoted into way `w + 1` (`entry < thresh[w]`; holes always fail).
        #[cfg(target_arch = "x86_64")]
        let (eq_bits, fail_bits) = if self.use_avx512 {
            // SAFETY: AVX-512F support was verified at construction.
            unsafe { scan_row_bits_avx512(row, &self.thresh[..ways], t32) }
        } else {
            scan_row_bits_sse2(row, &self.thresh[..ways], t32)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let (eq_bits, fail_bits) = scan_row_bits(row, &self.thresh[..ways], t32);

        let way = (eq_bits != 0).then(|| eq_bits.trailing_zeros() as usize);
        let death: u32 = match way {
            // A hit re-inserts the same tag: its death way is already in the
            // entry (computed against the same limit registers).
            Some(ow) => {
                let d = row[ow] >> 24;
                row[ow] = EMPTY;
                d
            }
            // Insertion: deepest way `w` with `tag < limits[w]`. Limits are
            // non-increasing, so the ways admitting the tag are a prefix and
            // counting them (branch-free) gives the partition point; way 0
            // always admits (limit 65536), so the count is at least 1.
            None => {
                let mut admits = 0u32;
                for &l in limits {
                    admits += u32::from(t32 < l);
                }
                admits - 1
            }
        };
        let n = way.unwrap_or(ways - 1).min(ways - 1);
        let stop = (fail_bits.trailing_zeros() as usize).min(n);
        row.copy_within(0..stop, 1);
        row[0] = (death << 24) | t32;
        way
    }

    /// [`Self::promote`] specialized to no filter (`keep` always true) — the
    /// UMON hot path: the chain stops only at a hole, the vacated way, or
    /// the array end.
    pub fn promote_unfiltered(&mut self, set: usize, tag: u16, old_way: Option<usize>) {
        let base = set * self.ways;
        let row = &mut self.tags[base..base + self.ways];
        if let Some(ow) = old_way {
            debug_assert_eq!(row[ow] & TAG_MASK, u32::from(tag));
            row[ow] = EMPTY;
        }
        let n = old_way.unwrap_or(self.ways - 1).min(self.ways - 1);
        let stop = row[..n].iter().position(|&t| t == EMPTY).unwrap_or(n);
        row.copy_within(0..stop, 1);
        row[0] = u32::from(tag);
    }
}

/// Builds the match/fail bitmaps for [`TagArray::touch_filtered`]'s fused
/// pass: bit `w` of the first result ⇔ `row[w] & TAG_MASK == t32`; bit `w`
/// of the second ⇔ `row[w] < thresh[w]` (unsigned).
///
/// `row.len() == thresh.len() <= 64`.
///
/// On x86-64 the caller picks between an AVX-512 kernel (16 ways per
/// instruction, compare results delivered directly as bitmasks — the whole
/// 64-way row is four masked compares) and the always-available SSE2
/// baseline, using the feature probe cached in the `TagArray`; other
/// architectures get a portable scalar reduction.
///
/// AVX-512 kernel: masked 16-lane compares produce
/// the bitmaps directly in mask registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scan_row_bits_avx512(row: &[u32], thresh: &[u32], t32: u32) -> (u64, u64) {
    use std::arch::x86_64::{
        _mm512_and_si512, _mm512_mask_cmpeq_epi32_mask, _mm512_mask_cmplt_epu32_mask,
        _mm512_maskz_loadu_epi32, _mm512_set1_epi32,
    };
    debug_assert_eq!(row.len(), thresh.len());
    debug_assert!(row.len() <= 64);
    let mask = _mm512_set1_epi32(TAG_MASK as i32);
    let needle = _mm512_set1_epi32(t32 as i32);
    let mut eq_bits = 0u64;
    let mut fail_bits = 0u64;
    let mut w = 0;
    while w < row.len() {
        let lanes = (row.len() - w).min(16);
        let live: u16 = if lanes == 16 { !0 } else { (1u16 << lanes) - 1 };
        // SAFETY: masked loads read only the `live` in-bounds lanes.
        let t = unsafe { _mm512_maskz_loadu_epi32(live, row.as_ptr().add(w) as *const i32) };
        let th = unsafe { _mm512_maskz_loadu_epi32(live, thresh.as_ptr().add(w) as *const i32) };
        let eq = _mm512_mask_cmpeq_epi32_mask(live, _mm512_and_si512(t, mask), needle);
        let lt = _mm512_mask_cmplt_epu32_mask(live, t, th);
        eq_bits |= u64::from(eq) << w;
        fail_bits |= u64::from(lt) << w;
        w += lanes;
    }
    (eq_bits, fail_bits)
}

/// SSE2 baseline kernel (always available on x86-64).
#[cfg(target_arch = "x86_64")]
#[inline]
fn scan_row_bits_sse2(row: &[u32], thresh: &[u32], t32: u32) -> (u64, u64) {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_cmpgt_epi32,
        _mm_loadu_si128, _mm_movemask_ps, _mm_set1_epi32, _mm_xor_si128,
    };
    debug_assert_eq!(row.len(), thresh.len());
    let mut eq_bits = 0u64;
    let mut fail_bits = 0u64;
    let chunks = row.len() / 4;
    // SAFETY: unaligned loads of in-bounds 16-byte chunks; SSE2 is
    // statically available under this cfg.
    unsafe {
        let mask = _mm_set1_epi32(TAG_MASK as i32);
        let needle = _mm_set1_epi32(t32 as i32);
        // Bias flips the sign bit so a signed > compare implements the
        // unsigned < we need.
        let bias = _mm_set1_epi32(i32::MIN);
        for c in 0..chunks {
            let ptr = row.as_ptr().add(c * 4) as *const __m128i;
            let t = _mm_loadu_si128(ptr);
            let th = _mm_loadu_si128(thresh.as_ptr().add(c * 4) as *const __m128i);
            let eq = _mm_cmpeq_epi32(_mm_and_si128(t, mask), needle);
            let lt = _mm_cmpgt_epi32(_mm_xor_si128(th, bias), _mm_xor_si128(t, bias));
            eq_bits |= (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u64) << (c * 4);
            fail_bits |= (_mm_movemask_ps(_mm_castsi128_ps(lt)) as u64) << (c * 4);
        }
    }
    // Scalar tail for way counts that are not multiples of four.
    for (w, (&t, &th)) in row.iter().zip(thresh).enumerate().skip(chunks * 4) {
        eq_bits |= u64::from(t & TAG_MASK == t32) << w;
        fail_bits |= u64::from(t < th) << w;
    }
    (eq_bits, fail_bits)
}

/// Portable fallback: branch-free scalar bitmap accumulation.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn scan_row_bits(row: &[u32], thresh: &[u32], t32: u32) -> (u64, u64) {
    debug_assert_eq!(row.len(), thresh.len());
    let mut eq_bits = 0u64;
    let mut fail_bits = 0u64;
    for (w, (&t, &th)) in row.iter().zip(thresh).enumerate() {
        eq_bits |= u64::from(t & TAG_MASK == t32) << w;
        fail_bits |= u64::from(t < th) << w;
    }
    (eq_bits, fail_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ta: &TagArray, set: usize) -> Vec<Option<u16>> {
        (0..ta.ways).map(|w| ta.get(set, w)).collect()
    }

    #[test]
    fn promote_insert_shifts_down() {
        let mut ta = TagArray::new(1, 4);
        ta.promote(0, 1, None, |_, _| true);
        ta.promote(0, 2, None, |_, _| true);
        ta.promote(0, 3, None, |_, _| true);
        assert_eq!(row(&ta, 0), vec![Some(3), Some(2), Some(1), None]);
    }

    #[test]
    fn promote_insert_overflows_last_way() {
        let mut ta = TagArray::new(1, 2);
        for t in [1u16, 2, 3] {
            ta.promote(0, t, None, |_, _| true);
        }
        assert_eq!(row(&ta, 0), vec![Some(3), Some(2)]);
    }

    #[test]
    fn promote_hit_rotates_through_old_way() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3, 4] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [4,3,2,1]; hit on 2 at way 2.
        let way = ta.find(0, 2).unwrap();
        assert_eq!(way, 2);
        ta.promote(0, 2, Some(way), |_, _| true);
        assert_eq!(row(&ta, 0), vec![Some(2), Some(4), Some(3), Some(1)]);
    }

    #[test]
    fn promote_filter_drops_and_stops() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [3,2,1,None]. Insert 4, but refuse any move into way >= 2.
        ta.promote(0, 4, None, |w, _| w < 2);
        // 3 -> way1 ok; 2 would move into way 2: dropped, chain stops, 1 stays.
        assert_eq!(row(&ta, 0), vec![Some(4), Some(3), Some(1), None]);
    }

    #[test]
    fn promote_hit_with_filter_leaves_hole_not_duplicate() {
        let mut ta = TagArray::new(1, 4);
        for t in [1u16, 2, 3, 4] {
            ta.promote(0, t, None, |_, _| true);
        }
        // tags: [4,3,2,1]; hit on 2 at way 2 but nothing may enter way 1.
        ta.promote(0, 2, Some(2), |w, _| w < 1);
        // 2 -> way 0; 4 dropped at the way-1 filter; old slot stays vacant.
        assert_eq!(row(&ta, 0), vec![Some(2), Some(3), None, Some(1)]);
        // Crucially, tag 2 appears exactly once.
        let twos = row(&ta, 0).iter().filter(|t| **t == Some(2)).count();
        assert_eq!(twos, 1);
    }

    #[test]
    fn promote_hit_at_way_zero_is_stable() {
        let mut ta = TagArray::new(1, 2);
        ta.promote(0, 7, None, |_, _| true);
        ta.promote(0, 7, Some(0), |_, _| true);
        assert_eq!(row(&ta, 0), vec![Some(7), None]);
    }

    /// The memmove-based promote must agree with the one-at-a-time
    /// definitional chain for arbitrary interleavings of hits, insertions,
    /// holes and filters.
    #[test]
    fn promote_matches_definitional_chain() {
        fn reference_promote(
            tags: &mut [Option<u16>],
            tag: u16,
            old_way: Option<usize>,
            keep: impl Fn(usize, u16) -> bool,
        ) {
            let ways = tags.len();
            if let Some(ow) = old_way {
                tags[ow] = None;
            }
            let end = old_way.unwrap_or(ways);
            let mut carry = Some(tag);
            let mut w = 0;
            while w < ways {
                let Some(t) = carry else { break };
                let displaced = tags[w];
                tags[w] = Some(t);
                if w == end {
                    break;
                }
                carry = match displaced {
                    Some(d) if w + 1 < ways && keep(w + 1, d) => Some(d),
                    _ => None,
                };
                w += 1;
            }
        }

        let ways = 8;
        let mut ta = TagArray::new(1, ways);
        let mut reference: Vec<Option<u16>> = vec![None; ways];
        // Deterministic pseudo-random stream of operations.
        let mut state = 0x1234_5678_u64;
        for step in 0..2000 {
            state = crate::hash::mix64(state);
            let tag = (state % 23) as u16; // small space: frequent hits
            let limit = (step % 7) + 1; // filter refuses ways >= limit + 1
            let keep = |w: usize, _t: u16| w <= limit;
            let old_way = ta.find(0, tag);
            assert_eq!(
                old_way,
                reference.iter().position(|&t| t == Some(tag)),
                "find diverged at step {step}"
            );
            ta.promote(0, tag, old_way, keep);
            reference_promote(&mut reference, tag, old_way, keep);
            assert_eq!(row(&ta, 0), reference, "promote diverged at step {step}");
        }
    }

    /// `promote_filtered` (the packed-death GMON chain) and
    /// `promote_unfiltered` (the UMON chain) must match the generic closure
    /// form exactly — including holes left by filtered demotions, hit
    /// rotations and full-array overflow — across several way counts so the
    /// 8-way chunked scan's remainder handling is covered. Two tag
    /// distributions: uniform u16 (tags die shallow vs. the steep test
    /// limits) and small tags (survive deep, long chains).
    #[test]
    fn specialized_promotes_match_generic() {
        for ways in [1usize, 4, 8, 13, 64] {
            for tag_space in [u64::from(u16::MAX) + 1, 2048, 97] {
                let mut limits: Vec<u32> = (0..ways)
                    .map(|w| (65536.0 * 0.9f64.powi(w as i32)) as u32)
                    .collect();
                limits[0] = 65536;
                let mut fast = TagArray::with_limits(1, ways, limits.clone());
                let mut fused = TagArray::with_limits(1, ways, limits.clone());
                let mut slow = TagArray::new(1, ways);
                let mut fast_u = TagArray::new(1, ways);
                let mut slow_u = TagArray::new(1, ways);
                let mut state = 0xdead_beef_u64 ^ tag_space;
                for step in 0..3000 {
                    state = crate::hash::mix64(state);
                    let tag = ((state >> 16) % tag_space) as u16;
                    let old = fast.find(0, tag);
                    assert_eq!(old, slow.find(0, tag), "ways {ways} step {step}");
                    fast.promote_filtered(0, tag, old);
                    slow.promote(0, tag, old, |w, t| u32::from(t) < limits[w]);
                    assert_eq!(
                        row(&fast, 0),
                        row(&slow, 0),
                        "filtered diverged: ways {ways} tags {tag_space} step {step}"
                    );
                    // The fused lookup+promotion must track the same state.
                    let old_f = fused.touch_filtered(0, tag);
                    assert_eq!(
                        old_f, old,
                        "fused hit diverged: ways {ways} tags {tag_space} step {step}"
                    );
                    assert_eq!(
                        row(&fused, 0),
                        row(&slow, 0),
                        "fused diverged: ways {ways} tags {tag_space} step {step}"
                    );
                    let old_u = fast_u.find(0, tag);
                    fast_u.promote_unfiltered(0, tag, old_u);
                    slow_u.promote(0, tag, old_u, |_, _| true);
                    assert_eq!(
                        row(&fast_u, 0),
                        row(&slow_u, 0),
                        "unfiltered diverged: ways {ways} tags {tag_space} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        TagArray::new(3, 2);
    }
}

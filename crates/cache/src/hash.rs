//! Deterministic address hashing.
//!
//! The hardware CDCS describes hashes line addresses in two places: the VTB
//! hashes an address to pick a descriptor bucket (§III, "the address is
//! hashed, and the hash value selects the bucket"), and the monitors store
//! 16-bit hashed addresses and use them both for matching and for the
//! per-way sampling filter (§IV-G). We use a splitmix64 finalizer, which is
//! cheap, high-quality, and fully deterministic — important for reproducible
//! simulation runs.

/// A 64-bit finalizing hash (splitmix64's mixing function).
///
/// ```
/// use cdcs_cache::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hash of a line address into `0..n` (used by the VTB to pick one of the
/// `n = 64` descriptor buckets).
///
/// # Panics
///
/// Panics if `n` is zero.
#[inline]
pub fn bucket(addr: u64, n: usize) -> usize {
    assert!(n > 0, "bucket count must be non-zero");
    // Multiply-shift on the mixed value avoids modulo bias for small n.
    ((mix64(addr) as u128 * n as u128) >> 64) as usize
}

/// The 16-bit hashed tag the monitors store instead of full addresses
/// (§IV-H: "we do not store full addresses, since rare false positives are
/// fine for monitoring purposes").
#[inline]
pub fn tag16(addr: u64) -> u16 {
    (mix64(addr) >> 16) as u16
}

/// A second, independent 16-bit hash used by the GMON limit registers to
/// decide whether a tag survives demotion to the next way. Independence from
/// [`tag16`] avoids correlating the sampling filter with tag aliasing.
#[inline]
pub fn filter16(addr: u64) -> u16 {
    (mix64(addr ^ 0xa5a5_5a5a_1234_8765) >> 24) as u16
}

/// Deterministic sampling decision at rate `num/den`: true for the fraction
/// `num/den` of addresses (by hash). Used for monitor access sampling
/// (the paper samples every 64th access for full-LLC GMON coverage).
///
/// # Panics
///
/// Panics if `den` is zero or `num > den`.
#[inline]
pub fn sampled(addr: u64, num: u32, den: u32) -> bool {
    assert!(den > 0 && num <= den, "invalid sampling rate {num}/{den}");
    let h = mix64(addr ^ SAMPLE_SALT);
    ((h as u128 * den as u128) >> 64) < num as u128
}

/// Salt decorrelating the sampling hash from the tag/bucket hashes.
const SAMPLE_SALT: u64 = 0x5bd1_e995_9e37_79b9;

/// Precomputed acceptance limit for the monitors' `1/den` address sampling:
/// `sampled_by_limit(addr, sample_limit(den))` equals `sampled(addr, 1, den)`
/// for every address, but the per-call work drops to one hash and one
/// compare (no asserts, no 128-bit multiply). Monitors compute the limit
/// once at construction — this is the sampling-aware fast path that lets
/// non-sampled accesses exit `record` immediately.
///
/// Equivalence: `sampled(a, 1, den)` accepts iff `(h · den) >> 64 == 0`,
/// i.e. `h · den < 2^64`, i.e. `h <= (2^64 - 1) / den = u64::MAX / den`.
///
/// # Panics
///
/// Panics if `den` is zero.
#[inline]
pub fn sample_limit(den: u32) -> u64 {
    assert!(den > 0, "invalid sampling period {den}");
    u64::MAX / u64::from(den)
}

/// Sampling decision against a precomputed [`sample_limit`].
#[inline]
pub fn sampled_by_limit(addr: u64, limit: u64) -> bool {
    mix64(addr ^ SAMPLE_SALT) <= limit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        let a = mix64(0);
        let b = mix64(1);
        assert_ne!(a, b);
        assert_eq!(mix64(0), a);
        // Count differing bits; a good mixer flips ~half.
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "only {diff} bits differ");
    }

    #[test]
    fn bucket_is_in_range_and_roughly_uniform() {
        let n = 64;
        let mut counts = vec![0u32; n];
        for addr in 0..64_000u64 {
            let b = bucket(addr, n);
            assert!(b < n);
            counts[b] += 1;
        }
        let expected = 1000.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn bucket_zero_n_panics() {
        bucket(1, 0);
    }

    #[test]
    fn sampled_rate_is_close_to_nominal() {
        let hits = (0..100_000u64).filter(|&a| sampled(a, 1, 64)).count();
        let expected = 100_000.0 / 64.0;
        assert!(
            (hits as f64 - expected).abs() < expected * 0.2,
            "got {hits}, expected ~{expected}"
        );
    }

    #[test]
    fn sampled_full_and_empty_rates() {
        assert!(sampled(123, 1, 1));
        assert!(!sampled(123, 0, 5));
    }

    #[test]
    #[should_panic(expected = "invalid sampling rate")]
    fn sampled_invalid_rate_panics() {
        sampled(1, 3, 2);
    }

    #[test]
    fn sampled_by_limit_equals_sampled() {
        for den in [1u32, 2, 3, 4, 7, 64, 1000, u32::MAX] {
            let limit = sample_limit(den);
            for a in (0..20_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
                assert_eq!(
                    sampled_by_limit(a, limit),
                    sampled(a, 1, den),
                    "addr {a} den {den}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid sampling period")]
    fn sample_limit_zero_panics() {
        sample_limit(0);
    }

    #[test]
    fn tag_and_filter_hashes_are_independent() {
        // The two 16-bit hashes should not be equal for most addresses.
        let same = (0..10_000u64).filter(|&a| tag16(a) == filter16(a)).count();
        assert!(same < 50, "{same} collisions out of 10000");
    }
}

//! Miss curves: misses as a function of allocated capacity.
//!
//! Miss curves are the currency of every capacity decision in the paper:
//! GMONs produce them (§IV-G), the latency-aware allocator turns them into
//! total-latency curves (§IV-C), and Peekahead partitions capacity over their
//! convex hulls. Curves here are sparse piecewise-linear functions over
//! capacity in *lines*, which matches the sparse output of a GMON ("high
//! resolution at small sizes, reduced resolution at large sizes").

use serde::{Deserialize, Serialize};

/// A sparse, piecewise-linear, non-increasing curve of misses vs. allocated
/// capacity (in lines).
///
/// Invariants (enforced on construction):
/// * points are sorted by strictly increasing capacity;
/// * the first point is at capacity 0;
/// * miss counts are non-increasing in capacity (monotone repair is applied —
///   real monitors can produce small non-monotonicities due to sampling).
///
/// # Example
///
/// ```
/// use cdcs_cache::MissCurve;
/// let curve = MissCurve::new(vec![(0.0, 100.0), (1024.0, 20.0), (4096.0, 5.0)]);
/// assert_eq!(curve.misses_at(0.0), 100.0);
/// assert_eq!(curve.misses_at(512.0), 60.0);   // interpolated
/// assert_eq!(curve.misses_at(1_000_000.0), 5.0); // flat beyond last point
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurve {
    /// `(capacity_lines, misses)`, sorted by capacity.
    points: Vec<(f64, f64)>,
}

impl MissCurve {
    /// Builds a curve from `(capacity, misses)` samples.
    ///
    /// Points are sorted; duplicate capacities keep the *minimum* miss count;
    /// monotone repair forces misses to be non-increasing; a point at
    /// capacity 0 is synthesized (flat) if missing. Negative misses are
    /// clamped to zero.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is negative or non-finite, or any miss count is
    /// non-finite.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        let mut curve = MissCurve { points: Vec::new() };
        curve.rebuild(&mut points);
        curve
    }

    /// Re-initializes this curve from raw `(capacity, misses)` samples,
    /// applying exactly [`Self::new`]'s normalization (sort, duplicate
    /// merge, zero-point synthesis, monotone repair) while reusing this
    /// curve's point buffer — the pooled construction path the per-epoch
    /// planner uses so rebuilding total-latency curves allocates nothing
    /// once warm. `points` is consumed as working storage (sorted in
    /// place).
    ///
    /// # Panics
    ///
    /// As [`Self::new`].
    // lint: zero-alloc
    pub fn rebuild(&mut self, points: &mut [(f64, f64)]) {
        for &(c, m) in points.iter() {
            assert!(c.is_finite() && c >= 0.0, "invalid capacity {c}");
            assert!(m.is_finite(), "invalid miss count {m}");
        }
        // An unstable sort cannot change the result: capacities within the
        // 1e-9 merge tolerance collapse into one point whose miss count is
        // the (order-independent) minimum, and the surviving capacity of an
        // exactly-equal run is the shared value itself.
        points.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let merged = &mut self.points;
        merged.clear();
        merged.reserve(points.len() + 1);
        for &(c, m) in points.iter() {
            let m = m.max(0.0);
            match merged.last_mut() {
                Some(last) if (last.0 - c).abs() < 1e-9 => last.1 = last.1.min(m),
                _ => merged.push((c, m)),
            }
        }
        if merged.first().is_none_or(|p| p.0 > 0.0) {
            let first_m = merged.first().map_or(0.0, |p| p.1);
            merged.insert(0, (0.0, first_m));
        }
        // Monotone repair: running minimum.
        let mut running = f64::INFINITY;
        for p in merged {
            running = running.min(p.1);
            p.1 = running;
        }
    }
    // lint: end-zero-alloc

    /// A curve that is identically zero (an app that never misses).
    pub fn zero() -> Self {
        MissCurve {
            points: vec![(0.0, 0.0)],
        }
    }

    /// An empty placeholder curve for pooled buffers ([`Self::rebuild`] /
    /// [`Self::convex_hull_into`] targets). **Not a valid curve** until
    /// rebuilt: every query method panics on it.
    pub fn placeholder() -> Self {
        MissCurve { points: Vec::new() }
    }

    /// A flat curve: `misses` at every capacity (a streaming app that gets no
    /// benefit from cache, like the paper's `milc`).
    pub fn flat(misses: f64) -> Self {
        MissCurve::new(vec![(0.0, misses)])
    }

    /// The sample points, sorted by capacity.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Misses at capacity 0 — for a miss curve gathered over an interval this
    /// equals the total accesses in the interval (every access misses with no
    /// cache).
    pub fn at_zero(&self) -> f64 {
        self.points[0].1
    }

    /// The largest sampled capacity; the curve is flat beyond it.
    pub fn max_capacity(&self) -> f64 {
        self.points.last().unwrap().0
    }

    /// A monotone evaluation cursor over this curve.
    ///
    /// [`CurveCursor::misses_at`] returns bit-identical values to
    /// [`Self::misses_at`] but remembers the segment of the previous query,
    /// so a run of non-decreasing capacities (peekahead's hull walks, the
    /// latency-aware allocation grid) costs amortized O(1) per query instead
    /// of a binary search each.
    pub fn cursor(&self) -> CurveCursor<'_> {
        CurveCursor {
            points: &self.points,
            idx: 0,
        }
    }

    /// Blocked evaluation: misses at each capacity of an ascending slice,
    /// appended to `out` (which is cleared first). One cursor pass — O(n + m)
    /// for m queries over an n-point curve. Capacities need not be strictly
    /// sorted; out-of-order entries are still answered correctly, just
    /// without the speedup.
    pub fn misses_at_sorted_into(&self, capacities: &[f64], out: &mut Vec<f64>) {
        let mut cursor = self.cursor();
        out.clear();
        out.extend(capacities.iter().map(|&c| cursor.misses_at(c)));
    }

    /// Misses at an arbitrary capacity, by linear interpolation between
    /// samples and flat extrapolation beyond the last sample.
    pub fn misses_at(&self, capacity: f64) -> f64 {
        let pts = &self.points;
        if capacity <= 0.0 {
            return pts[0].1;
        }
        match pts.binary_search_by(|p| p.0.partial_cmp(&capacity).unwrap()) {
            Ok(i) => pts[i].1,
            Err(i) => {
                if i >= pts.len() {
                    pts[pts.len() - 1].1
                } else {
                    let (c0, m0) = pts[i - 1];
                    let (c1, m1) = pts[i];
                    m0 + (m1 - m0) * (capacity - c0) / (c1 - c0)
                }
            }
        }
    }

    /// Scales miss counts by `factor` (e.g. to convert a sampled curve to
    /// full-stream estimates, or per-interval counts to rates).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scale(&self, factor: f64) -> MissCurve {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale {factor}"
        );
        MissCurve {
            points: self.points.iter().map(|&(c, m)| (c, m * factor)).collect(),
        }
    }

    /// Pointwise sum of two curves, sampled on the union of their capacity
    /// grids. Models the combined misses of two access streams sharing one
    /// virtual cache only approximately (true sharing interleaves stacks),
    /// but is the standard composition and exact when streams do not
    /// interleave.
    pub fn add(&self, other: &MissCurve) -> MissCurve {
        let mut grid: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.0)
            .chain(other.points.iter().map(|p| p.0))
            .collect();
        grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
        grid.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        // The union grid is ascending: evaluate both curves with monotone
        // cursors (one pass each) instead of a binary search per point.
        let mut ca = self.cursor();
        let mut cb = other.cursor();
        MissCurve::new(
            grid.iter()
                .map(|&c| (c, ca.misses_at(c) + cb.misses_at(c)))
                .collect(),
        )
    }

    /// The lower convex hull of the curve.
    ///
    /// Peekahead (and the latency-aware allocator built on it) operates on
    /// convex curves: allocating along the hull is optimal for concave-benefit
    /// resources, and convexity makes greedy marginal-utility allocation
    /// exact. Returns a curve whose points are the hull vertices.
    pub fn convex_hull(&self) -> MissCurve {
        let mut out = MissCurve { points: Vec::new() };
        self.convex_hull_into(&mut out);
        out
    }

    /// [`Self::convex_hull`] into a caller-pooled curve (identical hull,
    /// zero allocations once `out`'s buffer is warm).
    // lint: zero-alloc
    pub fn convex_hull_into(&self, out: &mut MissCurve) {
        let hull = &mut out.points;
        hull.clear();
        hull.reserve(self.points.len());
        if self.points.len() <= 2 {
            hull.extend_from_slice(&self.points);
            return;
        }
        for &p in &self.points {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Remove b if it lies on or above segment a->p (keeps the
                // hull lower-convex).
                let cross = (b.0 - a.0) * (p.1 - a.1) - (p.0 - a.0) * (b.1 - a.1);
                if cross <= 1e-12 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
    }
    // lint: end-zero-alloc

    /// Builds a curve by evaluating `f` on a capacity grid. Used to build
    /// total-latency curves (miss latency + on-chip latency) in `cdcs-core`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn from_fn(grid: &[f64], mut f: impl FnMut(f64) -> f64) -> MissCurve {
        assert!(!grid.is_empty(), "capacity grid must be non-empty");
        MissCurve::new(grid.iter().map(|&c| (c, f(c))).collect())
    }

    /// Hit count gained by growing the allocation from `from` to `to` lines.
    pub fn hits_gained(&self, from: f64, to: f64) -> f64 {
        self.misses_at(from) - self.misses_at(to)
    }
}

/// A stateful evaluation cursor over a [`MissCurve`] (see
/// [`MissCurve::cursor`]).
///
/// The cursor tracks the lower-bound segment index of the last query and
/// walks it forward/backward instead of binary-searching, which makes runs
/// of near-sorted queries (the common case in capacity allocation) amortized
/// O(1). Values are bit-identical to [`MissCurve::misses_at`]: the same
/// segment is selected and the same interpolation expression evaluated.
#[derive(Debug, Clone)]
pub struct CurveCursor<'a> {
    points: &'a [(f64, f64)],
    /// Lower-bound index of the last query: the smallest `i` with
    /// `points[i].0 >= capacity`.
    idx: usize,
}

impl CurveCursor<'_> {
    /// Misses at `capacity`; same value as [`MissCurve::misses_at`].
    #[inline]
    pub fn misses_at(&mut self, capacity: f64) -> f64 {
        let pts = self.points;
        if capacity <= 0.0 {
            self.idx = 0;
            return pts[0].1;
        }
        // Re-establish the lower-bound invariant from wherever the previous
        // query left the index (forward for ascending runs, backward for the
        // occasional regression).
        while self.idx < pts.len() && pts[self.idx].0 < capacity {
            self.idx += 1;
        }
        while self.idx > 0 && pts[self.idx - 1].0 >= capacity {
            self.idx -= 1;
        }
        if self.idx == pts.len() {
            return pts[pts.len() - 1].1;
        }
        let (c1, m1) = pts[self.idx];
        if c1 == capacity {
            return m1;
        }
        // capacity > 0 and points[0].0 == 0.0, so idx >= 1 here.
        let (c0, m0) = pts[self.idx - 1];
        m0 + (m1 - m0) * (capacity - c0) / (c1 - c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_sorts_and_repairs() {
        let c = MissCurve::new(vec![(100.0, 50.0), (0.0, 40.0), (200.0, 60.0)]);
        // Monotone repair: 40 at 0 forces <= 40 later.
        assert_eq!(c.misses_at(0.0), 40.0);
        assert_eq!(c.misses_at(100.0), 40.0);
        assert_eq!(c.misses_at(200.0), 40.0);
    }

    #[test]
    fn synthesizes_zero_point() {
        let c = MissCurve::new(vec![(64.0, 10.0)]);
        assert_eq!(c.at_zero(), 10.0);
        assert_eq!(c.points()[0].0, 0.0);
    }

    #[test]
    fn interpolation_between_points() {
        let c = MissCurve::new(vec![(0.0, 100.0), (100.0, 0.0)]);
        assert!((c.misses_at(25.0) - 75.0).abs() < 1e-12);
        assert!((c.misses_at(99.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_beyond_last_point() {
        let c = MissCurve::new(vec![(0.0, 10.0), (50.0, 4.0)]);
        assert_eq!(c.misses_at(1e9), 4.0);
    }

    #[test]
    fn duplicate_capacities_keep_min() {
        let c = MissCurve::new(vec![(0.0, 10.0), (64.0, 8.0), (64.0, 6.0)]);
        assert_eq!(c.misses_at(64.0), 6.0);
    }

    #[test]
    fn negative_misses_clamped() {
        let c = MissCurve::new(vec![(0.0, 5.0), (10.0, -3.0)]);
        assert_eq!(c.misses_at(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid capacity")]
    fn negative_capacity_panics() {
        MissCurve::new(vec![(-1.0, 5.0)]);
    }

    #[test]
    fn zero_and_flat_constructors() {
        assert_eq!(MissCurve::zero().misses_at(123.0), 0.0);
        let f = MissCurve::flat(7.5);
        assert_eq!(f.misses_at(0.0), 7.5);
        assert_eq!(f.misses_at(1e6), 7.5);
    }

    #[test]
    fn add_composes_pointwise() {
        let a = MissCurve::new(vec![(0.0, 10.0), (100.0, 0.0)]);
        let b = MissCurve::new(vec![(0.0, 6.0), (50.0, 2.0)]);
        let s = a.add(&b);
        assert!((s.misses_at(0.0) - 16.0).abs() < 1e-12);
        assert!((s.misses_at(50.0) - 7.0).abs() < 1e-12);
        assert!((s.misses_at(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies() {
        let c = MissCurve::new(vec![(0.0, 10.0), (10.0, 4.0)]).scale(2.0);
        assert_eq!(c.misses_at(0.0), 20.0);
        assert_eq!(c.misses_at(10.0), 8.0);
    }

    #[test]
    fn convex_hull_removes_concave_knees() {
        // Points: (0,100), (10,90), (20,20), (30,10). The point (10,90) is
        // above the chord from (0,100) to (20,20), so the hull drops it.
        let c = MissCurve::new(vec![(0.0, 100.0), (10.0, 90.0), (20.0, 20.0), (30.0, 10.0)]);
        let h = c.convex_hull();
        assert_eq!(h.points().len(), 3);
        assert!((h.misses_at(10.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn convex_hull_of_convex_curve_is_identity() {
        let c = MissCurve::new(vec![(0.0, 100.0), (10.0, 40.0), (20.0, 10.0), (30.0, 0.0)]);
        let h = c.convex_hull();
        assert_eq!(h.points(), c.points());
    }

    #[test]
    fn hull_is_below_curve() {
        let c = MissCurve::new(vec![
            (0.0, 50.0),
            (5.0, 49.0),
            (10.0, 10.0),
            (15.0, 9.0),
            (20.0, 0.0),
        ]);
        let h = c.convex_hull();
        for cap in 0..21 {
            assert!(h.misses_at(cap as f64) <= c.misses_at(cap as f64) + 1e-9);
        }
    }

    #[test]
    fn from_fn_builds_curve() {
        let grid = [0.0, 10.0, 20.0];
        let c = MissCurve::from_fn(&grid, |x| 100.0 - x);
        assert_eq!(c.misses_at(10.0), 90.0);
    }

    #[test]
    fn hits_gained_is_difference() {
        let c = MissCurve::new(vec![(0.0, 100.0), (100.0, 0.0)]);
        assert!((c.hits_gained(0.0, 50.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_matches_new_and_reuses_the_buffer() {
        let samples = vec![
            (100.0, 50.0),
            (0.0, 40.0),
            (200.0, 60.0),
            (100.0, 45.0),
            (64.0, -3.0),
        ];
        let fresh = MissCurve::new(samples.clone());
        let mut pooled = MissCurve::placeholder();
        let mut raw = samples.clone();
        pooled.rebuild(&mut raw);
        assert_eq!(pooled, fresh);
        // Rebuilding again from different samples reuses the same buffer
        // and still matches `new` exactly.
        let mut raw2 = vec![(0.0, 9.0), (8.0, 1.0)];
        pooled.rebuild(&mut raw2);
        assert_eq!(pooled, MissCurve::new(vec![(0.0, 9.0), (8.0, 1.0)]));
    }

    #[test]
    fn convex_hull_into_matches_convex_hull() {
        let curves = [
            MissCurve::new(vec![(0.0, 100.0), (10.0, 90.0), (20.0, 20.0), (30.0, 10.0)]),
            MissCurve::new(vec![(0.0, 10.0)]),
            MissCurve::zero(),
            MissCurve::new(vec![(0.0, 50.0), (5.0, 49.0), (10.0, 10.0), (15.0, 9.0)]),
        ];
        let mut pooled = MissCurve::placeholder();
        for c in &curves {
            c.convex_hull_into(&mut pooled);
            assert_eq!(pooled, c.convex_hull());
        }
    }

    #[test]
    fn cursor_matches_misses_at_on_ascending_queries() {
        let c = MissCurve::new(vec![
            (0.0, 100.0),
            (64.0, 60.0),
            (96.0, 55.0),
            (4096.0, 5.0),
        ]);
        let mut cur = c.cursor();
        let mut q = -8.0;
        while q < 5000.0 {
            assert_eq!(
                cur.misses_at(q).to_bits(),
                c.misses_at(q).to_bits(),
                "capacity {q}"
            );
            q += 7.3;
        }
    }

    #[test]
    fn cursor_matches_misses_at_on_arbitrary_order() {
        let c = MissCurve::new(vec![(0.0, 100.0), (10.0, 80.0), (50.0, 30.0), (200.0, 0.0)]);
        let mut cur = c.cursor();
        // Exact points, interpolated points, backward jumps, far overshoot.
        for q in [0.0, 10.0, 25.0, 5.0, 200.0, 1e9, 50.0, 0.0, 49.999, 10.0] {
            assert_eq!(
                cur.misses_at(q).to_bits(),
                c.misses_at(q).to_bits(),
                "capacity {q}"
            );
        }
    }

    #[test]
    fn blocked_evaluation_matches_pointwise() {
        let c = MissCurve::new(vec![(0.0, 40.0), (128.0, 10.0), (512.0, 2.0)]);
        let caps: Vec<f64> = (0..40).map(|i| i as f64 * 16.0).collect();
        let mut out = Vec::new();
        c.misses_at_sorted_into(&caps, &mut out);
        assert_eq!(out.len(), caps.len());
        for (q, got) in caps.iter().zip(&out) {
            assert_eq!(got.to_bits(), c.misses_at(*q).to_bits());
        }
    }
}

//! Exact LRU stack-distance profiling.
//!
//! [`StackProfiler`] computes the exact miss curve of an access stream under
//! fully-associative LRU — the ground truth that the sampled monitors
//! (UMON/GMON) approximate. It is used by tests to validate monitor accuracy
//! (the paper's §VI-C compares GMONs against "impractical" fine-grained
//! UMONs; we additionally compare both against this exact profile) and by the
//! workload crate to calibrate synthetic applications against the paper's
//! Fig. 2 miss curves.
//!
//! The implementation is the classic O(log n)-per-access algorithm: a Fenwick
//! tree over access timestamps counts how many *distinct* lines were touched
//! since a line's previous access, which is exactly its LRU stack distance.

use crate::{Line, MissCurve};
use rustc_hash::FxHashMap;

/// Exact LRU stack-distance profiler.
///
/// # Example
///
/// ```
/// use cdcs_cache::{Line, StackProfiler};
///
/// let mut prof = StackProfiler::new();
/// // Two passes over 4 lines: second pass hits at stack distance 4.
/// for _ in 0..2 {
///     for l in 0..4u64 {
///         prof.record(Line(l));
///     }
/// }
/// let curve = prof.miss_curve();
/// assert_eq!(curve.misses_at(0.0), 8.0); // everything misses with no cache
/// assert_eq!(curve.misses_at(4.0), 4.0); // only the 4 cold misses remain
/// ```
#[derive(Debug, Clone, Default)]
pub struct StackProfiler {
    /// Fenwick tree: bit[i] counts marked timestamps in a standard BIT
    /// layout; timestamp t is marked iff it is some line's most recent use.
    bit: Vec<u32>,
    /// `marks[t]` — whether timestamp `t` is currently marked. Kept alongside
    /// the BIT so the tree can be rebuilt exactly when it grows (a Fenwick
    /// tree cannot be extended by appending zeros: new nodes cover old
    /// ranges).
    marks: Vec<bool>,
    /// Most recent access timestamp of each line (1-based for the BIT).
    last: FxHashMap<u64, usize>,
    /// Next timestamp.
    now: usize,
    /// Histogram of stack distances: `hist[d]` = accesses with distance d
    /// (d = number of distinct other lines since previous access, so a
    /// cache of > d lines hits this access).
    hist: Vec<u64>,
    /// Accesses to never-seen lines (infinite distance).
    cold: u64,
}

impl StackProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn bit_add(&mut self, mut i: usize, delta: i32) {
        while i < self.bit.len() {
            self.bit[i] = (self.bit[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    fn bit_sum(&self, mut i: usize) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s += self.bit[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Grows the timestamp arrays to cover `t` and rebuilds the BIT from the
    /// mark bits in O(n) (doubling keeps this amortized O(1) per access).
    fn grow(&mut self, t: usize) {
        let new_len = (t + 2).next_power_of_two().max(1024);
        self.marks.resize(new_len, false);
        let mut bit = vec![0u32; new_len];
        for (i, &m) in self.marks.iter().enumerate().skip(1) {
            if m {
                bit[i] += 1;
            }
        }
        // Single O(n) parent-propagation pass builds the tree.
        for i in 1..new_len {
            let j = i + (i & i.wrapping_neg());
            if j < new_len {
                bit[j] += bit[i];
            }
        }
        self.bit = bit;
    }

    /// Records one access and returns its stack distance: `Some(d)` if the
    /// line was seen before (`d` = distinct lines touched in between, so the
    /// access hits in any cache larger than `d` lines), or `None` for a cold
    /// access.
    pub fn record(&mut self, line: Line) -> Option<u64> {
        self.now += 1;
        let t = self.now;
        if t >= self.bit.len() {
            self.grow(t);
        }
        // Every line has exactly one marked timestamp (its latest use), so
        // the number of marked timestamps equals the distinct lines seen.
        let distinct_before = self.last.len() as u64;
        let dist = match self.last.insert(line.0, t) {
            Some(prev) => {
                // Marked timestamps strictly after `prev` are the distinct
                // lines accessed since; `prev` itself is still marked and is
                // counted by `bit_sum(prev)`.
                let upto_prev = self.bit_sum(prev);
                let d = distinct_before - upto_prev;
                self.bit_add(prev, -1);
                self.marks[prev] = false;
                Some(d)
            }
            None => None,
        };
        self.bit_add(t, 1);
        self.marks[t] = true;
        match dist {
            Some(d) => {
                let d = d as usize;
                if d >= self.hist.len() {
                    self.hist.resize(d + 1, 0);
                }
                self.hist[d] += 1;
            }
            None => self.cold += 1,
        }
        dist
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.hist.iter().sum::<u64>() + self.cold
    }

    /// Number of distinct lines seen (the stream's footprint).
    pub fn footprint(&self) -> u64 {
        self.last.len() as u64
    }

    /// Cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// The exact miss curve: `misses(c)` = accesses whose stack distance is
    /// ≥ c, plus cold misses. Miss counts drop in steps at integer
    /// capacities; the curve emits a point on each side of every step so the
    /// piecewise-linear interpolation reproduces the step function exactly at
    /// integer capacities.
    pub fn miss_curve(&self) -> MissCurve {
        // misses(c) = cold + #(distance >= c). Suffix-sum the histogram.
        let mut points = Vec::with_capacity(2 * self.hist.len() + 2);
        let mut tail: u64 = self.hist.iter().sum();
        points.push((0.0, (self.cold + tail) as f64));
        for (d, &count) in self.hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // A cache of d+1 lines holds stack distances <= d: the miss
            // level holds through capacity d and drops at d+1.
            points.push((d as f64, (self.cold + tail) as f64));
            tail -= count;
            points.push(((d + 1) as f64, (self.cold + tail) as f64));
        }
        MissCurve::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_counted() {
        let mut p = StackProfiler::new();
        assert_eq!(p.record(Line(1)), None);
        assert_eq!(p.record(Line(2)), None);
        assert_eq!(p.cold_misses(), 2);
        assert_eq!(p.footprint(), 2);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut p = StackProfiler::new();
        p.record(Line(1));
        assert_eq!(p.record(Line(1)), Some(0));
    }

    #[test]
    fn distance_counts_distinct_intervening_lines() {
        let mut p = StackProfiler::new();
        p.record(Line(1));
        p.record(Line(2));
        p.record(Line(2)); // repeat should not add to distance
        p.record(Line(3));
        assert_eq!(p.record(Line(1)), Some(2)); // lines 2 and 3 intervened
    }

    #[test]
    fn scan_miss_curve_exact() {
        // 3 passes over 8 lines: pass 2 and 3 hit at distance 8.
        let mut p = StackProfiler::new();
        for _ in 0..3 {
            for l in 0..8u64 {
                p.record(Line(l));
            }
        }
        let curve = p.miss_curve();
        assert_eq!(curve.misses_at(0.0), 24.0);
        // Reuse distance of a scan over 8 lines is 7 (seven distinct lines
        // intervene), so a 7-line cache thrashes and an 8-line cache hits.
        assert_eq!(curve.misses_at(7.0), 24.0);
        assert_eq!(curve.misses_at(8.0), 8.0); // only the cold misses remain
    }

    #[test]
    fn matches_lru_pool_simulation() {
        // Property: the profiler's miss count at capacity C equals an actual
        // LRU pool of C lines run over the same trace.
        use crate::LruPool;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let trace: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..200u64)).collect();
        let mut prof = StackProfiler::new();
        for &a in &trace {
            prof.record(Line(a));
        }
        for cap in [1usize, 7, 50, 150, 300] {
            let mut pool = LruPool::new(cap);
            let mut misses = 0u64;
            for &a in &trace {
                let (hit, _) = pool.access_insert(Line(a));
                if !hit {
                    misses += 1;
                }
            }
            let predicted = prof.miss_curve().misses_at(cap as f64);
            assert_eq!(predicted, misses as f64, "capacity {cap}");
        }
    }

    #[test]
    fn accesses_totals() {
        let mut p = StackProfiler::new();
        for l in [1u64, 2, 1, 3, 1] {
            p.record(Line(l));
        }
        assert_eq!(p.accesses(), 5);
    }
}

//! Partitioned LLC banks.
//!
//! Each tile's LLC slice is a bank that CDCS divides into up to 64 partitions
//! (§III, "CDCS lets software divide each cache bank in multiple partitions,
//! using Vantage to efficiently partition banks at cache-line granularity").
//! Collections of bank partitions across the chip are ganged into virtual
//! caches by the VTB, which lives in `cdcs-sim`; this module only models one
//! bank's worth of partitions and statistics.

use crate::{Line, LruPool};
use serde::{Deserialize, Serialize};

/// Identifier of an LLC bank (one per tile in the default configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankId(pub u16);

impl BankId {
    /// The bank id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifier of a partition within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// The partition id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Hit/miss/eviction counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Accesses that found their line in the target partition.
    pub hits: u64,
    /// Accesses that did not.
    pub misses: u64,
    /// Lines evicted due to capacity.
    pub evictions: u64,
    /// Lines invalidated by reconfigurations.
    pub invalidations: u64,
}

impl BankStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &BankStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

/// One LLC bank divided into line-granularity partitions.
///
/// The bank enforces that the sum of partition capacities never exceeds the
/// bank's physical capacity — the same constraint the paper's allocator works
/// under (`B = Σ_d s_d,b`, §IV-A).
///
/// # Example
///
/// ```
/// use cdcs_cache::{Line, PartitionId, PartitionedBank};
///
/// // A 512 KB bank (8192 lines) with two partitions.
/// let mut bank = PartitionedBank::new(8192, &[4096, 4096]);
/// let p0 = PartitionId(0);
/// assert!(!bank.access(p0, Line(42)));      // cold miss
/// bank.fill(p0, Line(42));
/// assert!(bank.access(p0, Line(42)));       // hit
/// assert_eq!(bank.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedBank {
    capacity: usize,
    partitions: Vec<LruPool>,
    stats: BankStats,
}

impl PartitionedBank {
    /// Creates a bank of `capacity` lines with the given partition sizes.
    ///
    /// # Panics
    ///
    /// Panics if the partition sizes sum to more than `capacity`.
    pub fn new(capacity: usize, partition_sizes: &[usize]) -> Self {
        let total: usize = partition_sizes.iter().sum();
        assert!(
            total <= capacity,
            "partition sizes sum to {total}, exceeding bank capacity {capacity}"
        );
        PartitionedBank {
            capacity,
            partitions: partition_sizes.iter().map(|&s| LruPool::new(s)).collect(),
            stats: BankStats::default(),
        }
    }

    /// Creates an unpartitioned bank (a single partition spanning the whole
    /// bank) — the S-NUCA / R-NUCA configuration.
    pub fn unpartitioned(capacity: usize) -> Self {
        PartitionedBank::new(capacity, &[capacity])
    }

    /// Physical capacity of the bank, in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Current allocation of a partition, in lines.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn partition_capacity(&self, p: PartitionId) -> usize {
        self.partitions[p.index()].capacity()
    }

    /// Lines currently resident in a partition.
    pub fn partition_len(&self, p: PartitionId) -> usize {
        self.partitions[p.index()].len()
    }

    /// Looks up `line` in partition `p`, promoting it on a hit. Returns
    /// whether it hit. Does *not* fill on a miss — the caller fills via
    /// [`fill`](Self::fill) once the line arrives (from memory or, during
    /// reconfigurations, from the line's old bank).
    pub fn access(&mut self, p: PartitionId, line: Line) -> bool {
        let hit = self.partitions[p.index()].touch(line);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Peeks whether `line` is resident in partition `p` without updating
    /// LRU state or statistics.
    pub fn peek(&self, p: PartitionId, line: Line) -> bool {
        self.partitions[p.index()].contains(line)
    }

    /// Combined lookup-and-fill: promotes on a hit, inserts (evicting the
    /// LRU if full) on a miss. Returns `(hit, evicted)`. Statistics match
    /// an [`Self::access`] followed, on a miss, by a [`Self::fill`] — one
    /// hash probe fewer on the thrash path, which is the dominant LLC cost
    /// of streaming workloads.
    pub fn access_insert(&mut self, p: PartitionId, line: Line) -> (bool, Option<Line>) {
        let (hit, evicted) = self.partitions[p.index()].access_insert(line);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        (hit, evicted)
    }

    /// Inserts `line` into partition `p`, returning the line evicted to make
    /// room, if any.
    pub fn fill(&mut self, p: PartitionId, line: Line) -> Option<Line> {
        let evicted = self.partitions[p.index()].insert(line);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Removes `line` from partition `p` (an invalidation). Returns whether
    /// the line was present.
    pub fn invalidate(&mut self, p: PartitionId, line: Line) -> bool {
        let present = self.partitions[p.index()].remove(line);
        if present {
            self.stats.invalidations += 1;
        }
        present
    }

    /// Resizes every partition at a reconfiguration. Lines that no longer
    /// fit are evicted LRU-first and returned along with their partition.
    ///
    /// # Panics
    ///
    /// Panics if the new sizes sum to more than the bank capacity. Missing
    /// trailing sizes are treated as zero; extra sizes grow the partition
    /// count.
    pub fn resize_partitions(&mut self, sizes: &[usize]) -> Vec<(PartitionId, Line)> {
        let total: usize = sizes.iter().sum();
        assert!(
            total <= self.capacity,
            "partition sizes sum to {total}, exceeding bank capacity {}",
            self.capacity
        );
        while self.partitions.len() < sizes.len() {
            self.partitions.push(LruPool::new(0));
        }
        let mut evicted = Vec::new();
        for (i, pool) in self.partitions.iter_mut().enumerate() {
            let new_size = sizes.get(i).copied().unwrap_or(0);
            for line in pool.resize(new_size) {
                evicted.push((PartitionId(i as u16), line));
            }
        }
        self.stats.evictions += evicted.len() as u64;
        evicted
    }

    /// All lines resident in partition `p`, MRU first. Used by the
    /// reconfiguration machinery to walk a bank's array.
    pub fn partition_lines(&self, p: PartitionId) -> Vec<Line> {
        self.partitions[p.index()].iter().collect()
    }

    /// [`Self::partition_lines`] into a caller-reused buffer (cleared
    /// first): the reconfiguration walk visits every `(vc, bank)` pair and
    /// should not allocate a fresh vector per pair.
    pub fn partition_lines_into(&self, p: PartitionId, out: &mut Vec<Line>) {
        out.clear();
        out.extend(self.partitions[p.index()].iter());
    }

    /// Invalidates every line in partition `p`, returning them (MRU first).
    /// This is the bulk-invalidation path used by Jigsaw-style
    /// reconfigurations (§IV-H).
    pub fn invalidate_partition(&mut self, p: PartitionId) -> Vec<Line> {
        let lines = self.partitions[p.index()].drain();
        self.stats.invalidations += lines.len() as u64;
        lines
    }

    /// Invalidates every line in partition `p` without materializing them;
    /// returns how many were dropped. Same statistics as calling
    /// [`Self::invalidate`] once per resident line, at O(buckets) cost —
    /// used when a VC loses its whole allocation at a reconfiguration.
    pub fn clear_partition(&mut self, p: PartitionId) -> u64 {
        let dropped = self.partitions[p.index()].clear() as u64;
        self.stats.invalidations += dropped;
        dropped
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Resets statistics (e.g. at an epoch boundary).
    pub fn reset_stats(&mut self) {
        self.stats = BankStats::default();
    }

    /// Total lines resident across all partitions.
    pub fn occupancy(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_isolated() {
        let mut bank = PartitionedBank::new(8, &[4, 4]);
        let (p0, p1) = (PartitionId(0), PartitionId(1));
        bank.fill(p0, Line(1));
        assert!(
            !bank.access(p1, Line(1)),
            "line must not hit in another partition"
        );
        assert!(bank.access(p0, Line(1)));
    }

    #[test]
    fn capacity_enforced_per_partition() {
        let mut bank = PartitionedBank::new(8, &[2, 6]);
        let p0 = PartitionId(0);
        bank.fill(p0, Line(1));
        bank.fill(p0, Line(2));
        let ev = bank.fill(p0, Line(3));
        assert_eq!(ev, Some(Line(1)));
        assert_eq!(bank.partition_len(p0), 2);
    }

    #[test]
    #[should_panic(expected = "exceeding bank capacity")]
    fn oversubscribed_partitions_panic() {
        PartitionedBank::new(8, &[5, 5]);
    }

    #[test]
    fn unpartitioned_bank_has_one_partition() {
        let bank = PartitionedBank::unpartitioned(64);
        assert_eq!(bank.num_partitions(), 1);
        assert_eq!(bank.partition_capacity(PartitionId(0)), 64);
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let mut bank = PartitionedBank::new(2, &[2]);
        let p = PartitionId(0);
        bank.access(p, Line(1)); // miss
        bank.fill(p, Line(1));
        bank.access(p, Line(1)); // hit
        bank.fill(p, Line(2));
        bank.fill(p, Line(3)); // evicts
        let s = bank.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.accesses(), 2);
    }

    #[test]
    fn resize_partitions_moves_capacity() {
        let mut bank = PartitionedBank::new(8, &[6, 2]);
        let (p0, p1) = (PartitionId(0), PartitionId(1));
        for i in 0..6 {
            bank.fill(p0, Line(i));
        }
        let evicted = bank.resize_partitions(&[2, 6]);
        assert_eq!(evicted.len(), 4);
        assert!(evicted.iter().all(|&(p, _)| p == p0));
        assert_eq!(bank.partition_capacity(p0), 2);
        assert_eq!(bank.partition_capacity(p1), 6);
        // LRU-first eviction: lines 0..4 go.
        assert!(bank.peek(p0, Line(4)) && bank.peek(p0, Line(5)));
    }

    #[test]
    fn resize_can_add_partitions() {
        let mut bank = PartitionedBank::new(8, &[8]);
        bank.resize_partitions(&[4, 2, 2]);
        assert_eq!(bank.num_partitions(), 3);
    }

    #[test]
    fn invalidate_partition_drains_and_counts() {
        let mut bank = PartitionedBank::new(4, &[4]);
        let p = PartitionId(0);
        for i in 0..4 {
            bank.fill(p, Line(i));
        }
        let lines = bank.invalidate_partition(p);
        assert_eq!(lines.len(), 4);
        assert_eq!(bank.stats().invalidations, 4);
        assert_eq!(bank.partition_len(p), 0);
    }

    #[test]
    fn invalidate_single_line() {
        let mut bank = PartitionedBank::new(4, &[4]);
        let p = PartitionId(0);
        bank.fill(p, Line(9));
        assert!(bank.invalidate(p, Line(9)));
        assert!(!bank.invalidate(p, Line(9)));
        assert_eq!(bank.stats().invalidations, 1);
    }

    #[test]
    fn occupancy_sums_partitions() {
        let mut bank = PartitionedBank::new(8, &[4, 4]);
        bank.fill(PartitionId(0), Line(1));
        bank.fill(PartitionId(1), Line(2));
        bank.fill(PartitionId(1), Line(3));
        assert_eq!(bank.occupancy(), 3);
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut bank = PartitionedBank::new(2, &[2]);
        bank.access(PartitionId(0), Line(1));
        bank.reset_stats();
        assert_eq!(bank.stats(), BankStats::default());
    }

    #[test]
    fn stats_merge() {
        let mut a = BankStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            invalidations: 4,
        };
        let b = BankStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            invalidations: 40,
        };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.accesses(), 33);
    }
}

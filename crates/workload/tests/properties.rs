//! Property-based tests for the workload generators: footprint bounds,
//! determinism, mixture weights.

use cdcs_workload::{AccessStream, AppProfile, Pattern, PatternStream, StreamTarget};
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        (1u64..10_000).prop_map(|lines| Pattern::Scan { lines }),
        (1u64..10_000).prop_map(|lines| Pattern::Loop { lines }),
        (1u64..10_000).prop_map(|lines| Pattern::Hot { lines }),
        (1u64..10_000, 0.0f64..0.95).prop_map(|(lines, alpha)| Pattern::Zipf { lines, alpha }),
    ];
    prop::collection::vec((0.1f64..5.0, leaf), 1..4).prop_map(Pattern::Mix)
}

proptest! {
    #[test]
    fn offsets_stay_within_footprint(pattern in pattern_strategy(), seed in 0u64..1000) {
        let fp = pattern.footprint_lines();
        let mut stream = PatternStream::new(pattern, seed);
        for _ in 0..500 {
            prop_assert!(stream.next_offset() < fp);
        }
    }

    #[test]
    fn streams_are_reproducible(pattern in pattern_strategy(), seed in 0u64..1000) {
        let mut a = PatternStream::new(pattern.clone(), seed);
        let mut b = PatternStream::new(pattern, seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_offset(), b.next_offset());
        }
    }

    #[test]
    fn shared_fraction_converges(frac in 0.0f64..1.0, seed in 0u64..100) {
        let app = AppProfile::multi_threaded(
            "p",
            2,
            10.0,
            1.0,
            2.0,
            Pattern::Hot { lines: 64 },
            Pattern::Hot { lines: 64 },
            frac,
        );
        let mut s = AccessStream::for_thread(&app, 0, seed);
        let n = 4000;
        let shared =
            (0..n).filter(|_| s.next_access().0 == StreamTarget::ProcessShared).count();
        let got = shared as f64 / n as f64;
        prop_assert!((got - frac).abs() < 0.05, "{got} vs {frac}");
    }

    #[test]
    fn validation_catches_zero_footprints(weight in 0.1f64..2.0) {
        let p = Pattern::Mix(vec![(weight, Pattern::Loop { lines: 0 })]);
        prop_assert!(p.validate().is_err());
    }
}

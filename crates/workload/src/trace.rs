//! Trace-replay workloads: recorded per-thread access logs.
//!
//! A trace is a directory holding one JSON index ([`TraceIndex`],
//! canonical pretty JSON) plus one compact binary log per thread
//! (`t<i>.bin`, 9 bytes per record: a one-byte [`StreamTarget`] tag
//! followed by the line offset as a little-endian `u64`). Record mode
//! (`SimConfig::trace_record` in `cdcs-sim`) writes one from any existing
//! run; replay mode (`SimConfig::trace_replay`) substitutes the recorded
//! streams for the synthetic generators, reproducing the recorded run's
//! `SimResult` bit-exactly from the trace alone.
//!
//! [`ThreadSource`] is the seam the engine holds per thread: a synthetic
//! [`AccessStream`] or a replay [`TraceCursor`] behind one API, with an
//! optional tap that logs every draw for record mode.

use crate::{AccessStream, StreamTarget, WorkloadMix};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Tag byte for a [`StreamTarget::ThreadPrivate`] record.
const TAG_PRIVATE: u8 = 0;
/// Tag byte for a [`StreamTarget::ProcessShared`] record.
const TAG_SHARED: u8 = 1;
/// Tag byte for a [`StreamTarget::Global`] record.
const TAG_GLOBAL: u8 = 2;
/// Bytes per binary record: tag + little-endian offset.
const RECORD_BYTES: usize = 9;

/// One recorded access: `(target tag, line offset)`.
pub type TraceRecord = (u8, u64);

/// Encodes a [`StreamTarget`] as its binary tag.
pub fn target_tag(target: StreamTarget) -> u8 {
    match target {
        StreamTarget::ThreadPrivate => TAG_PRIVATE,
        StreamTarget::ProcessShared => TAG_SHARED,
        StreamTarget::Global => TAG_GLOBAL,
    }
}

/// Decodes a binary tag back to its [`StreamTarget`].
///
/// # Errors
///
/// Returns a message for unknown tags.
pub fn tag_target(tag: u8) -> Result<StreamTarget, String> {
    match tag {
        TAG_PRIVATE => Ok(StreamTarget::ThreadPrivate),
        TAG_SHARED => Ok(StreamTarget::ProcessShared),
        TAG_GLOBAL => Ok(StreamTarget::Global),
        other => Err(format!("unknown trace record tag {other}")),
    }
}

/// Index entry for one thread's binary log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceThreadMeta {
    /// Log file name, relative to the index's directory.
    #[serde(default)]
    pub file: String,
    /// Record count in the log (validated against the file size on load).
    #[serde(default)]
    pub records: u64,
    /// Whether every record is thread-private — replay then serves the
    /// engines' bulk-draw fast path exactly like a private-only synthetic
    /// stream.
    #[serde(default)]
    pub private_only: bool,
}

/// The JSON index at the root of a trace directory: the recorded mix
/// (processes, rates, core response — everything but the access streams)
/// plus one [`TraceThreadMeta`] per thread in thread-id order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceIndex {
    /// The mix the trace was recorded from.
    #[serde(default)]
    pub mix: WorkloadMix,
    /// Per-thread log metadata, in thread-id order.
    #[serde(default)]
    pub threads: Vec<TraceThreadMeta>,
}

/// A fully-loaded trace: index plus every thread's records in memory.
#[derive(Debug, Clone)]
pub struct TraceSource {
    index: TraceIndex,
    data: Vec<Vec<TraceRecord>>,
}

impl TraceSource {
    /// Loads a trace from its index path. Relative paths are resolved
    /// against the current directory and then each of its ancestors, so
    /// repo-relative paths like `specs/traces/x/index.json` work from
    /// crate directories (tests) and the repo root (binaries) alike.
    ///
    /// # Errors
    ///
    /// Returns a message for missing files, malformed JSON or binary
    /// records, and index/log disagreements.
    pub fn load(path: &str) -> Result<TraceSource, String> {
        let index_path = resolve(path)?;
        let dir = index_path
            .parent()
            .ok_or_else(|| format!("trace index {path} has no parent directory"))?
            .to_path_buf();
        let json = std::fs::read_to_string(&index_path)
            .map_err(|e| format!("reading trace index {}: {e}", index_path.display()))?;
        let index: TraceIndex =
            serde_json::from_str(&json).map_err(|e| format!("parsing trace index {path}: {e}"))?;
        if index.threads.len() != index.mix.total_threads() {
            return Err(format!(
                "trace index {path} lists {} thread logs but its mix has {} threads",
                index.threads.len(),
                index.mix.total_threads()
            ));
        }
        let mut data = Vec::with_capacity(index.threads.len());
        for meta in &index.threads {
            let log_path = dir.join(&meta.file);
            let bytes = std::fs::read(&log_path)
                .map_err(|e| format!("reading trace log {}: {e}", log_path.display()))?;
            if bytes.len() % RECORD_BYTES != 0 {
                return Err(format!(
                    "trace log {} has {} bytes, not a multiple of {RECORD_BYTES}",
                    meta.file,
                    bytes.len()
                ));
            }
            let n = bytes.len() / RECORD_BYTES;
            if n as u64 != meta.records {
                return Err(format!(
                    "trace log {} holds {n} records but the index says {}",
                    meta.file, meta.records
                ));
            }
            let mut records = Vec::with_capacity(n);
            for chunk in bytes.chunks_exact(RECORD_BYTES) {
                let tag = chunk[0];
                tag_target(tag)?;
                if meta.private_only && tag != TAG_PRIVATE {
                    return Err(format!(
                        "trace log {} is marked private-only but holds tag {tag}",
                        meta.file
                    ));
                }
                let mut le = [0u8; 8];
                le.copy_from_slice(&chunk[1..]);
                records.push((tag, u64::from_le_bytes(le)));
            }
            data.push(records);
        }
        Ok(TraceSource { index, data })
    }

    /// The mix the trace was recorded from.
    pub fn mix(&self) -> &WorkloadMix {
        &self.index.mix
    }

    /// Thread count (log count == the mix's total threads).
    pub fn threads(&self) -> usize {
        self.data.len()
    }

    /// A replay cursor over thread `thread`'s records.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn cursor(&self, thread: usize) -> TraceCursor {
        TraceCursor {
            records: self.data[thread].clone(),
            pos: 0,
            private_only: self.index.threads[thread].private_only,
        }
    }
}

/// Writes a trace directory: one `t<i>.bin` per thread plus the canonical
/// `index.json`. Creates `dir` (and parents) as needed; overwrites any
/// existing trace there.
///
/// # Errors
///
/// Returns I/O and serialization errors.
pub fn write_trace(
    dir: &Path,
    mix: &WorkloadMix,
    threads: &[(Vec<TraceRecord>, bool)],
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut index = TraceIndex {
        mix: mix.clone(),
        threads: Vec::with_capacity(threads.len()),
    };
    for (i, (records, private_only)) in threads.iter().enumerate() {
        let file = format!("t{i}.bin");
        let mut bytes = Vec::with_capacity(records.len() * RECORD_BYTES);
        for (tag, offset) in records {
            bytes.push(*tag);
            bytes.extend_from_slice(&offset.to_le_bytes());
        }
        let path = dir.join(&file);
        std::fs::write(&path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))?;
        index.threads.push(TraceThreadMeta {
            file,
            records: records.len() as u64,
            private_only: *private_only,
        });
    }
    let json = serde_json::to_string_pretty(&index)
        .map_err(|e| format!("serializing trace index: {e}"))?
        + "\n";
    let path = dir.join("index.json");
    std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Resolves a possibly repo-relative path by walking up from the current
/// directory.
fn resolve(path: &str) -> Result<PathBuf, String> {
    let p = Path::new(path);
    if p.is_absolute() || p.exists() {
        return Ok(p.to_path_buf());
    }
    let mut dir =
        std::env::current_dir().map_err(|e| format!("resolving current directory: {e}"))?;
    loop {
        let candidate = dir.join(p);
        if candidate.exists() {
            return Ok(candidate);
        }
        if !dir.pop() {
            return Err(format!(
                "trace index {path} not found in the current directory or any ancestor"
            ));
        }
    }
}

/// Replay position in one thread's recorded log. The cursor wraps at the
/// end of the log: replaying under a *different* configuration than the
/// recording can consume more accesses than were recorded (record mode
/// appends a cushion precisely to make same-config replay never wrap).
#[derive(Debug, Clone)]
pub struct TraceCursor {
    records: Vec<TraceRecord>,
    pos: usize,
    private_only: bool,
}

impl TraceCursor {
    fn next(&mut self) -> TraceRecord {
        let r = self.records[self.pos];
        self.pos += 1;
        if self.pos == self.records.len() {
            self.pos = 0;
        }
        r
    }
}

/// One thread's access source as the engines see it: a synthetic
/// generator or a replay cursor, with an optional record tap. The API
/// mirrors [`AccessStream`] exactly so every engine (reference, batched,
/// sharded) runs unchanged over either backing.
#[derive(Debug, Clone)]
pub struct ThreadSource {
    inner: SourceInner,
    tap: Option<Vec<TraceRecord>>,
}

#[derive(Debug, Clone)]
enum SourceInner {
    Synthetic(AccessStream),
    Replay(TraceCursor),
}

impl ThreadSource {
    /// Wraps a synthetic stream.
    pub fn synthetic(stream: AccessStream) -> ThreadSource {
        ThreadSource {
            inner: SourceInner::Synthetic(stream),
            tap: None,
        }
    }

    /// Wraps a replay cursor.
    pub fn replay(cursor: TraceCursor) -> ThreadSource {
        ThreadSource {
            inner: SourceInner::Replay(cursor),
            tap: None,
        }
    }

    /// Starts logging every subsequent draw (record mode).
    pub fn enable_tap(&mut self) {
        self.tap = Some(Vec::new());
    }

    /// See [`AccessStream::is_private_only`]; a replay source is
    /// private-only when its log is.
    pub fn is_private_only(&self) -> bool {
        match &self.inner {
            SourceInner::Synthetic(s) => s.is_private_only(),
            SourceInner::Replay(c) => c.private_only,
        }
    }

    /// See [`AccessStream::fill_private_offsets`].
    ///
    /// # Panics
    ///
    /// Panics if the source is not private-only.
    pub fn fill_private_offsets(&mut self, n: usize, out: &mut Vec<u64>) {
        let start = out.len();
        match &mut self.inner {
            SourceInner::Synthetic(s) => s.fill_private_offsets(n, out),
            SourceInner::Replay(c) => {
                assert!(c.private_only, "trace log has shared records");
                out.extend((0..n).map(|_| c.next().1));
            }
        }
        if let Some(tap) = &mut self.tap {
            tap.extend(out[start..].iter().map(|&o| (TAG_PRIVATE, o)));
        }
    }

    /// See [`AccessStream::fill_private_offsets_slice`].
    ///
    /// # Panics
    ///
    /// Panics if the source is not private-only.
    pub fn fill_private_offsets_slice(&mut self, out: &mut [u64]) {
        match &mut self.inner {
            SourceInner::Synthetic(s) => s.fill_private_offsets_slice(out),
            SourceInner::Replay(c) => {
                assert!(c.private_only, "trace log has shared records");
                for slot in out.iter_mut() {
                    *slot = c.next().1;
                }
            }
        }
        if let Some(tap) = &mut self.tap {
            tap.extend(out.iter().map(|&o| (TAG_PRIVATE, o)));
        }
    }

    /// See [`AccessStream::next_access`].
    pub fn next_access(&mut self) -> (StreamTarget, u64) {
        let (target, offset) = match &mut self.inner {
            SourceInner::Synthetic(s) => s.next_access(),
            SourceInner::Replay(c) => {
                let (tag, offset) = c.next();
                (tag_target(tag).expect("tags validated on load"), offset)
            }
        };
        if let Some(tap) = &mut self.tap {
            tap.push((target_tag(target), offset));
        }
        (target, offset)
    }

    /// Ends record mode: draws `cushion` extra accesses (so a replay that
    /// runs slightly longer than the recording — a different scheme, say —
    /// never wraps) and returns the full log plus its private-only flag.
    /// Returns `None` when no tap was enabled.
    pub fn finish_tap(&mut self, cushion: usize) -> Option<(Vec<TraceRecord>, bool)> {
        self.tap.as_ref()?;
        for _ in 0..cushion {
            self.next_access();
        }
        let records = self.tap.take().unwrap_or_default();
        let private_only = records.iter().all(|(tag, _)| *tag == TAG_PRIVATE);
        Some((records, private_only))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, MixSpec};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cdcs-trace-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_mix() -> WorkloadMix {
        WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()])).unwrap()
    }

    #[test]
    fn tags_round_trip() {
        for t in [
            StreamTarget::ThreadPrivate,
            StreamTarget::ProcessShared,
            StreamTarget::Global,
        ] {
            assert_eq!(tag_target(target_tag(t)).unwrap(), t);
        }
        assert!(tag_target(9).is_err());
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let mix = small_mix();
        let logs = vec![
            (vec![(TAG_PRIVATE, 1u64), (TAG_PRIVATE, 2)], true),
            (
                vec![(TAG_PRIVATE, 7), (TAG_SHARED, 3), (TAG_GLOBAL, 0)],
                false,
            ),
        ];
        write_trace(&dir, &mix, &logs).unwrap();
        let src = TraceSource::load(dir.join("index.json").to_str().unwrap()).unwrap();
        assert_eq!(src.mix(), &mix);
        assert_eq!(src.threads(), 2);
        let mut c = src.cursor(0);
        assert!(c.private_only);
        assert_eq!(c.next(), (TAG_PRIVATE, 1));
        assert_eq!(c.next(), (TAG_PRIVATE, 2));
        assert_eq!(c.next(), (TAG_PRIVATE, 1), "wraps at end");
        let mut c = src.cursor(1);
        assert!(!c.private_only);
        assert_eq!(c.next(), (TAG_PRIVATE, 7));
        assert_eq!(c.next(), (TAG_SHARED, 3));
        assert_eq!(c.next(), (TAG_GLOBAL, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_inconsistent_traces() {
        let dir = temp_dir("bad");
        let mix = small_mix();
        write_trace(
            &dir,
            &mix,
            &[(vec![(TAG_PRIVATE, 1)], true), (vec![], true)],
        )
        .unwrap();
        // Corrupt the first log: truncate to a non-multiple of the record size.
        std::fs::write(dir.join("t0.bin"), [0u8; 5]).unwrap();
        let err = TraceSource::load(dir.join("index.json").to_str().unwrap()).unwrap_err();
        assert!(err.contains("multiple"), "{err}");
        // Wrong record count.
        std::fs::write(dir.join("t0.bin"), [0u8; 18]).unwrap();
        let err = TraceSource::load(dir.join("index.json").to_str().unwrap()).unwrap_err();
        assert!(err.contains("index says"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_thread_count_mismatch() {
        let dir = temp_dir("mismatch");
        write_trace(&dir, &small_mix(), &[(vec![], true)]).unwrap();
        let err = TraceSource::load(dir.join("index.json").to_str().unwrap()).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synthetic_source_matches_raw_stream() {
        let app = spec::by_name("omnet").unwrap();
        let mut raw = AccessStream::for_thread(app, 0, 42);
        let mut src = ThreadSource::synthetic(AccessStream::for_thread(app, 0, 42));
        assert!(src.is_private_only());
        for _ in 0..64 {
            assert_eq!(src.next_access(), raw.next_access());
        }
        let mut raw_bulk = Vec::new();
        raw.fill_private_offsets(100, &mut raw_bulk);
        let mut src_bulk = Vec::new();
        src.fill_private_offsets(100, &mut src_bulk);
        assert_eq!(src_bulk, raw_bulk);
    }

    #[test]
    fn tap_records_every_draw_and_replays_identically() {
        let app = spec::by_name("ilbdc").unwrap();
        let mut recorded = ThreadSource::synthetic(AccessStream::for_thread(app, 0, 7));
        recorded.enable_tap();
        let draws: Vec<(StreamTarget, u64)> = (0..500).map(|_| recorded.next_access()).collect();
        let (records, private_only) = recorded.finish_tap(10).unwrap();
        assert_eq!(records.len(), 510, "500 draws + 10 cushion");
        assert!(!private_only, "ilbdc has a shared pattern");
        let mut replay = ThreadSource::replay(TraceCursor {
            records,
            pos: 0,
            private_only,
        });
        for (i, d) in draws.iter().enumerate() {
            assert_eq!(replay.next_access(), *d, "draw {i}");
        }
    }

    #[test]
    fn tap_covers_bulk_draws() {
        let app = spec::by_name("omnet").unwrap();
        let mut src = ThreadSource::synthetic(AccessStream::for_thread(app, 0, 3));
        src.enable_tap();
        let mut bulk = Vec::new();
        src.fill_private_offsets(10, &mut bulk);
        let mut slice = vec![0u64; 5];
        src.fill_private_offsets_slice(&mut slice);
        let (records, private_only) = src.finish_tap(0).unwrap();
        assert!(private_only);
        let offsets: Vec<u64> = records.iter().map(|r| r.1).collect();
        let mut expect = bulk.clone();
        expect.extend_from_slice(&slice);
        assert_eq!(offsets, expect);
    }

    #[test]
    fn index_parses_leniently() {
        let idx: TraceIndex = serde_json::from_str("{}").unwrap();
        assert!(idx.threads.is_empty());
        let meta: TraceThreadMeta = serde_json::from_str("{}").unwrap();
        assert_eq!(meta.records, 0);
    }
}

#![forbid(unsafe_code)]
//! Synthetic application models for the CDCS reproduction.
//!
//! The paper evaluates CDCS on SPEC CPU2006 (single-threaded) and SPEC
//! OMP2012 (multi-threaded) mixes. We have no SPEC binaries or Pin traces, so
//! this crate models each application as a *synthetic trace generator* whose
//! post-L2 (LLC) access stream reproduces the properties the paper's
//! algorithms actually consume:
//!
//! * the **miss curve** — footprint, cliffs, and slope (e.g. Fig. 2: `omnet`
//!   has an ~85 MPKI cliff that vanishes at 2.5 MB; `milc` is a streaming
//!   app that never hits; `ilbdc` has a 512 KB shared footprint);
//! * the **access intensity** (LLC accesses per kilo-instruction);
//! * the **sharing pattern** (thread-private vs. process-shared accesses for
//!   multi-threaded apps);
//! * a lean-OOO **core response** (base IPC and memory-level parallelism)
//!   that converts average memory access time into IPC.
//!
//! See [`spec`] for the 16 SPEC-like and 9 OMP-like profiles, calibrated in
//! this crate's tests against the exact stack-distance profiler from
//! `cdcs-cache`.
//!
//! # Example
//!
//! ```
//! use cdcs_workload::{spec, AccessStream, StreamTarget};
//!
//! let omnet = spec::by_name("omnet").unwrap();
//! assert_eq!(omnet.threads, 1);
//! let mut stream = AccessStream::for_thread(omnet, 0, 42);
//! let (target, offset) = stream.next_access();
//! assert_eq!(target, StreamTarget::ThreadPrivate);
//! assert!(offset < omnet.private_pattern.footprint_lines());
//! ```

pub mod events;
mod mix;
mod pattern;
mod profile;
pub mod spec;
pub mod trace;

pub use events::{EventScript, TimedEvent, WorkloadEvent};
pub use mix::{MixSpec, WorkloadMix};
pub use pattern::{Pattern, PatternStream};
pub use profile::{AccessStream, AppProfile, StreamTarget};
pub use trace::{ThreadSource, TraceCursor, TraceIndex, TraceSource, TraceThreadMeta};

//! Application profiles and per-thread access streams.

use crate::pattern::{Pattern, PatternState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which virtual cache a memory access targets.
///
/// CDCS creates "one thread-private VC per thread, one per-process VC for
/// each process, and a global VC" (§III). Our synthetic workloads know their
/// sharing pattern a priori, so each generated access is tagged with its
/// class — standing in for the paper's page-to-VC classification, which is
/// stable in steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamTarget {
    /// Data accessed by a single thread.
    ThreadPrivate,
    /// Data shared by threads of the same process.
    ProcessShared,
    /// Data shared across processes (rare; e.g. shared libraries).
    Global,
}

/// A synthetic application model.
///
/// Profiles are *immutable descriptions*; per-thread mutable stream state
/// lives in [`AccessStream`]. All footprints are in 64-byte lines.
///
/// # Example
///
/// ```
/// use cdcs_workload::{AppProfile, Pattern};
///
/// let app = AppProfile::single_threaded("toy", 20.0, 1.0, 2.0,
///     Pattern::Loop { lines: 4096 });
/// assert_eq!(app.threads, 1);
/// assert_eq!(app.total_footprint_lines(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Short benchmark-style name (e.g. `"omnet"`).
    pub name: String,
    /// Thread count: 1 for SPEC-CPU-like apps, 8 for the paper's OMP mixes.
    pub threads: usize,
    /// LLC accesses per kilo-instruction, per thread (the paper selects
    /// SPEC apps with ≥ 5 L2 MPKI; an L2 miss is an LLC access).
    pub apki: f64,
    /// IPC when every LLC access hits instantly (base pipeline throughput of
    /// the lean 2-way OOO core on this code).
    pub ipc0: f64,
    /// Memory-level parallelism: how many LLC accesses the core overlaps on
    /// average, dividing the exposed stall per access.
    pub mlp: f64,
    /// Access pattern over each thread's private footprint.
    pub private_pattern: Pattern,
    /// Access pattern over the process-wide shared footprint, if any.
    pub shared_pattern: Option<Pattern>,
    /// Fraction of accesses that go to the shared footprint (0 if none).
    pub shared_frac: f64,
}

impl AppProfile {
    /// Creates a single-threaded profile with a private pattern only.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid (see [`AppProfile::validate`]).
    pub fn single_threaded(
        name: &str,
        apki: f64,
        ipc0: f64,
        mlp: f64,
        private_pattern: Pattern,
    ) -> Self {
        let p = AppProfile {
            name: name.to_string(),
            threads: 1,
            apki,
            ipc0,
            mlp,
            private_pattern,
            shared_pattern: None,
            shared_frac: 0.0,
        };
        p.validate().expect("invalid profile");
        p
    }

    /// Creates a multi-threaded profile with private and shared footprints.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid (see [`AppProfile::validate`]).
    #[allow(clippy::too_many_arguments)]
    pub fn multi_threaded(
        name: &str,
        threads: usize,
        apki: f64,
        ipc0: f64,
        mlp: f64,
        private_pattern: Pattern,
        shared_pattern: Pattern,
        shared_frac: f64,
    ) -> Self {
        let p = AppProfile {
            name: name.to_string(),
            threads,
            apki,
            ipc0,
            mlp,
            private_pattern,
            shared_pattern: Some(shared_pattern),
            shared_frac,
        };
        p.validate().expect("invalid profile");
        p
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile name must be non-empty".into());
        }
        if self.threads == 0 {
            return Err("thread count must be non-zero".into());
        }
        if self.apki <= 0.0 || !self.apki.is_finite() {
            return Err(format!("apki must be positive, got {}", self.apki));
        }
        if self.ipc0 <= 0.0 || !self.ipc0.is_finite() {
            return Err(format!("ipc0 must be positive, got {}", self.ipc0));
        }
        if self.mlp < 1.0 || !self.mlp.is_finite() {
            return Err(format!("mlp must be >= 1, got {}", self.mlp));
        }
        self.private_pattern.validate()?;
        match (&self.shared_pattern, self.shared_frac) {
            (None, f) if f != 0.0 => {
                return Err("shared_frac must be 0 without a shared pattern".into())
            }
            (Some(p), f) => {
                p.validate()?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("shared_frac must be in [0,1], got {f}"));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Per-thread private footprint, in lines.
    pub fn private_footprint_lines(&self) -> u64 {
        self.private_pattern.footprint_lines()
    }

    /// Process-wide shared footprint, in lines (0 if none).
    pub fn shared_footprint_lines(&self) -> u64 {
        self.shared_pattern
            .as_ref()
            .map_or(0, Pattern::footprint_lines)
    }

    /// Total footprint of the whole process: all threads' private data plus
    /// the shared region.
    pub fn total_footprint_lines(&self) -> u64 {
        self.threads as u64 * self.private_footprint_lines() + self.shared_footprint_lines()
    }

    /// Whether this app is multi-threaded.
    pub fn is_multi_threaded(&self) -> bool {
        self.threads > 1
    }
}

/// Per-thread access-stream state for one [`AppProfile`].
///
/// Deterministic: the same `(profile, thread_index, seed)` triple always
/// yields the same stream.
#[derive(Debug, Clone)]
pub struct AccessStream {
    shared_frac: f64,
    private_pattern: Pattern,
    private_state: PatternState,
    shared: Option<(Pattern, PatternState)>,
    rng: SmallRng,
}

impl AccessStream {
    /// Creates the stream for thread `thread_index` of an app.
    ///
    /// Different threads of the same process get de-correlated private
    /// streams (different RNG streams and loop phases) but share the same
    /// shared-pattern *address range* — their shared accesses interleave in
    /// the simulator through the common process VC.
    pub fn for_thread(profile: &AppProfile, thread_index: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (thread_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mut private_state = PatternState::new(&profile.private_pattern);
        // De-phase loop/scan cursors across threads so identical threads do
        // not access in lockstep.
        let phase = rng.gen_range(0..profile.private_footprint_lines().max(1));
        for _ in 0..(phase % 8192) {
            private_state.next_offset(&profile.private_pattern, &mut rng);
        }
        let shared = profile.shared_pattern.clone().map(|p| {
            let s = PatternState::new(&p);
            (p, s)
        });
        AccessStream {
            shared_frac: profile.shared_frac,
            private_pattern: profile.private_pattern.clone(),
            private_state,
            shared,
            rng,
        }
    }

    /// Whether this stream can serve [`Self::fill_private_offsets`]: no
    /// shared pattern, so every access is thread-private and no RNG draw
    /// decides the class.
    pub fn is_private_only(&self) -> bool {
        self.shared.is_none()
    }

    /// Bulk draw for private-only streams: appends the next `n` offsets to
    /// `out` — exactly the offsets `n` [`Self::next_access`] calls would
    /// return (which would all be [`StreamTarget::ThreadPrivate`]), with
    /// the per-access pattern dispatch hoisted.
    ///
    /// # Panics
    ///
    /// Panics if the stream has a shared pattern (class selection consumes
    /// RNG draws, so bulk generation would diverge).
    pub fn fill_private_offsets(&mut self, n: usize, out: &mut Vec<u64>) {
        assert!(self.shared.is_none(), "stream has a shared pattern");
        self.private_state
            .fill_offsets(&self.private_pattern, &mut self.rng, n, out);
    }

    /// Slice form of [`Self::fill_private_offsets`]: overwrites every slot
    /// of `out` with the next `out.len()` private offsets — identical draws
    /// (the sharded engine fills disjoint windows of one flat interval
    /// buffer from several threads at once).
    ///
    /// # Panics
    ///
    /// Panics if the stream has a shared pattern (class selection consumes
    /// RNG draws, so bulk generation would diverge).
    pub fn fill_private_offsets_slice(&mut self, out: &mut [u64]) {
        assert!(self.shared.is_none(), "stream has a shared pattern");
        self.private_state
            .fill_offsets_slice(&self.private_pattern, &mut self.rng, out);
    }

    /// Draws the next access: which VC class it targets and the line offset
    /// within that class's footprint.
    pub fn next_access(&mut self) -> (StreamTarget, u64) {
        if let Some((pattern, state)) = &mut self.shared {
            if self.rng.gen::<f64>() < self.shared_frac {
                return (
                    StreamTarget::ProcessShared,
                    state.next_offset(pattern, &mut self.rng),
                );
            }
        }
        (
            StreamTarget::ThreadPrivate,
            self.private_state
                .next_offset(&self.private_pattern, &mut self.rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_mt() -> AppProfile {
        AppProfile::multi_threaded(
            "mt",
            4,
            10.0,
            1.0,
            2.0,
            Pattern::Hot { lines: 100 },
            Pattern::Hot { lines: 500 },
            0.5,
        )
    }

    #[test]
    fn slice_fill_matches_vec_fill_and_single_draws() {
        let app = AppProfile::single_threaded(
            "st",
            10.0,
            1.0,
            2.0,
            Pattern::Mix(vec![
                (0.7, Pattern::Hot { lines: 64 }),
                (0.3, Pattern::Scan { lines: 512 }),
            ]),
        );
        let mut a = AccessStream::for_thread(&app, 0, 42);
        let mut b = a.clone();
        let mut c = a.clone();
        let mut vec_out = Vec::new();
        a.fill_private_offsets(257, &mut vec_out);
        let mut slice_out = vec![0u64; 257];
        b.fill_private_offsets_slice(&mut slice_out);
        let single: Vec<u64> = (0..257).map(|_| c.next_access().1).collect();
        assert_eq!(vec_out, slice_out);
        assert_eq!(vec_out, single);
    }

    #[test]
    fn footprints_add_up() {
        let app = toy_mt();
        assert_eq!(app.private_footprint_lines(), 100);
        assert_eq!(app.shared_footprint_lines(), 500);
        assert_eq!(app.total_footprint_lines(), 4 * 100 + 500);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut app = toy_mt();
        app.apki = 0.0;
        assert!(app.validate().is_err());
        let mut app = toy_mt();
        app.mlp = 0.5;
        assert!(app.validate().is_err());
        let mut app = toy_mt();
        app.shared_frac = 1.5;
        assert!(app.validate().is_err());
        let mut app = toy_mt();
        app.shared_pattern = None;
        assert!(app.validate().is_err(), "shared_frac without pattern");
        let mut app = toy_mt();
        app.name.clear();
        assert!(app.validate().is_err());
        let mut app = toy_mt();
        app.threads = 0;
        assert!(app.validate().is_err());
    }

    #[test]
    fn single_threaded_never_emits_shared() {
        let app = AppProfile::single_threaded("st", 5.0, 1.0, 2.0, Pattern::Hot { lines: 64 });
        let mut s = AccessStream::for_thread(&app, 0, 7);
        for _ in 0..1000 {
            let (t, o) = s.next_access();
            assert_eq!(t, StreamTarget::ThreadPrivate);
            assert!(o < 64);
        }
    }

    #[test]
    fn shared_fraction_is_respected() {
        let app = toy_mt();
        let mut s = AccessStream::for_thread(&app, 0, 7);
        let shared = (0..10_000)
            .filter(|_| s.next_access().0 == StreamTarget::ProcessShared)
            .count();
        assert!(
            (shared as f64 - 5_000.0).abs() < 500.0,
            "shared count {shared} far from 50%"
        );
    }

    #[test]
    fn streams_are_deterministic() {
        let app = toy_mt();
        let mut a = AccessStream::for_thread(&app, 1, 7);
        let mut b = AccessStream::for_thread(&app, 1, 7);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn threads_are_decorrelated() {
        let app = toy_mt();
        let mut a = AccessStream::for_thread(&app, 0, 7);
        let mut b = AccessStream::for_thread(&app, 1, 7);
        let same = (0..200)
            .filter(|_| a.next_access() == b.next_access())
            .count();
        assert!(same < 100, "{same} identical draws");
    }

    #[test]
    fn offsets_stay_in_footprints() {
        let app = toy_mt();
        let mut s = AccessStream::for_thread(&app, 2, 9);
        for _ in 0..5000 {
            let (t, o) = s.next_access();
            match t {
                StreamTarget::ThreadPrivate => assert!(o < 100),
                StreamTarget::ProcessShared => assert!(o < 500),
                StreamTarget::Global => panic!("no global accesses configured"),
            }
        }
    }
}

//! Workload mixes: collections of application instances run together.
//!
//! The paper's methodology (§V): 50 mixes of 1–64 randomly-chosen
//! memory-intensive SPEC CPU2006 apps for single-threaded experiments, 50
//! mixes of four or eight 8-thread SPEC OMP2012 apps for multi-threaded ones,
//! and the hand-picked §II-B case-study mix (6×omnet + 14×milc + 2×ilbdc).

use crate::{spec, AppProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Declarative description of a mix, convertible to a [`WorkloadMix`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixSpec {
    /// `count` random single-threaded apps (with replacement) from the
    /// SPEC-like suite, seeded by `mix_seed`.
    RandomSingleThreaded {
        /// Number of app instances.
        count: usize,
        /// Mix seed; the paper's "50 mixes" are seeds `0..50`.
        mix_seed: u64,
    },
    /// `count` random 8-thread apps from the OMP-like suite.
    RandomMultiThreaded {
        /// Number of app instances.
        count: usize,
        /// Mix seed.
        mix_seed: u64,
    },
    /// The §II-B case study: 6×omnet, 14×milc, 2×ilbdc(8T) on 36 tiles.
    CaseStudy,
    /// An explicit list of benchmark names (repeats allowed).
    Named(Vec<String>),
}

/// A concrete mix: an ordered list of process profiles plus the seed that
/// derives all per-thread stream seeds.
///
/// Serializable so a mix can travel inside a wire-safe `GridCell` to
/// remote fleet runners; both fields are `#[serde(default)]` so a
/// version-skewed peer parses leniently (an empty mix is rejected at
/// simulation construction, not at parse time).
///
/// # Example
///
/// ```
/// use cdcs_workload::{MixSpec, WorkloadMix};
///
/// let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy).unwrap();
/// assert_eq!(mix.processes().len(), 22);
/// assert_eq!(mix.total_threads(), 6 + 14 + 2 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    #[serde(default)]
    processes: Vec<AppProfile>,
    #[serde(default)]
    seed: u64,
}

impl Default for WorkloadMix {
    /// An empty mix — only a serde fallback for lenient wire parsing;
    /// `Simulation::new` rejects it.
    fn default() -> Self {
        WorkloadMix {
            processes: Vec::new(),
            seed: 0,
        }
    }
}

impl WorkloadMix {
    /// Builds a mix from an explicit profile list.
    pub fn new(processes: Vec<AppProfile>, seed: u64) -> Self {
        WorkloadMix { processes, seed }
    }

    /// Materializes a [`MixSpec`].
    ///
    /// # Errors
    ///
    /// Returns an error if a named benchmark does not exist or a random spec
    /// has zero count.
    pub fn from_spec(spec: &MixSpec) -> Result<Self, String> {
        match spec {
            MixSpec::RandomSingleThreaded { count, mix_seed } => {
                if *count == 0 {
                    return Err("mix must contain at least one app".into());
                }
                let suite = spec::all_single_threaded();
                let mut rng = StdRng::seed_from_u64(0xC0DE_5EED ^ *mix_seed);
                let processes = (0..*count)
                    .map(|_| suite[rng.gen_range(0..suite.len())].clone())
                    .collect();
                Ok(WorkloadMix {
                    processes,
                    seed: *mix_seed,
                })
            }
            MixSpec::RandomMultiThreaded { count, mix_seed } => {
                if *count == 0 {
                    return Err("mix must contain at least one app".into());
                }
                let suite = spec::all_multi_threaded();
                let mut rng = StdRng::seed_from_u64(0x0123_4567_89AB_CDEF ^ *mix_seed);
                let processes = (0..*count)
                    .map(|_| suite[rng.gen_range(0..suite.len())].clone())
                    .collect();
                Ok(WorkloadMix {
                    processes,
                    seed: *mix_seed,
                })
            }
            MixSpec::CaseStudy => {
                let mut names = vec!["omnet"; 6];
                names.extend(vec!["milc"; 14]);
                names.extend(vec!["ilbdc"; 2]);
                WorkloadMix::from_spec(&MixSpec::Named(
                    names.into_iter().map(String::from).collect(),
                ))
            }
            MixSpec::Named(names) => {
                if names.is_empty() {
                    return Err("mix must contain at least one app".into());
                }
                let mut processes = Vec::with_capacity(names.len());
                for n in names {
                    processes.push(
                        spec::by_name(n)
                            .ok_or_else(|| format!("unknown benchmark {n}"))?
                            .clone(),
                    );
                }
                Ok(WorkloadMix { processes, seed: 0 })
            }
        }
    }

    /// The process profiles in this mix, in process-id order.
    pub fn processes(&self) -> &[AppProfile] {
        &self.processes
    }

    /// Appends a process to the mix (the event engine extends the roster
    /// with one slot per scripted arrival before construction). Stream
    /// seeds of existing processes are unaffected — [`Self::stream_seed`]
    /// depends only on the mix seed and the process/thread indices.
    pub fn push_process(&mut self, app: AppProfile) {
        self.processes.push(app);
    }

    /// Total thread count across all processes.
    pub fn total_threads(&self) -> usize {
        self.processes.iter().map(|p| p.threads).sum()
    }

    /// The mix seed; per-thread stream seeds are derived from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic stream seed for thread `t` of process `p`.
    pub fn stream_seed(&self, process: usize, thread: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((process as u64) << 20)
            .wrapping_add(thread as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mix_is_deterministic() {
        let a = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
            count: 8,
            mix_seed: 3,
        })
        .unwrap();
        let b = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
            count: 8,
            mix_seed: 3,
        })
        .unwrap();
        let names_a: Vec<&str> = a.processes().iter().map(|p| p.name.as_str()).collect();
        let names_b: Vec<&str> = b.processes().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
            count: 16,
            mix_seed: 1,
        })
        .unwrap();
        let b = WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
            count: 16,
            mix_seed: 2,
        })
        .unwrap();
        let names_a: Vec<&str> = a.processes().iter().map(|p| p.name.as_str()).collect();
        let names_b: Vec<&str> = b.processes().iter().map(|p| p.name.as_str()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn case_study_composition() {
        let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy).unwrap();
        let omnets = mix.processes().iter().filter(|p| p.name == "omnet").count();
        let milcs = mix.processes().iter().filter(|p| p.name == "milc").count();
        let ilbdcs = mix.processes().iter().filter(|p| p.name == "ilbdc").count();
        assert_eq!((omnets, milcs, ilbdcs), (6, 14, 2));
        assert_eq!(mix.total_threads(), 36);
    }

    #[test]
    fn named_mix_rejects_unknown() {
        let err = WorkloadMix::from_spec(&MixSpec::Named(vec!["nope".into()])).unwrap_err();
        assert!(err.contains("unknown"));
    }

    #[test]
    fn empty_mixes_rejected() {
        assert!(WorkloadMix::from_spec(&MixSpec::Named(vec![])).is_err());
        assert!(WorkloadMix::from_spec(&MixSpec::RandomSingleThreaded {
            count: 0,
            mix_seed: 0
        })
        .is_err());
    }

    #[test]
    fn multi_threaded_mixes_draw_omp_suite() {
        let mix = WorkloadMix::from_spec(&MixSpec::RandomMultiThreaded {
            count: 8,
            mix_seed: 7,
        })
        .unwrap();
        assert_eq!(mix.total_threads(), 64);
        for p in mix.processes() {
            assert_eq!(p.threads, 8);
        }
    }

    #[test]
    fn stream_seeds_are_unique() {
        let mix = WorkloadMix::from_spec(&MixSpec::CaseStudy).unwrap();
        let mut seeds = std::collections::HashSet::new();
        for p in 0..mix.processes().len() {
            for t in 0..mix.processes()[p].threads {
                assert!(seeds.insert(mix.stream_seed(p, t)));
            }
        }
    }
}

//! Access-pattern generators.
//!
//! A [`Pattern`] generates an infinite stream of line *offsets* within an
//! application's footprint; the simulator maps offsets into disjoint address
//! regions per virtual cache. The four primitive patterns compose (via
//! [`Pattern::Mix`]) into the miss-curve shapes the paper's workloads
//! exhibit: cliffs (loops), flat streams (scans), smooth slopes (Zipf), and
//! plateaus (hot sets).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A synthetic memory access pattern over `0..footprint_lines()` line
/// offsets.
///
/// # Example
///
/// ```
/// use cdcs_workload::{Pattern, PatternStream};
///
/// let pattern = Pattern::Loop { lines: 100 };
/// assert_eq!(pattern.footprint_lines(), 100);
/// let mut stream = PatternStream::new(pattern, 1);
/// let offsets: Vec<u64> = (0..5).map(|_| stream.next_offset()).collect();
/// assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Sequential scan over a huge region with no temporal reuse: a
    /// streaming application (the paper's `milc`, `libquantum`). The scan
    /// wraps at `lines`, which should be far larger than any cache so that
    /// reuse never pays.
    Scan {
        /// Footprint in lines.
        lines: u64,
    },
    /// A cyclic loop over `lines` lines. Under LRU this thrashes until the
    /// allocation reaches the footprint, then every access hits: the
    /// cliff-shaped curve of the paper's `omnet` (Fig. 2).
    Loop {
        /// Loop length in lines.
        lines: u64,
    },
    /// Uniform random accesses over a hot set of `lines` lines: a plateau
    /// that turns into hits smoothly around the footprint.
    Hot {
        /// Hot-set size in lines.
        lines: u64,
    },
    /// Zipf-distributed accesses over `lines` lines with parameter `alpha`:
    /// a smooth, convex miss curve (gradually diminishing returns), typical
    /// of pointer-chasing integer codes.
    Zipf {
        /// Footprint in lines.
        lines: u64,
        /// Skew; 0 = uniform, larger = more skewed. Must be finite,
        /// non-negative and ≠ 1 (use 0.999 for near-1 skew).
        alpha: f64,
    },
    /// A probabilistic mixture of sub-patterns; weights need not sum to 1
    /// (they are normalized). Offsets of sub-pattern `i` are shifted so that
    /// sub-footprints do not overlap.
    Mix(Vec<(f64, Pattern)>),
}

impl Pattern {
    /// Total footprint in lines (sub-footprints of a mixture are disjoint).
    pub fn footprint_lines(&self) -> u64 {
        match self {
            Pattern::Scan { lines }
            | Pattern::Loop { lines }
            | Pattern::Hot { lines }
            | Pattern::Zipf { lines, .. } => *lines,
            Pattern::Mix(parts) => parts.iter().map(|(_, p)| p.footprint_lines()).sum(),
        }
    }

    /// Validates parameters; returns a human-readable error for zero-sized
    /// footprints, bad Zipf parameters, or empty/non-positive mixtures.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Pattern::Scan { lines } | Pattern::Loop { lines } | Pattern::Hot { lines } => {
                if *lines == 0 {
                    return Err("pattern footprint must be non-zero".into());
                }
            }
            Pattern::Zipf { lines, alpha } => {
                if *lines == 0 {
                    return Err("pattern footprint must be non-zero".into());
                }
                if !alpha.is_finite() || *alpha < 0.0 || (*alpha - 1.0).abs() < 1e-9 {
                    return Err(format!("invalid zipf alpha {alpha}"));
                }
            }
            Pattern::Mix(parts) => {
                if parts.is_empty() {
                    return Err("mixture must have at least one part".into());
                }
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                if total <= 0.0 || total.is_nan() {
                    return Err("mixture weights must sum to a positive value".into());
                }
                for (w, p) in parts {
                    if !w.is_finite() || *w < 0.0 {
                        return Err(format!("invalid mixture weight {w}"));
                    }
                    p.validate()?;
                }
            }
        }
        Ok(())
    }
}

/// Mutable generation state for a [`Pattern`] (loop cursors, scan cursors).
/// Kept separate from the pattern so profiles stay immutable and shareable.
#[derive(Debug, Clone)]
pub(crate) enum PatternState {
    Scan {
        pos: u64,
    },
    Loop {
        pos: u64,
    },
    Hot,
    Zipf,
    Mix {
        states: Vec<PatternState>,
        bases: Vec<u64>,
        cum_weights: Vec<f64>,
    },
}

impl PatternState {
    pub fn new(pattern: &Pattern) -> Self {
        match pattern {
            Pattern::Scan { .. } => PatternState::Scan { pos: 0 },
            Pattern::Loop { .. } => PatternState::Loop { pos: 0 },
            Pattern::Hot { .. } => PatternState::Hot,
            Pattern::Zipf { .. } => PatternState::Zipf,
            Pattern::Mix(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut acc = 0.0;
                let mut cum_weights = Vec::with_capacity(parts.len());
                let mut bases = Vec::with_capacity(parts.len());
                let mut base = 0u64;
                for (w, p) in parts {
                    acc += w / total;
                    cum_weights.push(acc);
                    bases.push(base);
                    base += p.footprint_lines();
                }
                PatternState::Mix {
                    states: parts.iter().map(|(_, p)| PatternState::new(p)).collect(),
                    bases,
                    cum_weights,
                }
            }
        }
    }

    /// Bulk form of [`Self::next_offset`]: appends the next `n` offsets to
    /// `out` — exactly the sequence `n` single draws would produce, with
    /// the pattern dispatch hoisted out of the loop (the simulator
    /// generates a whole interval's accesses per thread at once).
    /// (No up-front `reserve`: the caller's buffer reaches its steady-state
    /// capacity through normal doubling within the first interval, and an
    /// exact-sized reserve here was observed to shift the buffer into a
    /// heap placement that aliased the simulator's hot hash tables.)
    pub fn fill_offsets(
        &mut self,
        pattern: &Pattern,
        rng: &mut SmallRng,
        n: usize,
        out: &mut Vec<u64>,
    ) {
        match (self, pattern) {
            (PatternState::Scan { pos }, Pattern::Scan { lines })
            | (PatternState::Loop { pos }, Pattern::Loop { lines }) => {
                for _ in 0..n {
                    out.push(*pos);
                    *pos += 1;
                    if *pos == *lines {
                        *pos = 0;
                    }
                }
            }
            (PatternState::Hot, Pattern::Hot { lines }) => {
                for _ in 0..n {
                    out.push(rng.gen_range(0..*lines));
                }
            }
            (PatternState::Zipf, Pattern::Zipf { lines, alpha }) => {
                for _ in 0..n {
                    out.push(zipf_sample(*lines, *alpha, rng));
                }
            }
            (state @ PatternState::Mix { .. }, pattern @ Pattern::Mix(_)) => {
                for _ in 0..n {
                    let o = state.next_offset(pattern, rng);
                    out.push(o);
                }
            }
            _ => unreachable!("pattern state mismatch"),
        }
    }

    /// Slice form of [`Self::fill_offsets`]: overwrites every slot of `out`
    /// with the next `out.len()` offsets — the same draw sequence, written
    /// into caller-owned storage. The sharded engine pre-sizes one flat
    /// interval buffer and fills disjoint per-thread windows of it in
    /// parallel, which a `Vec`-append API cannot serve.
    pub fn fill_offsets_slice(&mut self, pattern: &Pattern, rng: &mut SmallRng, out: &mut [u64]) {
        match (self, pattern) {
            (PatternState::Scan { pos }, Pattern::Scan { lines })
            | (PatternState::Loop { pos }, Pattern::Loop { lines }) => {
                for slot in out {
                    *slot = *pos;
                    *pos += 1;
                    if *pos == *lines {
                        *pos = 0;
                    }
                }
            }
            (PatternState::Hot, Pattern::Hot { lines }) => {
                for slot in out {
                    *slot = rng.gen_range(0..*lines);
                }
            }
            (PatternState::Zipf, Pattern::Zipf { lines, alpha }) => {
                for slot in out {
                    *slot = zipf_sample(*lines, *alpha, rng);
                }
            }
            (state @ PatternState::Mix { .. }, pattern @ Pattern::Mix(_)) => {
                for slot in out {
                    *slot = state.next_offset(pattern, rng);
                }
            }
            _ => unreachable!("pattern state mismatch"),
        }
    }

    /// Draws the next line offset for `pattern` (must be the same pattern
    /// this state was built from).
    pub fn next_offset(&mut self, pattern: &Pattern, rng: &mut SmallRng) -> u64 {
        match (self, pattern) {
            // The cursor advance is a compare-and-wrap rather than `% lines`:
            // `pos < lines` always holds, so the two are the same sequence,
            // without a 64-bit division on the per-access path.
            (PatternState::Scan { pos }, Pattern::Scan { lines }) => {
                let o = *pos;
                *pos += 1;
                if *pos == *lines {
                    *pos = 0;
                }
                o
            }
            (PatternState::Loop { pos }, Pattern::Loop { lines }) => {
                let o = *pos;
                *pos += 1;
                if *pos == *lines {
                    *pos = 0;
                }
                o
            }
            (PatternState::Hot, Pattern::Hot { lines }) => rng.gen_range(0..*lines),
            (PatternState::Zipf, Pattern::Zipf { lines, alpha }) => {
                zipf_sample(*lines, *alpha, rng)
            }
            (
                PatternState::Mix {
                    states,
                    bases,
                    cum_weights,
                },
                Pattern::Mix(parts),
            ) => {
                let u: f64 = rng.gen();
                let i = cum_weights
                    .iter()
                    .position(|&c| u <= c)
                    .unwrap_or(cum_weights.len() - 1);
                bases[i] + states[i].next_offset(&parts[i].1, rng)
            }
            _ => unreachable!("pattern state mismatch"),
        }
    }
}

/// A self-contained stream of offsets drawn from a [`Pattern`]: the pattern,
/// its cursor state, and a seeded RNG bundled together.
///
/// # Example
///
/// ```
/// use cdcs_workload::{Pattern, PatternStream};
///
/// let mut stream = PatternStream::new(Pattern::Loop { lines: 100 }, 1);
/// let offsets: Vec<u64> = (0..5).map(|_| stream.next_offset()).collect();
/// assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct PatternStream {
    pattern: Pattern,
    state: PatternState,
    rng: SmallRng,
}

impl PatternStream {
    /// Creates a stream over `pattern`, deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics if the pattern fails [`Pattern::validate`].
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        use rand::SeedableRng;
        if let Err(e) = pattern.validate() {
            panic!("invalid pattern: {e}");
        }
        let state = PatternState::new(&pattern);
        PatternStream {
            pattern,
            state,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The pattern this stream draws from.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Draws the next line offset in `0..pattern().footprint_lines()`.
    pub fn next_offset(&mut self) -> u64 {
        self.state.next_offset(&self.pattern, &mut self.rng)
    }
}

/// Samples a Zipf(alpha)-distributed rank in `0..n` via the continuous
/// inverse-CDF approximation. Rank 0 is the hottest line. Ranks are used
/// directly as offsets: spatial contiguity is irrelevant here because every
/// downstream structure (VTB buckets, pools, monitors) hashes addresses.
fn zipf_sample(n: u64, alpha: f64, rng: &mut SmallRng) -> u64 {
    debug_assert!(n > 0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let one_minus_a = 1.0 - alpha;
    // Inverse CDF of p(x) ~ x^-alpha on the continuous support [1, n+1), so
    // every integer rank (after flooring) has non-zero probability:
    // x = (((n+1)^(1-a) - 1) u + 1)^(1/(1-a)).
    let x = (((n + 1) as f64).powf(one_minus_a).mul_add(u, 1.0 - u)).powf(1.0 / one_minus_a);
    (x as u64).clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn footprints_sum_in_mixtures() {
        let p = Pattern::Mix(vec![
            (0.5, Pattern::Loop { lines: 100 }),
            (0.5, Pattern::Hot { lines: 50 }),
        ]);
        assert_eq!(p.footprint_lines(), 150);
    }

    #[test]
    fn mixture_subpatterns_use_disjoint_ranges() {
        let pattern = Pattern::Mix(vec![
            (0.5, Pattern::Hot { lines: 100 }),
            (0.5, Pattern::Hot { lines: 100 }),
        ]);
        let mut state = PatternState::new(&pattern);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let o = state.next_offset(&pattern, &mut rng);
            assert!(o < 200);
            if o < 100 {
                seen_low = true;
            } else {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts
                .entry(zipf_sample(10_000, 0.9, &mut rng))
                .or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top-10 lines should take a disproportionate share of accesses.
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(top10 > 10_000, "top10 = {top10}");
        // But the tail must still be broad.
        assert!(counts.len() > 2_000, "distinct = {}", counts.len());
    }

    #[test]
    fn zipf_zero_alpha_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[zipf_sample(100, 0.0, &mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    fn validate_rejects_bad_patterns() {
        assert!(Pattern::Loop { lines: 0 }.validate().is_err());
        assert!(Pattern::Zipf {
            lines: 10,
            alpha: 1.0
        }
        .validate()
        .is_err());
        assert!(Pattern::Zipf {
            lines: 10,
            alpha: -0.5
        }
        .validate()
        .is_err());
        assert!(Pattern::Mix(vec![]).validate().is_err());
        assert!(Pattern::Mix(vec![(0.0, Pattern::Hot { lines: 1 })])
            .validate()
            .is_err());
        assert!(Pattern::Loop { lines: 10 }.validate().is_ok());
    }

    #[test]
    fn hot_pattern_stays_in_range() {
        let pattern = Pattern::Hot { lines: 7 };
        let mut state = PatternState::new(&pattern);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(state.next_offset(&pattern, &mut rng) < 7);
        }
    }

    #[test]
    fn loop_state_cycles() {
        let pattern = Pattern::Loop { lines: 3 };
        let mut state = PatternState::new(&pattern);
        let mut rng = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..7)
            .map(|_| state.next_offset(&pattern, &mut rng))
            .collect();
        assert_eq!(xs, vec![0, 1, 2, 0, 1, 2, 0]);
    }
}

//! Timestamped workload events: dynamic scenarios over a base mix.
//!
//! Every mix in the steady-state engine is stationary — processes run at a
//! fixed rate from cycle 0 to the end of the run. The event layer removes
//! that restriction: an [`EventScript`] is a list of [`TimedEvent`]s that
//! the event-driven engine (`SimConfig::engine = Event` in `cdcs-sim`)
//! applies at interval boundaries — apps arrive, burst, idle, change phase,
//! and depart mid-run, and partitioned schemes track them through the
//! ordinary reconfiguration path.
//!
//! Everything is deterministic: a script is plain serializable data, and the
//! seeded [`EventScript::generate`] derives a random scenario from its seed
//! alone, so two runs of the same `(config, mix, script)` triple are
//! byte-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dynamic-workload event. Process indices refer to the *roster*: the
/// base mix's processes in order, followed by one process per
/// [`WorkloadEvent::Arrival`] in time-sorted order (the order
/// [`EventScript::sorted`] yields them, i.e. the order they activate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// Permanently scales a process's access intensity (a program-phase
    /// transition: the working set stays, the rate changes).
    PhaseChange {
        /// Roster index of the affected process.
        process: usize,
        /// Multiplier applied to the process's APKI (> 0, finite).
        apki_scale: f64,
    },
    /// Temporarily scales a process's access rate for `duration` cycles,
    /// then restores it.
    RateBurst {
        /// Roster index of the affected process.
        process: usize,
        /// Rate multiplier while the burst lasts (> 0, finite).
        scale: f64,
        /// Burst length in cycles.
        duration: u64,
    },
    /// The process issues no accesses and retires no instructions for
    /// `duration` cycles (blocked on I/O, a barrier, a sleep).
    IdleGap {
        /// Roster index of the affected process.
        process: usize,
        /// Gap length in cycles.
        duration: u64,
    },
    /// A new process (one roster slot, appended in time-sorted order)
    /// starts running. Its threads, VCs, and monitors exist from construction —
    /// cores and virtual caches are provisioned for the full roster — but
    /// it issues nothing until this event fires.
    Arrival {
        /// Suite profile name (`cdcs_workload::spec::by_name`).
        app: String,
    },
    /// The process stops issuing accesses for the rest of the run.
    Departure {
        /// Roster index of the departing process.
        process: usize,
    },
}

impl Default for WorkloadEvent {
    /// A zero-length idle gap on process 0 — a no-op, the lenient-parse
    /// fallback for `#[serde(default)]` fields.
    fn default() -> Self {
        WorkloadEvent::IdleGap {
            process: 0,
            duration: 0,
        }
    }
}

/// A [`WorkloadEvent`] pinned to an absolute cycle. The engine applies it
/// at the first interval boundary at or after `at_cycle`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Absolute cycle the event becomes due.
    #[serde(default)]
    pub at_cycle: u64,
    /// What happens.
    #[serde(default)]
    pub event: WorkloadEvent,
}

/// A dynamic scenario: timestamped events over a base mix. An empty script
/// is the steady-state workload — the event engine run of an empty script
/// is bit-identical to the batched engine (pinned by
/// `crates/sim/tests/events.rs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventScript {
    /// The events, in any order; the engine applies them sorted by
    /// `at_cycle` (ties keep script order).
    #[serde(default)]
    pub events: Vec<TimedEvent>,
}

impl EventScript {
    /// The steady-rate script: no events.
    pub fn steady() -> Self {
        EventScript::default()
    }

    /// Whether the script changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The arrival app names, in raw script order. Roster slots are
    /// assigned in *time-sorted* order (see [`Self::sorted`]); this is a
    /// listing helper, not the slot assignment.
    pub fn arrivals(&self) -> impl Iterator<Item = &str> {
        self.events.iter().filter_map(|e| match &e.event {
            WorkloadEvent::Arrival { app } => Some(app.as_str()),
            _ => None,
        })
    }

    /// The events sorted by due cycle, ties in script order (the order the
    /// engine applies them).
    pub fn sorted(&self) -> Vec<TimedEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at_cycle);
        events
    }

    /// Validates the script against a roster of `processes` processes
    /// (base mix + arrivals).
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range process indices or degenerate
    /// scales.
    pub fn validate(&self, processes: usize) -> Result<(), String> {
        let scale_ok = |s: f64| s > 0.0 && s.is_finite();
        for (i, e) in self.events.iter().enumerate() {
            let process = match &e.event {
                WorkloadEvent::PhaseChange {
                    process,
                    apki_scale,
                } => {
                    if !scale_ok(*apki_scale) {
                        return Err(format!("event {i}: apki_scale must be positive and finite"));
                    }
                    *process
                }
                WorkloadEvent::RateBurst { process, scale, .. } => {
                    if !scale_ok(*scale) {
                        return Err(format!(
                            "event {i}: burst scale must be positive and finite"
                        ));
                    }
                    *process
                }
                WorkloadEvent::IdleGap { process, .. } | WorkloadEvent::Departure { process } => {
                    *process
                }
                WorkloadEvent::Arrival { .. } => continue,
            };
            if process >= processes {
                return Err(format!(
                    "event {i}: process {process} out of range (roster has {processes})"
                ));
            }
        }
        Ok(())
    }

    /// Generates a seeded random scenario over `processes` base processes
    /// within `horizon` cycles: each process gets one to three
    /// burst/idle/phase events at random times. Deterministic in
    /// `(seed, horizon, processes)`.
    pub fn generate(seed: u64, horizon: u64, processes: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4456_4e54_5f45_5645); // "EV_ENT"
        let horizon = horizon.max(16);
        let mut events = Vec::new();
        for process in 0..processes {
            let n = rng.gen_range(1..=3usize);
            for _ in 0..n {
                let at_cycle = rng.gen_range(0..horizon);
                let event = match rng.gen_range(0..3u32) {
                    0 => WorkloadEvent::RateBurst {
                        process,
                        scale: rng.gen_range(0.5..4.0),
                        duration: rng.gen_range(horizon / 16..horizon / 4).max(1),
                    },
                    1 => WorkloadEvent::IdleGap {
                        process,
                        duration: rng.gen_range(horizon / 16..horizon / 8).max(1),
                    },
                    _ => WorkloadEvent::PhaseChange {
                        process,
                        apki_scale: rng.gen_range(0.5..2.0),
                    },
                };
                events.push(TimedEvent { at_cycle, event });
            }
        }
        EventScript { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_script_is_empty() {
        assert!(EventScript::steady().is_empty());
        assert_eq!(EventScript::steady(), EventScript::default());
    }

    #[test]
    fn sorted_is_stable_on_ties() {
        let script = EventScript {
            events: vec![
                TimedEvent {
                    at_cycle: 100,
                    event: WorkloadEvent::Departure { process: 1 },
                },
                TimedEvent {
                    at_cycle: 50,
                    event: WorkloadEvent::IdleGap {
                        process: 0,
                        duration: 10,
                    },
                },
                TimedEvent {
                    at_cycle: 100,
                    event: WorkloadEvent::Departure { process: 0 },
                },
            ],
        };
        let sorted = script.sorted();
        assert_eq!(sorted[0].at_cycle, 50);
        assert_eq!(
            sorted[1].event,
            WorkloadEvent::Departure { process: 1 },
            "ties keep script order"
        );
        assert_eq!(sorted[2].event, WorkloadEvent::Departure { process: 0 });
    }

    #[test]
    fn arrivals_list_in_script_order() {
        let script = EventScript {
            events: vec![
                TimedEvent {
                    at_cycle: 9,
                    event: WorkloadEvent::Arrival { app: "b".into() },
                },
                TimedEvent {
                    at_cycle: 3,
                    event: WorkloadEvent::Arrival { app: "a".into() },
                },
            ],
        };
        // Raw script order — a listing helper; roster slots use sorted order.
        let apps: Vec<&str> = script.arrivals().collect();
        assert_eq!(apps, ["b", "a"]);
    }

    #[test]
    fn validate_checks_indices_and_scales() {
        let script = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::Departure { process: 2 },
            }],
        };
        assert!(script.validate(3).is_ok());
        assert!(script.validate(2).unwrap_err().contains("out of range"));
        let script = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::RateBurst {
                    process: 0,
                    scale: 0.0,
                    duration: 5,
                },
            }],
        };
        assert!(script.validate(1).unwrap_err().contains("positive"));
        let script = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::PhaseChange {
                    process: 0,
                    apki_scale: f64::NAN,
                },
            }],
        };
        assert!(script.validate(1).is_err());
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let a = EventScript::generate(7, 1_000_000, 3);
        let b = EventScript::generate(7, 1_000_000, 3);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(3).is_ok());
        for e in &a.events {
            assert!(e.at_cycle < 1_000_000);
        }
        let c = EventScript::generate(8, 1_000_000, 3);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn scripts_round_trip_through_json() {
        let script = EventScript::generate(3, 500_000, 2);
        let json = serde_json::to_string(&script).unwrap();
        let back: EventScript = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);
        // Lenient parse: an empty document is the steady script.
        let empty: EventScript = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
    }
}
